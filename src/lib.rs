//! # msopds
//!
//! A from-scratch Rust reproduction of *"Planning Data Poisoning Attacks on
//! Heterogeneous Recommender Systems in a Multiplayer Setting"* (ICDE 2023):
//! the MSOPDS attack planner, the heterogeneous GNN recommender substrate it
//! targets, every baseline it is compared against, and the experiment harness
//! regenerating the paper's tables and figures.
//!
//! This umbrella crate re-exports the workspace layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`autograd`] | `msopds-autograd` | higher-order tape autodiff, CG, HVPs |
//! | [`het_graph`] | `msopds-het-graph` | CSR graphs, generators, item graph |
//! | [`recdata`] | `msopds-recdata` | ratings, synthetic datasets, markets |
//! | [`recsys`] | `msopds-recsys` | ConsisRec-style victim, MF, PDS surrogate |
//! | [`core`] | `msopds-core` | importance vectors, MSO, MSOPDS/BOPDS |
//! | [`attacks`] | `msopds-attacks` | Random/Popular/PGA/S-attack/RevAdv/Trial |
//! | [`gameplay`] | `msopds-gameplay` | the multiplayer game simulator |
//! | [`xp`] | `msopds-xp` | Table III / Fig. 6–9 experiment harness |
//!
//! ## Quickstart
//!
//! ```
//! use msopds::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small synthetic heterogeneous dataset and a sampled market.
//! let data = DatasetSpec::micro().generate(42);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let market = sample_market(&data, &DemographicsSpec::default().scaled(8.0), 1, &mut rng);
//!
//! // One multiplayer game: MSOPDS attacker vs one demoting opponent.
//! let mut cfg = GameConfig::at_scale(8.0);
//! cfg.victim.epochs = 10; // doc-test speed
//! cfg.planner.mso.iters = 2;
//! cfg.planner.pds.inner_steps = 2;
//! cfg.opponent_planner = cfg.planner;
//! let outcome = run_game(&data, &market, AttackMethod::Msopds(ActionToggles::all()), &cfg);
//! assert!(outcome.avg_rating.is_finite());
//! ```

pub use msopds_attacks as attacks;
pub use msopds_autograd as autograd;
pub use msopds_core as core;
pub use msopds_gameplay as gameplay;
pub use msopds_het_graph as het_graph;
pub use msopds_recdata as recdata;
pub use msopds_recsys as recsys;
pub use msopds_telemetry as telemetry;
pub use msopds_xp as xp;

/// Convenient re-exports for examples and downstream users: the planning
/// stack of `msopds_core::prelude` plus the attack baselines, the evaluation
/// protocol and the experiment harness that sit above it.
pub mod prelude {
    pub use msopds_attacks::{Baseline, IaContext};
    pub use msopds_core::prelude::*;
    pub use msopds_gameplay::{run_game, AttackMethod, GameConfig, GameOutcome};
    pub use msopds_recdata::sample_market;
    pub use msopds_xp::{DatasetKind, RuntimeConfig, XpConfig};
}
