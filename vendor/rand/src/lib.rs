//! Offline vendored stand-in for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build container has no network access and no registry cache, so the
//! workspace's `rand` dependency resolves here via a path dependency (see
//! `[workspace.dependencies]` in the root manifest). Only the API surface the
//! workspace actually calls is provided: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — *not* the ChaCha
//! generator real `rand` uses. All workspace seeds are internal (experiment
//! reproducibility only requires self-consistency), so the stream change is
//! harmless, but checked-in fixtures generated under real `rand` would not
//! replay bit-identically.

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive, any supported
    /// numeric type).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample a `T` uniformly from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let span = self.end - self.start;
        self.start + unit_f64(rng.next_u64()) * span
    }
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply with
/// rejection, so every value is exactly equally likely.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty integer sample range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ over a SplitMix64-expanded
    /// seed). See the crate docs for how this differs from real `rand`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly picks one element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements uniformly without replacement
        /// (clamped to the slice length). Like real `rand`, the order of the
        /// returned elements is not the slice order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over indices: the first `amount` slots end
            // up holding a uniform sample without replacement.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = (i..idx.len()).sample(rng);
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }
    }

    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            self.as_slice().choose_multiple(rng, amount)
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
            let b: u8 = rng.gen_range(1..=5u8);
            assert!((1..=5).contains(&b));
        }
    }

    #[test]
    fn choose_multiple_is_distinct_and_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert_eq!(xs.choose_multiple(&mut rng, 99).count(), 10);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
