//! Offline vendored mini benchmark harness.
//!
//! Stands in for `criterion` 0.5, covering the surface this workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], the struct form of
//! [`criterion_group!`], and [`criterion_main!`].
//!
//! Differences from real criterion: no statistical analysis or HTML reports.
//! Each benchmark runs a short warm-up to size iteration batches, then takes
//! `sample_size` timed samples within roughly `measurement_time`, and reports
//! min/mean/median per-iteration wall time. On exit, [`criterion_main!`]
//! writes every result to `BENCH_<bench-target>.json` in the working
//! directory so performance is tracked across PRs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a hint in this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small outputs: batch many routine calls per setup.
    SmallInput,
    /// Large outputs: one routine call per setup.
    LargeInput,
    /// One call per batch.
    PerIteration,
}

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `kernels/matmul_128`.
    pub id: String,
    /// Timed samples, mean nanoseconds per iteration.
    pub sample_means_ns: Vec<f64>,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// `Some(reason)` when the benchmark did not run (environment gate,
    /// smoke mode, size cap). Skipped rows still appear in the JSON as
    /// `{"id": ..., "skipped": reason}` so a missing row always means a
    /// missing *benchmark*, never a silent gate.
    pub skipped: Option<String>,
}

impl BenchResult {
    /// An explicit not-run marker for `id`, carried through to the JSON.
    pub fn skipped(id: impl Into<String>, reason: impl Into<String>) -> Self {
        BenchResult {
            id: id.into(),
            sample_means_ns: Vec::new(),
            iters_per_sample: 0,
            skipped: Some(reason.into()),
        }
    }

    /// Mean over samples, ns/iteration.
    pub fn mean_ns(&self) -> f64 {
        self.sample_means_ns.iter().sum::<f64>() / self.sample_means_ns.len().max(1) as f64
    }

    /// Median over samples, ns/iteration.
    pub fn median_ns(&self) -> f64 {
        let mut xs = self.sample_means_ns.clone();
        xs.sort_by(|a, b| a.total_cmp(b));
        match xs.len() {
            0 => 0.0,
            n if n % 2 == 1 => xs[n / 2],
            n => 0.5 * (xs[n / 2 - 1] + xs[n / 2]),
        }
    }

    /// Fastest sample, ns/iteration.
    pub fn min_ns(&self) -> f64 {
        self.sample_means_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Benchmark identifier; built from `&str` / `String`.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_owned())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<&String> for BenchId {
    fn from(s: &String) -> Self {
        BenchId(s.clone())
    }
}

/// The benchmark driver: configuration plus collected results.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20, measurement_time: Duration::from_secs(3), results: Vec::new() }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the approximate total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        if let Some(mut result) = bencher.result.take() {
            result.id = id.clone();
            eprintln!(
                "bench {id}: mean {:.3} ms, median {:.3} ms, min {:.3} ms ({} samples x {} iters)",
                result.mean_ns() / 1e6,
                result.median_ns() / 1e6,
                result.min_ns() / 1e6,
                result.sample_means_ns.len(),
                result.iters_per_sample,
            );
            self.results.push(result);
        }
        self
    }

    /// Records an explicit skipped row: the benchmark is listed in the JSON
    /// with the reason it did not run instead of silently disappearing.
    pub fn skip(&mut self, id: impl Into<BenchId>, reason: impl Into<String>) -> &mut Self {
        let id = id.into().0;
        let reason = reason.into();
        eprintln!("bench {id}: skipped ({reason})");
        self.results.push(BenchResult::skipped(id, reason));
        self
    }

    /// Opens a named group; benchmark ids get a `group/` prefix.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, prefix: name.into() }
    }

    /// Drains the results collected so far (used by `criterion_main!`).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, id.into().0);
        self.criterion.bench_function(full, f);
        self
    }

    /// Records a skipped row inside the group (`group/` prefix applied).
    pub fn skip(&mut self, id: impl Into<BenchId>, reason: impl Into<String>) -> &mut Self {
        let full = format!("{}/{}", self.prefix, id.into().0);
        self.criterion.skip(full, reason);
        self
    }

    /// Ends the group (kept for criterion API parity; a no-op here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Times `routine`, called in batches sized from a warm-up estimate.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: find how long one call takes, with a floor so free
        // routines don't spin forever.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(20));

        let budget = self.measurement_time;
        let per_sample = budget / (self.sample_size as u32 + 1);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.result = Some(BenchResult {
            id: String::new(),
            sample_means_ns: samples,
            iters_per_sample: iters,
            skipped: None,
        });
    }

    /// Times `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let once = warm_start.elapsed().max(Duration::from_nanos(20));

        let budget = self.measurement_time;
        let per_sample = budget / (self.sample_size as u32 + 1);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            // Pre-build inputs so setup stays off the clock.
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.result = Some(BenchResult {
            id: String::new(),
            sample_means_ns: samples,
            iters_per_sample: iters,
            skipped: None,
        });
    }
}

/// Writes all results as `BENCH_<target>.json` next to the working directory.
///
/// The JSON is a flat list of `{id, mean_ns, median_ns, min_ns, samples}`
/// rows — enough to diff performance across PRs. Benchmarks that were gated
/// off appear as `{"id": ..., "skipped": reason}` rows, so the row set is
/// the same whether or not a gate fired.
pub fn write_results_json(target: &str, results: &[BenchResult]) {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        if let Some(reason) = &r.skipped {
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"skipped\": \"{}\"}}",
                r.id.replace('"', "'"),
                reason.replace('"', "'"),
            ));
            continue;
        }
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            r.id.replace('"', "'"),
            r.mean_ns(),
            r.median_ns(),
            r.min_ns(),
            r.sample_means_ns.len(),
            r.iters_per_sample,
        ));
    }
    out.push_str("\n]\n");
    let path = format!("BENCH_{target}.json");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

/// Declares a benchmark group (struct form, as the workspace uses).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> ::std::vec::Vec<$crate::BenchResult> {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
            criterion.take_results()
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs groups and writes the JSON
/// summary. The file name comes from the bench target's crate name
/// (`BENCH_kernels.json` for `benches/kernels.rs`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut all: ::std::vec::Vec<$crate::BenchResult> = ::std::vec::Vec::new();
            $(all.extend($group());)+
            $crate::write_results_json(env!("CARGO_CRATE_NAME"), &all);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("test/spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
    }

    #[test]
    fn collects_samples() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(30));
        spin(&mut c);
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "test/spin");
        assert_eq!(results[0].sample_means_ns.len(), 3);
        assert!(results[0].mean_ns() > 0.0);
        assert!(results[0].min_ns() <= results[0].median_ns() * (1.0 + 1e-9));
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        let results = c.take_results();
        assert_eq!(results[0].id, "grp/inner");
    }

    #[test]
    fn skips_are_recorded_and_serialized() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(20));
        c.skip("solo/gated", "needs MSOPDS_NET=1");
        let mut g = c.benchmark_group("grp");
        g.skip("inner", "smoke mode");
        g.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "solo/gated");
        assert_eq!(results[0].skipped.as_deref(), Some("needs MSOPDS_NET=1"));
        assert_eq!(results[1].id, "grp/inner");
        assert_eq!(results[1].skipped.as_deref(), Some("smoke mode"));
    }

    #[test]
    fn iter_batched_runs() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(20));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1.0f64; 64], |v| v.iter().sum::<f64>(), BatchSize::SmallInput)
        });
        assert_eq!(c.take_results().len(), 1);
    }
}
