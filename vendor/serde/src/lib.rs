//! Offline vendored stand-in for the `serde` facade.
//!
//! The real `serde` crate is unreachable in this build container (no network,
//! no registry cache), so the workspace patches `serde` to this crate. It
//! keeps the same *spelling* at use sites — `#[derive(Serialize,
//! Deserialize)]`, `use serde::{Serialize, Deserialize}` — but is internally a
//! much simpler design: both traits convert through an owned [`Value`] tree
//! (the JSON data model), and the derive macro in `serde_derive` generates
//! field-by-field `to_value` / `from_value` bodies.
//!
//! Integers are stored losslessly ([`Value::U64`] / [`Value::I64`]); floats
//! keep full `f64` precision. External enum tagging matches real serde: unit
//! variants serialize as strings, data variants as single-key maps.

/// The self-describing data model both traits convert through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    I64(i64),
    /// Unsigned integer (used for all non-negative integers).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

/// Shared `Null` so missing-field lookups can hand out a reference.
pub static NULL: Value = Value::Null;

impl Value {
    /// Looks up `name` in a [`Value::Map`], returning [`NULL`] when absent so
    /// `Option` fields deserialize as `None`.
    pub fn field(&self, name: &str) -> &Value {
        if let Value::Map(entries) = self {
            for (k, v) in entries {
                if k == name {
                    return v;
                }
            }
        }
        &NULL
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the data model, validating shape and ranges.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// Re-export the derive macros under the names the `derive` feature of real
// serde provides. The feature flag is accepted but the macros are always
// available.
pub use serde_derive::{Deserialize, Serialize};

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:literal; $($t:ident : $idx:tt),*) => {
        impl<$($t: Serialize),*> Serialize for ($($t,)*) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),*])
            }
        }
        impl<$($t: Deserialize),*> Deserialize for ($($t,)*) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)*))
                    }
                    other => Err(DeError::expected(concat!($len, "-element array"), other)),
                }
            }
        }
    };
}

impl_tuple!(2; A: 0, B: 1);
impl_tuple!(3; A: 0, B: 1, C: 2);
impl_tuple!(4; A: 0, B: 1, C: 2, D: 3);

impl<const N: usize, T: Serialize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<const N: usize, T: Deserialize + Copy + Default> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::expected("fixed-size array", other)),
        }
    }
}
