//! Offline vendored stand-in for the subset of `crossbeam` 0.8 this
//! workspace uses: multi-producer/multi-consumer unbounded channels and
//! scoped threads.
//!
//! The channel is a `Mutex<VecDeque>` + `Condvar` — adequate for the coarse
//! cell-level work distribution in `xp::runner` (items are whole experiment
//! games, so channel overhead is irrelevant). Scoped threads delegate to
//! `std::thread::scope`, preserving crossbeam's `Result`-of-joins API shape.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Multi-producer multi-consumer channels.
pub mod channel {
    use super::*;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half; cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloning adds another consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `item`; fails only if all receivers have been dropped.
        ///
        /// Receiver liveness is approximated by the strong count: senders and
        /// receivers share one `Arc`, so if the count equals the number of
        /// live senders, no receiver remains.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if Arc::strong_count(&self.shared) <= state.senders {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            // Clone the Arc *before* bumping the sender count: `send` treats
            // `strong_count <= senders` as "no receivers left", so the count
            // must never lag the sender tally.
            let shared = Arc::clone(&self.shared);
            shared.queue.lock().unwrap().senders += 1;
            Sender { shared }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next item, blocking while the channel is empty and at
        /// least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Blocking iterator that ends when the channel is drained and all
        /// senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    /// Iterator over received items; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

/// Handle passed to scoped-thread closures, mirroring `crossbeam::thread`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle (unused
    /// by this workspace, kept for crossbeam signature parity).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. Unlike `std::thread::scope`, a panic in an *unjoined* spawned
/// thread surfaces as `Err` in crossbeam — `std::thread::scope` instead
/// propagates the panic, which this stand-in converts back to `Err` by
/// catching it at the boundary.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // crossbeam imposes no UnwindSafe bound, so neither does this stand-in;
    // the assertion is sound because the scope's state is not observable
    // after an Err return.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fan_in_fan_out() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = rx.iter().sum();
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn recv_fails_when_senders_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scoped_threads_share_work() {
        let (work_tx, work_rx) = channel::unbounded::<u64>();
        let (res_tx, res_rx) = channel::unbounded::<u64>();
        for i in 0..32 {
            work_tx.send(i).unwrap();
        }
        drop(work_tx);
        let collected = scope(|s| {
            for _ in 0..4 {
                let work_rx = work_rx.clone();
                let res_tx = res_tx.clone();
                s.spawn(move |_| {
                    while let Ok(x) = work_rx.recv() {
                        res_tx.send(x * 2).unwrap();
                    }
                });
            }
            drop(res_tx);
            res_rx.iter().sum::<u64>()
        })
        .unwrap();
        assert_eq!(collected, 2 * 31 * 32 / 2);
    }
}
