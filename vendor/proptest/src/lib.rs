//! Offline vendored mini property-testing framework.
//!
//! Stands in for `proptest` 1.x, covering the surface this workspace uses:
//! the [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and tuple strategies, [`Strategy::prop_map`],
//! [`collection::vec`] / [`collection::btree_set`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its generated inputs verbatim.
//! - **Deterministic seeding.** Each test's RNG is seeded from the hash of
//!   its module path + name, so failures replay exactly; there is no
//!   persistence file.
//! - Strategy `Value`s must implement `Debug` (real proptest requires this
//!   too).

use std::fmt;

/// Per-test configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property assertion (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic generator used by strategies (xoshiro256++ seeded from the
/// test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary string (the macro passes `module::test_name`).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Anything usable as a collection size: an exact `usize` or a range.
    pub trait SizeBounds {
        /// Picks a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBounds for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeBounds for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeBounds>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Set of values from `element`; the target size is drawn from `size`
    /// (duplicates may leave the set smaller, like proptest under a tight
    /// element domain).
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeBounds,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeBounds,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so tiny domains cannot loop forever.
            for _ in 0..(4 * n + 8) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The usual glob-import surface: traits, config, and macros.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10usize, v in collection::vec(-1.0..1.0f64, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })();
                    if let Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (early-returns a
/// [`TestCaseError`] so the harness can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0usize..7, pair in (0u32..4, -1.0..1.0f64)) {
            prop_assert!(x < 7);
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn collections(
            v in crate::collection::vec(0u8..10, 3),
            s in crate::collection::btree_set(0usize..10, 0..6),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(s.len() < 6);
        }

        #[test]
        fn prop_map_applies(y in (1..=5u8).prop_map(|v| v as usize * 10)) {
            prop_assert!((10..=50).contains(&y));
            prop_assert_ne!(y, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
