//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! Real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this offline container, so this macro parses the `TokenStream` directly.
//! It supports exactly the shapes this workspace derives on:
//!
//! - structs with named fields and unit structs;
//! - enums with unit, named-field, and tuple variants.
//!
//! `#[serde(...)]` attributes are not supported (none exist in the
//! workspace); generic parameters are rejected with a compile error. Field
//! *types* never need to be understood: generated `from_value` bodies rely on
//! struct-literal / constructor type inference to pick the right
//! `Deserialize` impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One variant of a parsed item body.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { fields }`
    Struct(Vec<String>),
    /// `enum E { variants }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Splits the tokens of a brace/paren group into comma-separated segments,
/// tracking `<`/`>` depth so generic arguments don't split early.
/// (Parenthesized and bracketed subtrees arrive as single `Group` tokens, so
/// only angle brackets need explicit depth tracking.)
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Strips leading `#[...]` attributes and `pub` / `pub(...)` visibility from a
/// token segment.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

/// Extracts field names from the tokens of a named-field body.
fn parse_named_fields(body: &proc_macro::Group) -> Vec<String> {
    split_commas(body.stream().into_iter().collect())
        .into_iter()
        .filter_map(|segment| {
            let segment = strip_attrs_and_vis(&segment);
            match segment.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Parses the derive input down to item name + shape.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);

    let (keyword, rest) = match tokens.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &tokens[1..]),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    if matches!(rest.get(1), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive({name}): generic items are not supported by the vendored serde_derive");
    }

    match keyword.as_str() {
        "struct" => match rest.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, shape: Shape::Struct(parse_named_fields(g)) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item { name, shape: Shape::UnitStruct }
            }
            other => panic!(
                "derive({name}): unsupported struct body {other:?} (tuple structs unsupported)"
            ),
        },
        "enum" => {
            let body = match rest.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("derive({name}): expected enum body, found {other:?}"),
            };
            let variants = split_commas(body.stream().into_iter().collect())
                .into_iter()
                .filter_map(|segment| {
                    let segment = strip_attrs_and_vis(&segment);
                    let vname = match segment.first() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => return None,
                        other => panic!("derive({name}): bad variant start {other:?}"),
                    };
                    let kind = match segment.get(1) {
                        None => VariantKind::Unit,
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantKind::Named(parse_named_fields(g))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let arity = split_commas(g.stream().into_iter().collect()).len();
                            VariantKind::Tuple(arity)
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                            // Explicit discriminant: still a unit variant.
                            VariantKind::Unit
                        }
                        other => panic!("derive({name}): bad variant body {other:?}"),
                    };
                    Some(Variant { name: vname, kind })
                })
                .collect();
            Item { name, shape: Shape::Enum(variants) }
        }
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

/// Derives `serde::Serialize` by generating a `to_value` body.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("x{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})])",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    output.parse().expect("derive(Serialize): generated code failed to parse")
}

/// Derives `serde::Deserialize` by generating a `from_value` body.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\"))?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn})"));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let expr = if *arity == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?))")
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::NULL))?"
                                    )
                                })
                                .collect();
                            format!(
                                "match payload {{ ::serde::Value::Seq(items) => Ok({name}::{vn}({})), other => Err(::serde::DeError::expected(\"array\", other)) }}",
                                elems.join(", ")
                            )
                        };
                        data_arms.push(format!("\"{vn}\" => {expr}"));
                    }
                }
            }
            let unit_match = format!(
                "match tag.as_str() {{ {}, other => Err(::serde::DeError(format!(\"unknown variant `{{other}}` for {name}\"))) }}",
                if unit_arms.is_empty() {
                    "_never @ \"\\u{0}\" => unreachable!()".to_string()
                } else {
                    unit_arms.join(", ")
                }
            );
            let data_match = format!(
                "match tag.as_str() {{ {}, other => Err(::serde::DeError(format!(\"unknown variant `{{other}}` for {name}\"))) }}",
                if data_arms.is_empty() {
                    "_never @ \"\\u{0}\" => unreachable!()".to_string()
                } else {
                    data_arms.join(", ")
                }
            );
            format!(
                "match v {{\n\
                     ::serde::Value::Str(tag) => {unit_match},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                         let _ = payload;\n\
                         {data_match}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"enum tag\", other)),\n\
                 }}"
            )
        }
    };
    let output = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    output.parse().expect("derive(Deserialize): generated code failed to parse")
}
