//! Offline vendored stand-in for `serde_json`: a JSON writer/parser over the
//! stand-in serde [`Value`] data model.
//!
//! Covers the workspace's surface: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`from_reader`], and [`Error`]. Floats are written with
//! Rust's shortest-roundtrip `{:?}` formatting, so an `f64` survives a
//! write/parse cycle bit-exactly (the recdata `json_roundtrip_is_lossless`
//! test relies on this).

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON document"));
    }
    Ok(T::from_value(&value)?)
}

/// Reads all of `reader` and parses a `T` from it.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

/// Writes an f64 so that parsing it back yields the identical bits.
///
/// `{:?}` is Rust's shortest-roundtrip formatting; non-finite values have no
/// JSON representation, so they degrade to `null` exactly like real
/// serde_json.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_and_pad(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_and_pad(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_and_pad(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_and_pad(out, indent, depth + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, value, indent, depth + 1);
    }
    newline_and_pad(out, indent, depth);
    out.push('}');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8 boundaries: step back and take
                    // the full character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for &x in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-17, 4.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integers_roundtrip() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), u64::MAX);
        let text = to_string(&-42i64).unwrap();
        assert_eq!(from_str::<i64>(&text).unwrap(), -42);
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<f64>> = vec![vec![1.5, -2.0], vec![], vec![0.0]];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quoted\" \\slash\\ tab\t unicode π 🦀".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }
}
