//! # msopds-faultline
//!
//! Seeded, deterministic fault injection for the MSOPDS stack. Recovery code
//! that is never exercised is broken code waiting to be discovered in a
//! 40-hour sweep; this crate lets tests and CI *drive* the panic/NaN/delay
//! paths that the runner, CG solver and surrogate trainer are supposed to
//! survive.
//!
//! ## Cost model
//!
//! Without the `fault-injection` cargo feature every entry point in this
//! crate is an empty `#[inline]` function, so instrumented call sites
//! ([`fault_point!`], [`corrupt_slice`]) compile to nothing. With the feature
//! enabled but no plan armed, each call is one relaxed atomic load.
//!
//! ## Fault plans
//!
//! A plan names *sites* (free-form dotted strings like `"cg.solve"`), a fault
//! *kind* and a firing *rate*:
//!
//! ```text
//! MSOPDS_FAULT_PLAN="seed=42;xp.cell=panic@0.1;cg.solve=nan@0.05;pds.unroll=delay:3@0.5"
//! ```
//!
//! * `panic` — the site panics (callers are expected to `catch_unwind`);
//! * `nan` — [`corrupt_slice`] / [`corrupt_f64`] poison the value with NaN;
//! * `delay:MS` — the site sleeps `MS` milliseconds (exercises timeouts and
//!   the journal's partial-write tolerance);
//! * `trip` — [`fault_trip`] returns true and the site degrades itself in a
//!   site-specific way (the socket layer's short reads/writes, refused
//!   accepts and forced mid-frame disconnects).
//!
//! Rates are probabilities in `[0, 1]`; `site=panic` alone means rate 1.
//!
//! ## Determinism
//!
//! Whether a given check fires depends only on the plan seed, the site name,
//! the caller-set *context* ([`set_context`]) and the per-(context, site)
//! occurrence index — never on wall-clock, thread identity or scheduling.
//! The experiment runner sets the context to a hash of the cell key and the
//! attempt number, so (a) a sweep injects the *same* faults into the *same*
//! cells at any `--threads` value, and (b) a retried cell rolls fresh dice —
//! transient faults stay transient.

#![warn(missing_docs)]

#[cfg(feature = "fault-injection")]
use msopds_telemetry as telemetry;

/// Fault checks evaluated (armed plan only).
#[cfg(feature = "fault-injection")]
static CHECKS: telemetry::Counter = telemetry::Counter::new("faultline.checks");
/// Panics injected.
#[cfg(feature = "fault-injection")]
static PANICS: telemetry::Counter = telemetry::Counter::new("faultline.panics");
/// NaN corruptions injected.
#[cfg(feature = "fault-injection")]
static NANS: telemetry::Counter = telemetry::Counter::new("faultline.nans");
/// Delays injected.
#[cfg(feature = "fault-injection")]
static DELAYS: telemetry::Counter = telemetry::Counter::new("faultline.delays");
/// Trip signals fired.
#[cfg(feature = "fault-injection")]
static TRIPS: telemetry::Counter = telemetry::Counter::new("faultline.trips");

/// What an armed fault site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (unwinds into the nearest `catch_unwind`).
    Panic,
    /// Poison the value passed to [`corrupt_slice`] / [`corrupt_f64`] with NaN.
    Nan,
    /// Sleep this many milliseconds.
    DelayMs(u64),
    /// Signal the call site to degrade itself ([`fault_trip`] returns true).
    /// The socket layer uses this for short reads/writes, refused accepts and
    /// forced mid-frame disconnects — faults that are not a panic or a sleep
    /// but a *behavior* only the site knows how to perform.
    Trip,
}

/// One `site=kind@rate` rule of a fault plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Site name the rule applies to (exact match).
    pub site: String,
    /// Fault to inject.
    pub kind: FaultKind,
    /// Firing probability in `[0, 1]`.
    pub rate: f64,
}

/// A parsed fault plan: a decision seed plus a list of site rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every firing decision.
    pub seed: u64,
    /// Site rules, checked in order; every matching rule gets its own draw.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the `MSOPDS_FAULT_PLAN` syntax (see the crate docs).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (lhs, rhs) =
                part.split_once('=').ok_or_else(|| format!("fault plan: `{part}` is not k=v"))?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            if lhs == "seed" {
                plan.seed = rhs.parse().map_err(|_| format!("fault plan: bad seed `{rhs}`"))?;
                continue;
            }
            let (kind_s, rate) = match rhs.split_once('@') {
                Some((k, r)) => (
                    k.trim(),
                    r.trim()
                        .parse::<f64>()
                        .ok()
                        .filter(|r| (0.0..=1.0).contains(r))
                        .ok_or_else(|| format!("fault plan: bad rate in `{part}`"))?,
                ),
                None => (rhs, 1.0),
            };
            let kind = if kind_s == "panic" {
                FaultKind::Panic
            } else if kind_s == "nan" {
                FaultKind::Nan
            } else if kind_s == "trip" {
                FaultKind::Trip
            } else if let Some(ms) = kind_s.strip_prefix("delay:") {
                FaultKind::DelayMs(
                    ms.parse().map_err(|_| format!("fault plan: bad delay in `{part}`"))?,
                )
            } else {
                return Err(format!("fault plan: unknown kind `{kind_s}` in `{part}`"));
            };
            plan.rules.push(FaultRule { site: lhs.to_string(), kind, rate });
        }
        Ok(plan)
    }
}

/// SplitMix64: the decision hash. Small, seedable, well-mixed.
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))] // used by tests when disarmed
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a over a site name, so decisions depend on the site string only.
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))] // used by tests when disarmed
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Fast gate: true iff a plan with at least one rule is armed.
    pub(super) static ARMED: AtomicBool = AtomicBool::new(false);
    /// The armed plan. `OnceLock<Mutex<…>>` so [`set_plan`] can replace it.
    static PLAN: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();

    thread_local! {
        /// Caller-provided decision context (cell key × attempt).
        static CONTEXT: Cell<u64> = const { Cell::new(0) };
        /// Occurrence counters per site hash, reset on every context switch.
        static HITS: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
    }

    fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
        PLAN.get_or_init(|| Mutex::new(None))
    }

    pub(super) fn install(plan: Option<FaultPlan>) {
        let armed = plan.as_ref().is_some_and(|p| !p.rules.is_empty());
        *plan_slot().lock().unwrap_or_else(|e| e.into_inner()) = plan.map(Arc::new);
        ARMED.store(armed, Ordering::Release);
    }

    pub(super) fn current() -> Option<Arc<FaultPlan>> {
        plan_slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    pub(super) fn set_ctx(key: u64) {
        CONTEXT.with(|c| c.set(key));
        HITS.with(|h| h.borrow_mut().clear());
    }

    /// Draws for `site`: one occurrence index per call, one decision per
    /// matching rule. Returns the first rule that fires.
    pub(super) fn decide(site: &str) -> Option<FaultKind> {
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
        let plan = current()?;
        let sh = site_hash(site);
        let ctx = CONTEXT.with(|c| c.get());
        let n = HITS.with(|h| {
            let mut h = h.borrow_mut();
            let e = h.entry(sh).or_insert(0);
            *e += 1;
            *e
        });
        CHECKS.incr();
        for (ri, rule) in plan.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let h = splitmix64(
                plan.seed
                    ^ sh.rotate_left(17)
                    ^ ctx.rotate_left(31)
                    ^ n.rotate_left(47)
                    ^ (ri as u64).rotate_left(7),
            );
            // Top 53 bits → uniform fraction in [0, 1).
            let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
            if frac < rule.rate {
                return Some(rule.kind);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Public API. Every function exists in both modes so call sites compile
// unconditionally; without the feature the bodies are empty.
// ---------------------------------------------------------------------------

/// Arms `plan` process-wide (replacing any previous plan); `None` disarms.
/// A no-op without the `fault-injection` feature.
pub fn set_plan(plan: Option<FaultPlan>) {
    #[cfg(feature = "fault-injection")]
    armed::install(plan);
    #[cfg(not(feature = "fault-injection"))]
    let _ = plan;
}

/// Arms the plan in `MSOPDS_FAULT_PLAN`, if set.
///
/// # Panics
/// Panics on a malformed plan — a fault harness that silently injects
/// nothing would make CI green for the wrong reason.
pub fn arm_from_env() {
    #[cfg(feature = "fault-injection")]
    {
        match std::env::var("MSOPDS_FAULT_PLAN") {
            Ok(s) if !s.trim().is_empty() => {
                let plan = FaultPlan::parse(&s).unwrap_or_else(|e| panic!("{e}"));
                armed::install(Some(plan));
            }
            _ => {}
        }
    }
}

/// True when a non-empty plan is armed. Constant `false` without the feature.
#[inline]
pub fn armed() -> bool {
    #[cfg(feature = "fault-injection")]
    {
        armed::ARMED.load(std::sync::atomic::Ordering::Acquire)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        false
    }
}

/// Sets the deterministic decision context for the current thread and resets
/// its per-site occurrence counters. The runner calls this with a hash of
/// (cell key, attempt) before each cell attempt.
#[inline]
pub fn set_context(key: u64) {
    #[cfg(feature = "fault-injection")]
    armed::set_ctx(key);
    #[cfg(not(feature = "fault-injection"))]
    let _ = key;
}

/// A control-flow fault site: panics or sleeps when the armed plan says so.
/// `nan` and `trip` rules do not fire here (they need a value or a
/// site-specific degradation — see [`corrupt_slice`] and [`fault_trip`]).
#[inline]
pub fn fault_point(site: &str) {
    #[cfg(feature = "fault-injection")]
    match armed::decide(site) {
        Some(FaultKind::Panic) => {
            PANICS.incr();
            panic!("faultline: injected panic at `{site}`");
        }
        Some(FaultKind::DelayMs(ms)) => {
            DELAYS.incr();
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(FaultKind::Nan) | Some(FaultKind::Trip) | None => {}
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = site;
}

/// A behavioral fault site: returns `true` when a `trip` rule fires, telling
/// the caller to degrade itself in a site-specific way (read one byte instead
/// of a buffer, refuse the accepted socket, sever the connection mid-frame).
/// `panic` and `delay` rules behave as in [`fault_point`]; constant `false`
/// without the `fault-injection` feature.
#[inline]
pub fn fault_trip(site: &str) -> bool {
    #[cfg(feature = "fault-injection")]
    match armed::decide(site) {
        Some(FaultKind::Trip) => {
            TRIPS.incr();
            true
        }
        Some(FaultKind::Panic) => {
            PANICS.incr();
            panic!("faultline: injected panic at `{site}`");
        }
        Some(FaultKind::DelayMs(ms)) => {
            DELAYS.incr();
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Some(FaultKind::Nan) | None => false,
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        false
    }
}

/// A value fault site: poisons `data[0]` with NaN when a `nan` rule fires
/// (panic/delay rules behave as in [`fault_point`]).
#[inline]
pub fn corrupt_slice(site: &str, data: &mut [f64]) {
    #[cfg(feature = "fault-injection")]
    match armed::decide(site) {
        Some(FaultKind::Nan) => {
            NANS.incr();
            if let Some(v) = data.first_mut() {
                *v = f64::NAN;
            }
        }
        Some(FaultKind::Panic) => {
            PANICS.incr();
            panic!("faultline: injected panic at `{site}`");
        }
        Some(FaultKind::DelayMs(ms)) => {
            DELAYS.incr();
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(FaultKind::Trip) | None => {}
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = (site, data);
}

/// Scalar variant of [`corrupt_slice`].
#[inline]
pub fn corrupt_f64(site: &str, value: f64) -> f64 {
    let mut v = [value];
    corrupt_slice(site, &mut v);
    v[0]
}

/// Names a fault site. Expands to a call into this crate, so the enclosing
/// crate needs no `cfg` of its own; without the `fault-injection` feature the
/// callee is an empty inline function.
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        $crate::fault_point($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan() {
        let p =
            FaultPlan::parse("seed=42; xp.cell=panic@0.1; cg.solve=nan; pds=delay:3@0.5").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].kind, FaultKind::Panic);
        assert!((p.rules[0].rate - 0.1).abs() < 1e-12);
        assert_eq!(p.rules[1].kind, FaultKind::Nan);
        assert_eq!(p.rules[1].rate, 1.0);
        assert_eq!(p.rules[2].kind, FaultKind::DelayMs(3));
    }

    #[test]
    fn parses_trip_kind() {
        let p = FaultPlan::parse("seed=7;serve_net.read=trip@0.3").unwrap();
        assert_eq!(p.rules[0].kind, FaultKind::Trip);
        assert!((p.rules[0].rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_plans() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("a=explode").is_err());
        assert!(FaultPlan::parse("a=panic@1.5").is_err());
        assert!(FaultPlan::parse("a=panic@x").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("a=delay:@0.5").is_err());
    }

    #[test]
    fn empty_plan_parses_and_disarms() {
        let p = FaultPlan::parse("").unwrap();
        assert!(p.rules.is_empty());
    }

    #[test]
    fn hash_is_stable() {
        // The decision function must never change silently: journaled sweeps
        // replay faults bit-for-bit across versions.
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
        assert_eq!(site_hash("cg.solve"), site_hash("cg.solve"));
        assert_ne!(site_hash("cg.solve"), site_hash("xp.cell"));
    }

    #[cfg(not(feature = "fault-injection"))]
    mod disarmed {
        use super::*;

        #[test]
        fn everything_is_a_no_op() {
            set_plan(Some(FaultPlan::parse("a=panic").unwrap()));
            assert!(!armed());
            fault_point!("a");
            let mut v = [1.0, 2.0];
            corrupt_slice("a", &mut v);
            assert_eq!(v, [1.0, 2.0]);
            assert_eq!(corrupt_f64("a", 3.5), 3.5);
            set_plan(Some(FaultPlan::parse("a=trip").unwrap()));
            assert!(!fault_trip("a"));
        }
    }

    #[cfg(feature = "fault-injection")]
    mod injecting {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        /// Plan state is process-global; serialize the tests that arm it.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

        #[test]
        fn rate_one_panics_and_rate_zero_never_does() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(FaultPlan::parse("seed=1;boom=panic@1").unwrap()));
            set_context(7);
            assert!(catch_unwind(AssertUnwindSafe(|| fault_point("boom"))).is_err());
            set_plan(Some(FaultPlan::parse("seed=1;boom=panic@0").unwrap()));
            set_context(7);
            fault_point("boom"); // must not panic
            set_plan(None);
        }

        #[test]
        fn decisions_are_deterministic_in_context_and_occurrence() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(FaultPlan::parse("seed=3;x=nan@0.5").unwrap()));
            let draws = |ctx: u64| -> Vec<bool> {
                set_context(ctx);
                (0..64).map(|_| corrupt_f64("x", 1.0).is_nan()).collect()
            };
            let a = draws(11);
            let b = draws(11);
            assert_eq!(a, b, "same context must replay identically");
            let c = draws(12);
            assert_ne!(a, c, "different context must reroll");
            let fired = a.iter().filter(|&&f| f).count();
            assert!((10..=54).contains(&fired), "rate 0.5 fired {fired}/64");
            set_plan(None);
        }

        #[test]
        fn trip_fires_at_rate_one_and_only_for_trip_rules() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(FaultPlan::parse("seed=5;t=trip@1;u=nan@1").unwrap()));
            set_context(3);
            assert!(fault_trip("t"), "trip rule at rate 1 must fire");
            assert!(!fault_trip("u"), "nan rules must not read as trips");
            // Trip rules are inert at the panic/value entry points.
            fault_point("t");
            assert_eq!(corrupt_f64("t", 4.5), 4.5);
            set_plan(None);
        }

        #[test]
        fn unmatched_sites_never_fire() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(FaultPlan::parse("seed=3;x=panic@1").unwrap()));
            set_context(0);
            fault_point("y");
            assert_eq!(corrupt_f64("z", 2.0), 2.0);
            set_plan(None);
        }

        #[test]
        fn rates_are_respected_approximately() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(FaultPlan::parse("seed=9;x=nan@0.1").unwrap()));
            let mut fired = 0;
            for ctx in 0..400 {
                set_context(ctx);
                if corrupt_f64("x", 0.0).is_nan() {
                    fired += 1;
                }
            }
            // Binomial(400, 0.1): mean 40, σ ≈ 6.
            assert!((15..=70).contains(&fired), "10% rate fired {fired}/400");
            set_plan(None);
        }

        #[test]
        fn delay_site_sleeps() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(FaultPlan::parse("d=delay:20@1").unwrap()));
            set_context(0);
            let t0 = std::time::Instant::now();
            fault_point("d");
            assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
            set_plan(None);
        }
    }
}
