//! # msopds-bench
//!
//! Shared fixtures for the Criterion benchmarks. Each bench target mirrors
//! one table or figure of the paper (`table3`, `fig6` … `fig9`) at a reduced
//! scale, plus kernel microbenches (`kernels`, `training`). Every figure
//! bench prints the measured metric series once per run, so `cargo bench`
//! output doubles as a reduced regeneration of the paper's series.

use msopds_core::{MsoConfig, PlannerConfig};
use msopds_gameplay::GameConfig;
use msopds_recdata::{sample_market, Dataset, DatasetSpec, DemographicsSpec, Market};
use msopds_recsys::pds::PdsConfig;
use msopds_recsys::HetRecConfig;
use rand::SeedableRng;

/// The dataset scale divisor used by all game-level benches.
pub const BENCH_SCALE: f64 = 24.0;

/// A reduced game configuration sized for benchmarking.
pub fn bench_game_cfg() -> GameConfig {
    let planner = PlannerConfig {
        mso: MsoConfig { iters: 4, cg_iters: 3, ..Default::default() },
        pds: PdsConfig { inner_steps: 4, ..Default::default() },
    };
    GameConfig {
        victim: HetRecConfig { epochs: 30, dim: 8, ..Default::default() },
        planner,
        opponent_planner: planner,
        attacker_b: 5,
        n_opponents: 1,
        opponent_b: 2,
        scale: BENCH_SCALE,
        seed: 1,
        kernel_threads: 0,
    }
}

/// A Ciao-shaped dataset and market fixture shared by the game benches.
pub fn bench_setup(n_opponents: usize) -> (Dataset, Market) {
    let data = DatasetSpec::ciao().scaled(BENCH_SCALE).generate(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let market = sample_market(
        &data,
        &DemographicsSpec::default().scaled(BENCH_SCALE),
        n_opponents.max(1),
        &mut rng,
    );
    (data, market)
}
