//! Async-serving SLO benchmark: open-loop offered load vs tail latency,
//! dynamic batching against a forced batch-1 dispatcher.
//!
//! Emits `BENCH_serve_async.json` with, per `ScorePrecision`:
//!
//! * `{precision}/batch1_capacity_qps` — the saturation throughput of the
//!   async tier with `max_batch = 1` (every query pays a dispatcher wakeup
//!   and a single-row engine call): the baseline dynamic batching must beat;
//! * `{precision}/load{M}x/{mode}_completed_per_sec` and `…/{mode}_p99_us`
//!   (`mode` ∈ `async`, `batch1`) — both dispatch policies offered the
//!   **same** open-loop load at `M ×` the measured batch-1 capacity, for
//!   M ∈ {3, 4, 5}: three points up the load axis, all past batch-1
//!   saturation and reaching past the batched tier's own knee;
//! * `…/offered_qps` and `…/{mode}_rejected` — the load actually offered and
//!   how much of it each policy shed at the admission door;
//! * `config/{deadline_us,max_batch,queue_cap,top_k}` — the full admission
//!   and batching configuration the numbers were measured under, committed
//!   alongside them so a row is interpretable without reading this source.
//!   (Precision is already part of every measured row's id prefix.)
//!
//! The acceptance claim of ISSUE 7 reads directly off these rows: at equal
//! offered load the batched tier completes more per second than batch-1 at
//! every point, and at the measured points it sustains ≥ 3× the batch-1
//! capacity with p99 ≤ 2 ms. CI smoke asserts the first (robust on a noisy
//! runner); the committed full-mode JSON carries the second.
//!
//! All rows are derived measurements (`iters_per_sample = 1`, the same
//! convention as the serve bench's `users_per_sec` rows); samples are
//! queries/sec, µs, or counts — not wall-clock ns.
//!
//! Set `MSOPDS_BENCH_SMOKE=1` for the small CI model and short runs.

use std::time::Duration;

use criterion::BenchResult;
use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ServeConfig, ServingModel, Snapshot};
use msopds_serve_async::{
    run_open_loop, AsyncServeConfig, AsyncServer, BatcherConfig, LoadGenConfig, LoadReport,
};
use msopds_xp::{train_clean_victim, DatasetKind, XpConfig};

/// Offered-load multipliers over the measured batch-1 capacity.
const LOAD_POINTS: [f64; 3] = [3.0, 4.0, 5.0];
/// Ceiling on the offered rate: past ~3.2M attempts/sec the single-core
/// submit loop itself needs the whole CPU, so higher "offered" rates only
/// measure generator starvation, not the serving tier. Points are clamped
/// here and the actual offered rate is a committed row.
const MAX_OFFERED_QPS: f64 = 3.2e6;
/// Served list length (matches the serve bench).
const TOP_K: usize = 10;
/// Coalescing ceiling of the batched configuration. Modest on purpose: at
/// these model sizes a 256-row batch scores in well under a millisecond, so
/// even a full flush keeps p99 inside the 2 ms SLO.
const MAX_BATCH: usize = 256;

fn smoke() -> bool {
    std::env::var("MSOPDS_BENCH_SMOKE").is_ok()
}

/// Victim scale, shared with the serve bench: quick micro world for CI
/// smoke, ~2× larger for the committed full run.
fn xp_cfg() -> XpConfig {
    XpConfig {
        scale: if smoke() { 24.0 } else { 12.0 },
        seeds: vec![5],
        datasets: vec![DatasetKind::Ciao],
        backend: Backend::Dense,
        ..XpConfig::quick()
    }
}

fn server_cfg(max_batch: usize, cache: usize, precision: ScorePrecision) -> AsyncServeConfig {
    AsyncServeConfig {
        // queue_cap is the SLO lever: once offered load exceeds capacity the
        // p99 of *accepted* queries is ≈ queue_cap / service_rate, so a tight
        // cap trades sheds (reported per point) for a bounded tail. 256
        // pending at these service rates keeps the saturated p99 well
        // inside the 2 ms SLO even with single-core scheduler noise.
        batcher: BatcherConfig { deadline: Duration::from_micros(200), max_batch, queue_cap: 256 },
        // Full-universe LRU, warmed before each run: both policies serve at
        // steady state (the serve bench's engine-row convention), so the
        // comparison isolates dispatch policy, not first-touch scoring.
        serve: ServeConfig { top_k: TOP_K, cache_capacity: cache, precision },
    }
}

/// One open-loop run against a fresh warmed server.
fn run(
    model: &ServingModel,
    max_batch: usize,
    precision: ScorePrecision,
    requests: usize,
    offered_qps: f64,
) -> LoadReport {
    let warm: Vec<usize> = (0..model.n_users()).collect();
    let server =
        AsyncServer::start(model.clone(), server_cfg(max_batch, model.n_users(), precision));
    server.warm(&warm);
    let report = run_open_loop(&server, &LoadGenConfig { requests, offered_qps });
    server.shutdown();
    report
}

fn row(id: String, samples: Vec<f64>) -> BenchResult {
    BenchResult { id, sample_means_ns: samples, iters_per_sample: 1, skipped: None }
}

fn main() {
    let cfg = xp_cfg();
    let (data, victim) = train_clean_victim(&cfg);
    let bytes = victim.snapshot(&data).to_bytes();
    let model = ServingModel::from_snapshot(&Snapshot::from_bytes(&bytes).expect("bench snapshot"))
        .expect("bench snapshot serves");
    eprintln!(
        "serve_async: {} users × {} items, dim {}",
        model.n_users(),
        model.n_items(),
        model.dim()
    );

    let probe_requests = if smoke() { 4_000 } else { 24_000 };
    let mut all: Vec<BenchResult> = Vec::new();
    // The admission/batching config of the batched mode, as committed rows.
    let queue_cap = server_cfg(MAX_BATCH, 1, ScorePrecision::Exact64).batcher.queue_cap;
    for (knob, value) in [
        ("deadline_us", 200.0),
        ("max_batch", MAX_BATCH as f64),
        ("queue_cap", queue_cap as f64),
        ("top_k", TOP_K as f64),
    ] {
        all.push(row(format!("config/{knob}"), vec![value]));
    }
    for precision in [ScorePrecision::Exact64, ScorePrecision::Fast32] {
        // Saturation probe: offer far beyond any plausible capacity with
        // max_batch = 1 and read the completion rate. A warm-up run first —
        // the very first dispatches page in the model and the thread pair.
        run(&model, 1, precision, probe_requests / 4, 1e6);
        let probe = run(&model, 1, precision, probe_requests, 1e6);
        let batch1_capacity = probe.completed_per_sec;
        eprintln!("{precision}: batch-1 capacity {batch1_capacity:.0} completions/sec");
        all.push(row(format!("{precision}/batch1_capacity_qps"), vec![batch1_capacity]));

        // Several repetitions per point in full mode, *interleaved* across
        // the load points (rep-major order): the committed medians then
        // survive a transient noisy-neighbor window, which would otherwise
        // poison every sample of whichever point it landed on.
        let reps = if smoke() { 1 } else { 5 };
        let mut samples: Vec<[Vec<f64>; 8]> =
            LOAD_POINTS.iter().map(|_| Default::default()).collect();
        for _rep in 0..reps {
            for (point, slots) in LOAD_POINTS.iter().zip(samples.iter_mut()) {
                let offered = (batch1_capacity * point).min(MAX_OFFERED_QPS);
                // ~0.6 s of traffic per run, bounded for the smoke run.
                let requests =
                    ((offered * 0.6) as usize).clamp(1_000, if smoke() { 8_000 } else { 120_000 });
                let batched = run(&model, MAX_BATCH, precision, requests, offered);
                let single = run(&model, 1, precision, requests, offered);
                eprintln!(
                    "{precision}/load{point}x: offered {offered:.0} qps — async {:.0}/s p99 {} µs ({} shed), batch1 {:.0}/s p99 {} µs ({} shed)",
                    batched.completed_per_sec,
                    batched.latency.p99_us,
                    batched.rejected,
                    single.completed_per_sec,
                    single.latency.p99_us,
                    single.rejected,
                );
                for (slot, value) in slots.iter_mut().zip([
                    offered,
                    batched.completed_per_sec,
                    batched.latency.p99_us as f64,
                    batched.mean_batch_fill,
                    batched.rejected as f64,
                    single.completed_per_sec,
                    single.latency.p99_us as f64,
                    single.rejected as f64,
                ]) {
                    slot.push(value);
                }
            }
        }
        for (point, slots) in LOAD_POINTS.iter().zip(samples) {
            let prefix = format!("{precision}/load{point}x");
            for (suffix, values) in [
                "offered_qps",
                "async_completed_per_sec",
                "async_p99_us",
                "async_mean_batch_fill",
                "async_rejected",
                "batch1_completed_per_sec",
                "batch1_p99_us",
                "batch1_rejected",
            ]
            .into_iter()
            .zip(slots)
            {
                all.push(row(format!("{prefix}/{suffix}"), values));
            }
        }
    }
    criterion::write_results_json("serve_async", &all);
}
