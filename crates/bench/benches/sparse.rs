//! Sparse-vs-dense backend benchmarks: the neighbor aggregation `Â·H` and the
//! X̂-differentiable PDS-style unroll, both through the `GraphOps` API, at
//! n ∈ {200, 2 000, 20 000} (average degree 8, d = 16).
//!
//! Emits `BENCH_sparse.json` with timing rows plus `*/resident_bytes_*` rows
//! recording each backend's adjacency footprint (the value is stored in the
//! row's sample slot — bytes, not nanoseconds). The dense backend is skipped
//! at n = 20 000, where its adjacency alone is n² × 8 B = 3.2 GB; the sparse
//! rows at that size are the point of the backend. Set `MSOPDS_BENCH_SMOKE=1`
//! to run only the n = 200 cases (CI).

use criterion::{criterion_group, BenchResult, Criterion};
use msopds_autograd::{SparseMatrix, Tape, Tensor};
use msopds_het_graph::CsrGraph;
use msopds_recsys::convolve::mean_convolve;
use msopds_recsys::{Backend, EdgePatch, GraphOps};
use rand::{Rng, SeedableRng};

/// Feature dimensionality of every multiplied block.
const DIM: usize = 16;
/// Average degree of the synthetic graphs.
const DEGREE: usize = 8;
/// Unrolled differentiable convolution steps in the PDS-style bench.
const UNROLL: usize = 3;
/// Sparse adjacency at n = 20 000 is a few MB; dense is 3.2 GB — skip dense
/// above this size.
const DENSE_SKIP_ABOVE: usize = 2_000;

fn sizes() -> Vec<usize> {
    if std::env::var("MSOPDS_BENCH_SMOKE").is_ok() {
        vec![200]
    } else {
        vec![200, 2_000, 20_000]
    }
}

fn backends_for(n: usize) -> Vec<Backend> {
    if n <= DENSE_SKIP_ABOVE {
        vec![Backend::Sparse, Backend::Dense]
    } else {
        vec![Backend::Sparse]
    }
}

/// A random graph with ~`DEGREE`·n/2 undirected edges.
fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = std::collections::BTreeSet::new();
    for a in 0..n {
        for _ in 0..DEGREE / 2 {
            let b = rng.gen_range(0..n);
            if a != b {
                edges.insert((a.min(b), a.max(b)));
            }
        }
    }
    let edges: Vec<(usize, usize)> = edges.into_iter().collect();
    CsrGraph::from_edges(n, &edges)
}

fn features(n: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::randn(&[n, DIM], 0.5, &mut rng)
}

/// Candidate edges absent from `g`, in `EdgePatch` index form.
fn candidate_edges(g: &CsrGraph, n: usize, k: usize, seed: u64) -> Vec<(usize, (usize, usize))> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && !g.has_edge(a, b) {
            out.push((out.len(), (a.min(b), a.max(b))));
        }
    }
    out
}

/// One neighbor aggregation `Â·H` through the backend under test. Both
/// backends run the identical tape path, so the comparison isolates the
/// dense-matmul vs CSR-SpMM kernel (derived adjacency structures are cached
/// across iterations on the graph fingerprint, as in production).
fn aggregate_once(backend: Backend, g: &CsrGraph, h0: &Tensor) -> Tensor {
    let tape = Tape::new();
    let h = tape.constant(h0.clone());
    GraphOps::new(backend).adjacency(&tape, g).matmul(h).value()
}

fn spmm_sparse_vs_dense(c: &mut Criterion) {
    for n in sizes() {
        let g = random_graph(n, n as u64);
        let h = features(n, 1);
        for backend in backends_for(n) {
            c.bench_function(format!("{backend}/spmm_n{n}"), |b| {
                b.iter(|| std::hint::black_box(aggregate_once(backend, &g, &h)))
            });
        }
        if n > DENSE_SKIP_ABOVE {
            c.skip(
                format!("dense/spmm_n{n}"),
                format!("dense adjacency would be {:.1} GB", (n * n * 8) as f64 / 1e9),
            );
        }
    }
}

/// The inner computation every PDS planner iteration pays for: a poisoned
/// adjacency (base + X̂-modulated candidate edges), `UNROLL` differentiable
/// mean-convolutions, and the gradient of the result w.r.t. X̂.
fn pds_unroll(
    backend: Backend,
    g: &CsrGraph,
    cands: &[(usize, (usize, usize))],
    h0: &Tensor,
    w0: &Tensor,
) -> f64 {
    let n = g.num_nodes();
    let tape = Tape::new();
    let xhat = tape.leaf(Tensor::full(&[cands.len()], 0.5));
    let gops = GraphOps::new(backend);
    let a = gops.poisoned_adjacency(&tape, g, &[EdgePatch { candidates: cands, xhat }]);
    let inv = gops.inv_degree(&tape, g);
    let w = tape.constant(w0.clone());
    let mut h = tape.constant(h0.clone());
    for _ in 0..UNROLL {
        h = mean_convolve(h, &a, inv, w);
    }
    let loss = h.square().sum().scale(1.0 / n as f64);
    tape.grad(loss, &[xhat]).remove(0).sum()
}

fn pds_unroll_sparse_vs_dense(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let w0 = Tensor::randn(&[2 * DIM, DIM], 0.2, &mut rng);
    for n in sizes() {
        let g = random_graph(n, n as u64);
        let cands = candidate_edges(&g, n, (n / 10).max(4), 3);
        let h0 = features(n, 2);
        for backend in backends_for(n) {
            c.bench_function(format!("{backend}/pds_unroll_n{n}"), |b| {
                b.iter(|| std::hint::black_box(pds_unroll(backend, &g, &cands, &h0, &w0)))
            });
        }
        if n > DENSE_SKIP_ABOVE {
            c.skip(format!("dense/pds_unroll_n{n}"), "dense adjacency would not fit");
        }
    }
}

/// Adjacency-representation footprints, reported as extra JSON rows whose
/// sample value is **bytes** (`iters_per_sample` = 1 marks them as one-shot).
/// The sparse structure is rebuilt here (same CSR layout the backend caches)
/// so the byte count is measured, not estimated; dense is exactly n²·8.
fn resident_rows() -> Vec<BenchResult> {
    let mut rows = Vec::new();
    for n in sizes() {
        let g = random_graph(n, n as u64);
        let triplets: Vec<(usize, usize, f64)> =
            (0..n).flat_map(|u| g.neighbors(u).map(move |v| (u, v, 1.0))).collect();
        let csr = SparseMatrix::from_triplets(n, n, &triplets);
        rows.push(BenchResult {
            id: format!("sparse/resident_bytes_n{n}"),
            sample_means_ns: vec![csr.resident_bytes() as f64],
            iters_per_sample: 1,
            skipped: None,
        });
        rows.push(BenchResult {
            id: format!("dense/resident_bytes_n{n}"),
            sample_means_ns: vec![(n * n * 8) as f64],
            iters_per_sample: 1,
            skipped: None,
        });
    }
    rows
}

criterion_group!(benches, spmm_sparse_vs_dense, pds_unroll_sparse_vs_dense);

fn main() {
    let mut all = benches();
    all.extend(resident_rows());
    criterion::write_results_json("sparse", &all);
}
