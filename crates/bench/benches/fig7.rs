//! Fig. 7 bench: attack effectiveness vs the opponent's capacity b_op.

use criterion::{criterion_group, criterion_main, Criterion};
use msopds_bench::{bench_game_cfg, bench_setup};
use msopds_core::ActionToggles;
use msopds_gameplay::{run_game, AttackMethod, GameConfig};

fn fig7(c: &mut Criterion) {
    let (data, market) = bench_setup(1);
    let method = AttackMethod::Msopds(ActionToggles::all());

    println!("\n[fig7 @ bench scale] MSOPDS vs opponent capacity:");
    for b_op in [1usize, 2, 4] {
        let cfg = GameConfig { opponent_b: b_op, ..bench_game_cfg() };
        let out = run_game(&data, &market, method, &cfg);
        println!("  b_op = {b_op}: r̄ = {:.4}  HR@3 = {:.4}", out.avg_rating, out.hit_rate_at_3);
    }

    let mut group = c.benchmark_group("fig7");
    for b_op in [1usize, 2, 4] {
        let cfg = GameConfig { opponent_b: b_op, ..bench_game_cfg() };
        group.bench_function(format!("b_op_{b_op}"), |b| {
            b.iter(|| std::hint::black_box(run_game(&data, &market, method, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = fig7
}
criterion_main!(benches);
