//! Serving-path benchmarks: batched top-K throughput from a model snapshot,
//! at batch ∈ {1, 64, 1024}, for victims trained on each GraphOps backend.
//!
//! Emits `BENCH_serve.json` with two timing families plus derived rows:
//!
//! * `{backend}/topk_batch{B}` — raw `ServingModel::top_k_batch` (blocked
//!   score-matmul + selection, no cache): the compute cost of a cold batch;
//! * `{backend}/engine_batch{B}` — `ServeEngine::serve_batch` at steady
//!   state with a warm hot-user LRU: what a deployed replica pays per batch;
//! * `{backend}/users_per_sec_batch{B}` — serving throughput derived from
//!   the engine rows (batch ÷ median call time; the sample value is **users
//!   per second** and `iters_per_sample` = 1 marks the row as derived, the
//!   same convention as the sparse bench's `resident_bytes` rows).
//!
//! Batching amortizes the per-call overhead (cache bookkeeping, stats, span)
//! across the whole batch, so the batch-1024 users/sec row structurally
//! dominates batch-1 — CI asserts exactly that on the smoke run.
//!
//! Set `MSOPDS_BENCH_SMOKE=1` to bench the small CI model (quick scale) with
//! a short measurement budget.

use std::time::Duration;

use criterion::{criterion_group, BenchResult, Criterion};
use msopds_recsys::Backend;
use msopds_serve::{ServeConfig, ServeEngine, ServingModel, Snapshot};
use msopds_xp::{train_clean_victim, DatasetKind, XpConfig};

/// The batch sizes of the acceptance criterion.
const BATCHES: [usize; 3] = [1, 64, 1024];
/// Served list length.
const TOP_K: usize = 10;

fn smoke() -> bool {
    std::env::var("MSOPDS_BENCH_SMOKE").is_ok()
}

/// Victim scale: the CI smoke uses the quick config's micro world; the full
/// bench serves a ~2× larger one (still seconds to train).
fn xp_cfg(backend: Backend) -> XpConfig {
    XpConfig {
        scale: if smoke() { 24.0 } else { 12.0 },
        seeds: vec![5],
        datasets: vec![DatasetKind::Ciao],
        backend,
        ..XpConfig::quick()
    }
}

/// Snapshot bytes of a freshly trained clean victim on `backend`.
fn snapshot_bytes(backend: Backend) -> Vec<u8> {
    let cfg = xp_cfg(backend);
    let (data, victim) = train_clean_victim(&cfg);
    victim.snapshot(&data).to_bytes()
}

/// A deterministic batch of `n` user ids covering the universe with a
/// Fibonacci-hash stride (the same stream the `serve` binary replays).
fn query_batch(n: usize, n_users: usize) -> Vec<usize> {
    (0..n).map(|q| (q.wrapping_mul(0x9E3779B97F4A7C15) >> 7) % n_users).collect()
}

fn topk_throughput(c: &mut Criterion) {
    for backend in [Backend::Dense, Backend::Sparse] {
        let bytes = snapshot_bytes(backend);
        let model =
            ServingModel::from_snapshot(&Snapshot::from_bytes(&bytes).expect("bench snapshot"))
                .expect("bench snapshot serves");
        eprintln!(
            "{backend}: serving {} users × {} items, dim {}",
            model.n_users(),
            model.n_items(),
            model.dim()
        );
        for batch in BATCHES {
            let users = query_batch(batch, model.n_users());
            c.bench_function(format!("{backend}/topk_batch{batch}"), |b| {
                b.iter(|| std::hint::black_box(model.top_k_batch(&users, TOP_K)))
            });
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    for backend in [Backend::Dense, Backend::Sparse] {
        let bytes = snapshot_bytes(backend);
        let model =
            ServingModel::from_snapshot(&Snapshot::from_bytes(&bytes).expect("bench snapshot"))
                .expect("bench snapshot serves");
        let n_users = model.n_users();
        let mut engine = ServeEngine::new(
            model,
            ServeConfig { top_k: TOP_K, cache_capacity: n_users, ..ServeConfig::default() },
        );
        // Warm the LRU once so every timed batch measures steady-state
        // serving (hit path + per-call overhead), not first-touch scoring.
        let warm: Vec<usize> = (0..n_users).collect();
        engine.serve_batch(&warm);
        for batch in BATCHES {
            let users = query_batch(batch, n_users);
            c.bench_function(format!("{backend}/engine_batch{batch}"), |b| {
                b.iter(|| std::hint::black_box(engine.serve_batch(&users)))
            });
        }
    }
}

fn snapshot_load(c: &mut Criterion) {
    for backend in [Backend::Dense, Backend::Sparse] {
        let bytes = snapshot_bytes(backend);
        c.bench_function(format!("{backend}/snapshot_load"), |b| {
            b.iter(|| {
                let snap = Snapshot::from_bytes(std::hint::black_box(&bytes)).unwrap();
                std::hint::black_box(ServingModel::from_snapshot(&snap).unwrap())
            })
        });
    }
}

criterion_group!(
    name = benches;
    config = if smoke() {
        Criterion::default().sample_size(15).measurement_time(Duration::from_millis(600))
    } else {
        Criterion::default()
    };
    targets = topk_throughput, engine_throughput, snapshot_load
);

/// Users/sec rows derived from the steady-state `engine_batch` timings:
/// batch size divided by the **median** per-call wall time (median, not
/// mean — single-core CI containers produce occasional order-of-magnitude
/// outlier samples).
fn users_per_sec_rows(timed: &[BenchResult]) -> Vec<BenchResult> {
    timed
        .iter()
        .filter_map(|r| {
            let (prefix, batch) = r.id.split_once("/engine_batch")?;
            let batch: f64 = batch.parse().ok()?;
            let median_ns = r.median_ns();
            (median_ns > 0.0).then(|| BenchResult {
                id: format!("{prefix}/users_per_sec_batch{batch}"),
                sample_means_ns: vec![batch * 1e9 / median_ns],
                iters_per_sample: 1,
                skipped: None,
            })
        })
        .collect()
}

fn main() {
    let mut all = benches();
    all.extend(users_per_sec_rows(&all));
    criterion::write_results_json("serve", &all);
}
