//! Million-user scale sweep (ISSUE 9 tentpole d): streaming world build,
//! zero-copy snapshot load, and serve throughput at n ∈ {20k, 200k, 1M}.
//!
//! Nothing here materializes a dense structure: the world is emitted as
//! row-range `WorldChunk`s (streaming `WorldBuilder` mode — O(n_items +
//! chunk) resident), the social graph accumulates through `CsrBuilder`,
//! and the planted-model snapshot is written tensor-by-tensor through
//! `SnapshotWriter` without ever holding the `[n, d]` user matrix. Loads
//! are timed through both `SnapshotSource` paths; `mmap` load time should
//! stay flat in model size while the heap load grows with it — CI asserts
//! exactly that on the smoke run.
//!
//! Every row is a one-shot measurement (`iters_per_sample` = 1): the unit
//! is milliseconds for `*_ms` rows, bytes for `*_bytes` rows, and
//! users/sec for the serve row. Sizes gated off (smoke mode, opt-out) are
//! reported as explicit `{"skipped": reason}` rows, never silently
//! dropped. Set `MSOPDS_BENCH_SMOKE=1` for the 20k-only CI run, or
//! `MSOPDS_SCALE_SIZES=200000` (comma-separated) to pick sizes directly.

use std::time::Instant;

use criterion::BenchResult;
use msopds_het_graph::CsrBuilder;
use msopds_recdata::{DatasetSpec, WorldBuilder};
use msopds_recsys::snapshot::{ModelKind, SnapshotHeader, SnapshotWriter, TensorDecl};
use msopds_recsys::Backend;
use msopds_serve::{ServingModel, SnapshotSource};

const SEED: u64 = 42;
const DIM: usize = 8;
/// Item catalogs saturate around real-world scale: user counts grow into
/// the millions, catalogs don't.
const MAX_ITEMS: usize = 50_000;
const FULL_SIZES: [usize; 3] = [20_000, 200_000, 1_000_000];
const CHUNK_ROWS: usize = 65_536;

fn requested_sizes() -> Vec<usize> {
    if let Ok(raw) = std::env::var("MSOPDS_SCALE_SIZES") {
        return raw
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
    }
    if std::env::var("MSOPDS_BENCH_SMOKE").is_ok() {
        vec![FULL_SIZES[0]]
    } else {
        FULL_SIZES.to_vec()
    }
}

/// Ciao's density profile (≈17 ratings and ≈19 social links per user)
/// carried up to `n` users, with the item catalog capped at [`MAX_ITEMS`].
fn spec_for(n: usize) -> DatasetSpec {
    let mut spec = DatasetSpec::ciao();
    spec.name = format!("ciao-scale-{n}");
    spec.n_users = n;
    spec.n_items = ((n as f64 * 1.46) as usize).clamp(200, MAX_ITEMS);
    spec.n_ratings = n * 17;
    spec.n_links = n * 19;
    spec.latent_dim = DIM;
    spec
}

fn row(id: String, value: f64) -> BenchResult {
    BenchResult { id, sample_means_ns: vec![value], iters_per_sample: 1, skipped: None }
}

fn ms(elapsed: std::time::Duration) -> f64 {
    elapsed.as_secs_f64() * 1e3
}

/// Current resident set size from `/proc/self/status` (linux only).
fn vm_rss_bytes() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rest = status.lines().find_map(|l| l.strip_prefix("VmRSS:"))?;
    let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024.0)
}

/// One full sweep at `n`: streaming build → streamed snapshot → both load
/// paths → serve throughput. Returns the result rows.
fn sweep(n: usize, check_parity: bool) -> Vec<BenchResult> {
    let mut rows = Vec::new();
    let spec = spec_for(n);
    let builder = WorldBuilder::streaming(spec.clone(), SEED);

    // -- Build: emit every rating/edge/factor draw, keep only the CSR. ----
    let start = Instant::now();
    let mut social = CsrBuilder::with_capacity(spec.n_users, spec.n_links);
    let mut n_ratings = 0u64;
    let mut rating_digest = 0.0f64;
    builder.for_each_chunk(CHUNK_ROWS, |chunk| {
        n_ratings += chunk.ratings.len() as u64;
        // Fold the values so the generator can't be dead-code-eliminated.
        rating_digest += chunk.ratings.iter().map(|r| r.value).sum::<f64>();
        social.add_edges(chunk.social_edges.iter().copied());
    });
    let social = social.finish();
    let build = start.elapsed();
    assert!(rating_digest.is_finite());
    eprintln!(
        "scale n={n}: built {} ratings, {} social edges in {:.1} ms",
        n_ratings,
        social.num_edges(),
        ms(build)
    );
    rows.push(row(format!("scale/build_ms_n{n}"), ms(build)));
    rows.push(row(format!("scale/ratings_n{n}"), n_ratings as f64));
    rows.push(row(format!("scale/social_csr_bytes_n{n}"), social.resident_bytes() as f64));
    match vm_rss_bytes() {
        Some(rss) => rows.push(row(format!("scale/vm_rss_bytes_n{n}"), rss)),
        None => rows.push(BenchResult::skipped(
            format!("scale/vm_rss_bytes_n{n}"),
            "/proc/self/status unavailable",
        )),
    }

    // -- Snapshot: stream the planted MF model straight to disk. ---------
    let path = std::env::temp_dir().join(format!("msopds-scale-{n}-{}.snap", std::process::id()));
    let (n_users, n_items) = (spec.n_users, spec.n_items);
    let header = SnapshotHeader {
        kind: ModelKind::Mf,
        backend: Backend::Sparse,
        seed: SEED,
        social_fingerprint: social.fingerprint(),
        item_fingerprint: 0,
        n_users: n_users as u64,
        n_items: n_items as u64,
        mu: 3.5,
    };
    let start = Instant::now();
    let mut writer = SnapshotWriter::create(
        &path,
        header,
        "{\"planted\":true}",
        vec![
            TensorDecl::matrix("p", n_users, DIM),
            TensorDecl::matrix("q", n_items, DIM),
            TensorDecl::vector("b_u", n_users),
            TensorDecl::vector("b_i", n_items),
        ],
    )
    .expect("create snapshot writer");
    // p: the planted user factors, one chunk at a time — the [n, d] matrix
    // never exists in memory.
    builder.for_each_chunk(CHUNK_ROWS, |chunk| {
        writer.write(&chunk.user_latent).expect("stream user factors");
    });
    writer.write(&builder.item_latent()).expect("item factors");
    let zeros = vec![0.0f64; CHUNK_ROWS];
    for t in [n_users, n_items] {
        let mut left = t;
        while left > 0 {
            let take = left.min(CHUNK_ROWS);
            writer.write(&zeros[..take]).expect("biases");
            left -= take;
        }
    }
    writer.finish().expect("finish snapshot");
    let write = start.elapsed();
    let snap_bytes = std::fs::metadata(&path).expect("snapshot on disk").len();
    eprintln!("scale n={n}: wrote {snap_bytes} snapshot bytes in {:.1} ms", ms(write));
    rows.push(row(format!("scale/snapshot_write_ms_n{n}"), ms(write)));
    rows.push(row(format!("scale/snapshot_bytes_n{n}"), snap_bytes as f64));

    // -- Load: the heap path copies every payload, the mmap path none. ----
    let start = Instant::now();
    let heap = ServingModel::open(&SnapshotSource::file(&path)).expect("heap load");
    rows.push(row(format!("scale/heap_load_ms_n{n}"), ms(start.elapsed())));
    rows.push(row(format!("scale/heap_model_bytes_n{n}"), heap.heap_param_bytes() as f64));

    let start = Instant::now();
    let mapped = ServingModel::open(&SnapshotSource::mmap(&path)).expect("mmap load");
    rows.push(row(format!("scale/mmap_load_ms_n{n}"), ms(start.elapsed())));
    rows.push(row(format!("scale/mmap_model_bytes_n{n}"), mapped.heap_param_bytes() as f64));

    if check_parity {
        for u in [0usize, n_users / 2, n_users - 1] {
            for i in [0usize, n_items - 1] {
                assert_eq!(
                    heap.predict(u, i).to_bits(),
                    mapped.predict(u, i).to_bits(),
                    "heap/mmap drift at ({u}, {i})"
                );
            }
        }
    }
    drop(heap);

    // -- Serve: batched exact top-K straight off the mapped model. --------
    let k = 10;
    let queries = 2048usize;
    let stream: Vec<usize> =
        (0..queries).map(|q| (q.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7) % n_users).collect();
    let start = Instant::now();
    for batch in stream.chunks(64) {
        std::hint::black_box(mapped.top_k_batch(batch, k));
    }
    let served = start.elapsed();
    rows.push(row(
        format!("scale/serve_users_per_sec_n{n}"),
        queries as f64 / served.as_secs_f64(),
    ));
    drop(mapped);
    std::fs::remove_file(&path).ok();
    rows
}

fn main() {
    let sizes = requested_sizes();
    let mut all: Vec<BenchResult> = Vec::new();
    for (idx, &n) in sizes.iter().enumerate() {
        all.extend(sweep(n, idx == 0));
    }
    for &n in FULL_SIZES.iter().filter(|n| !sizes.contains(n)) {
        all.push(BenchResult::skipped(
            format!("scale/sweep_n{n}"),
            if std::env::var("MSOPDS_BENCH_SMOKE").is_ok() {
                "smoke mode runs the smallest size only"
            } else {
                "size excluded by MSOPDS_SCALE_SIZES"
            },
        ));
    }
    criterion::write_results_json("scale", &all);
}
