//! Fig. 6 bench: attack effectiveness and cost vs the number of opponents.
//! Prints the reduced series (r̄, HR@3 per opponent count) and benchmarks the
//! full game at each opponent count.

use criterion::{criterion_group, criterion_main, Criterion};
use msopds_bench::{bench_game_cfg, bench_setup};
use msopds_core::ActionToggles;
use msopds_gameplay::{run_game, AttackMethod, GameConfig};

fn fig6(c: &mut Criterion) {
    let (data, market) = bench_setup(3);
    let method = AttackMethod::Msopds(ActionToggles::all());

    println!("\n[fig6 @ bench scale] MSOPDS vs number of opponents:");
    for n in [1usize, 2, 3] {
        let cfg = GameConfig { n_opponents: n, ..bench_game_cfg() };
        let out = run_game(&data, &market, method, &cfg);
        println!("  opponents = {n}: r̄ = {:.4}  HR@3 = {:.4}", out.avg_rating, out.hit_rate_at_3);
    }

    let mut group = c.benchmark_group("fig6");
    for n in [1usize, 2, 3] {
        let cfg = GameConfig { n_opponents: n, ..bench_game_cfg() };
        group.bench_function(format!("opponents_{n}"), |b| {
            b.iter(|| std::hint::black_box(run_game(&data, &market, method, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = fig6
}
criterion_main!(benches);
