//! Substrate microbenchmarks: tensor kernels, backward passes, CG, and the
//! recorded PDS surrogate build that every planner iteration pays for.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use msopds_autograd::{conjugate_gradient, pool, Tape, Tensor};
use msopds_bench::{bench_setup, BENCH_SCALE};
use msopds_core::{build_ca_capacity, CaCapacitySpec};
use msopds_recsys::pds::{build_pds, PdsConfig, PlayerInput};
use rand::SeedableRng;

/// Lane counts compared by the parallel-vs-sequential benches. On a
/// single-core host the >1 variants measure pool overhead, not speedup —
/// interpret `BENCH_kernels.json` against the core count of the machine.
const LANE_COUNTS: [usize; 2] = [1, 4];

fn matmul(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    c.bench_function("kernels/matmul_128", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul(&b)))
    });
}

fn matmul_par_vs_seq(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for n in [64usize, 256, 1024] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        for lanes in LANE_COUNTS {
            pool::configure_threads(lanes);
            // Default size thresholds stay in force: n ≥ 64 already crosses
            // the matmul threshold (64³ = 256k), so this is the production
            // configuration, not a forced-parallel microbench.
            c.bench_function(format!("kernels/matmul_{n}_lanes{lanes}"), |bencher| {
                bencher.iter(|| std::hint::black_box(a.matmul(&b)))
            });
        }
    }
    reset_pool();
}

fn backward_par_vs_seq(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let x0 = Tensor::randn(&[256, 64], 1.0, &mut rng);
    let w0 = Tensor::randn(&[64, 64], 0.3, &mut rng);
    for lanes in LANE_COUNTS {
        pool::configure_threads(lanes);
        c.bench_function(format!("kernels/forward_backward_lanes{lanes}"), |bencher| {
            bencher.iter(|| {
                let tape = Tape::new();
                let x = tape.leaf(x0.clone());
                let w = tape.leaf(w0.clone());
                let loss = x.matmul(w).selu().matmul(w).square().sum();
                std::hint::black_box(tape.grad(loss, &[x, w]))
            })
        });
    }
    reset_pool();
}

fn unrolled_training_step_par_vs_seq(c: &mut Criterion) {
    let (mut data, market) = bench_setup(1);
    let cap = build_ca_capacity(
        &mut data,
        &market.players[0],
        market.target_item,
        &CaCapacitySpec::promote(5),
    );
    let planning = data.apply_poison(&cap.fixed);
    for lanes in LANE_COUNTS {
        pool::configure_threads(lanes);
        c.bench_function(format!("kernels/unrolled_training_step_lanes{lanes}"), |bencher| {
            bencher.iter_batched(
                || cap.importance.binarize(),
                |xhat| {
                    let tape = Tape::new();
                    let pds = build_pds(
                        &tape,
                        &planning,
                        &[PlayerInput { candidates: &cap.importance.candidates, xhat }],
                        &PdsConfig { inner_steps: 5, ..Default::default() },
                    );
                    let loss = msopds_recsys::losses::ca_loss(
                        &pds.scores(),
                        &market.target_audience,
                        market.target_item,
                        &market.competing_items,
                    );
                    std::hint::black_box(tape.grad(loss, &[pds.xhats[0]]))
                },
                BatchSize::SmallInput,
            )
        });
    }
    reset_pool();
}

fn reset_pool() {
    pool::set_parallel_thresholds(
        pool::DEFAULT_ELEMWISE_MIN,
        pool::DEFAULT_COPY_MIN,
        pool::DEFAULT_MATMUL_MIN,
    );
    pool::configure_threads(1);
}

fn backward_mlp(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let x0 = Tensor::randn(&[64, 32], 1.0, &mut rng);
    let w0 = Tensor::randn(&[32, 32], 0.3, &mut rng);
    c.bench_function("kernels/forward_backward_mlp", |bencher| {
        bencher.iter(|| {
            let tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let w = tape.leaf(w0.clone());
            let loss = x.matmul(w).selu().matmul(w).square().sum();
            std::hint::black_box(tape.grad(loss, &[x, w]))
        })
    });
}

fn double_backward(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let x0 = Tensor::randn(&[256], 1.0, &mut rng);
    let v = Tensor::randn(&[256], 1.0, &mut rng);
    c.bench_function("kernels/hessian_vector_product_256", |bencher| {
        bencher.iter(|| {
            let tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let loss = x.exp().mul(x.square()).sum();
            std::hint::black_box(msopds_autograd::hvp::hvp_exact(&tape, loss, x, &v))
        })
    });
}

fn cg_solve(c: &mut Criterion) {
    let n = 128;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let m = Tensor::randn(&[n, n], 1.0, &mut rng);
    let a = m.transpose().matmul(&m); // SPD (plus damping at solve time)
    let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    c.bench_function("kernels/cg_solve_128", |bencher| {
        bencher.iter(|| {
            conjugate_gradient(
                |v| {
                    let vt = Tensor::from_vec(v.to_vec(), &[n, 1]);
                    a.matmul(&vt).to_vec()
                },
                &b,
                32,
                1e-8,
                1e-2,
            )
        })
    });
}

fn pds_build_and_grad(c: &mut Criterion) {
    let (mut data, market) = bench_setup(1);
    let cap = build_ca_capacity(
        &mut data,
        &market.players[0],
        market.target_item,
        &CaCapacitySpec::promote(5),
    );
    let planning = data.apply_poison(&cap.fixed);
    c.bench_function("kernels/pds_unrolled_build_plus_grad", |bencher| {
        bencher.iter_batched(
            || cap.importance.binarize(),
            |xhat| {
                let tape = Tape::new();
                let pds = build_pds(
                    &tape,
                    &planning,
                    &[PlayerInput { candidates: &cap.importance.candidates, xhat }],
                    &PdsConfig { inner_steps: 5, ..Default::default() },
                );
                let loss = msopds_recsys::losses::ca_loss(
                    &pds.scores(),
                    &market.target_audience,
                    market.target_item,
                    &market.competing_items,
                );
                std::hint::black_box(tape.grad(loss, &[pds.xhats[0]]))
            },
            BatchSize::SmallInput,
        )
    });
    let _ = BENCH_SCALE;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = matmul, backward_mlp, double_backward, cg_solve, pds_build_and_grad,
        matmul_par_vs_seq, backward_par_vs_seq, unrolled_training_step_par_vs_seq
}
criterion_main!(benches);
