//! Fast-path benchmarks for the two PR-6 hot loops, emitting
//! `BENCH_fastpath.json`:
//!
//! * **Scoring** — `score/f64_topk_batch{B}` vs `score/f32_topk_batch{B}`
//!   at batch ∈ {1, 64, 1024} (full top-K serving answer on each path), plus
//!   `score/f64_raw_batch1024` / `score/f32_raw_batch1024` for the bare
//!   score kernels without selection, and derived
//!   `score/users_per_sec_{f64,f32}_batch{B}` rows (batch ÷ median call
//!   time; `iters_per_sample` = 1 marks them derived, the serve-bench
//!   convention). The acceptance criterion is ≥2× f32-over-f64 users/sec at
//!   batch 1024 on the full model; CI's smoke run asserts the direction
//!   (f32 > f64) on the small model.
//!
//! * **CG solves** — `cg/single_f{N}` vs `cg/multi_f{N}` for N ∈ {1, 4, 16}
//!   followers: N SPD systems sharing one operator (a 2-D grid Laplacian
//!   plus identity, the planner's shared-PDS shape), solved by N sequential
//!   `conjugate_gradient` calls (one SpMV per iteration each) or by one
//!   `conjugate_gradient_multi` whose `apply_multi` packs the active
//!   directions into an `[n, N]` operand and runs a single SpMM — the same
//!   amortization `mso_optimize`'s batched arm gets from multi-seed
//!   backward. Both paths run a fixed iteration budget (tol pinned far below
//!   reach) so the timed work is identical; column-wise bitwise equality of
//!   the two solution sets is asserted once outside the timer.
//!
//! The scoring model is synthetic (deterministic splitmix64 embeddings, in
//! memory) so this bench measures kernels, not training: 2048 users × 4096
//! items × d=64 full, 256 × 512 × d=32 under `MSOPDS_BENCH_SMOKE=1`.

use std::time::Duration;

use criterion::{criterion_group, BenchResult, Criterion};
use msopds_autograd::{conjugate_gradient, conjugate_gradient_multi, SparseMatrix, Tensor};
use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotHeader};
use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ServingModel};

/// The batch sizes of the acceptance criterion.
const BATCHES: [usize; 3] = [1, 64, 1024];
/// Follower counts of the multi-RHS comparison (4 is the CI assertion).
const FOLLOWERS: [usize; 3] = [1, 4, 16];
/// Served list length.
const TOP_K: usize = 10;
/// Fixed CG iteration budget: tol is pinned unreachably low so single and
/// multi run exactly this many lockstep iterations per system.
const CG_ITERS: usize = 40;

fn smoke() -> bool {
    std::env::var("MSOPDS_BENCH_SMOKE").is_ok()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn payload(state: &mut u64, n: usize) -> Vec<f64> {
    (0..n).map(|_| ((splitmix(state) >> 11) as f64 / (1u64 << 53) as f64) - 0.5).collect()
}

/// A synthetic MF serving model with deterministic pseudo-random embeddings
/// — big enough that the scoring matmul dominates, small enough to build in
/// milliseconds.
fn synthetic_model() -> ServingModel {
    let (n_users, n_items, d) = if smoke() { (256, 512, 32) } else { (2048, 4096, 64) };
    let mut state = 0x5ca1ab1e;
    let snap = Snapshot {
        header: SnapshotHeader {
            kind: ModelKind::Mf,
            backend: Backend::Dense,
            seed: 1,
            social_fingerprint: 0,
            item_fingerprint: 0,
            n_users: n_users as u64,
            n_items: n_items as u64,
            mu: 3.5,
        },
        config_json: String::from("{}"),
        tensors: vec![
            (String::from("p"), Tensor::from_vec(payload(&mut state, n_users * d), &[n_users, d])),
            (String::from("q"), Tensor::from_vec(payload(&mut state, n_items * d), &[n_items, d])),
            (String::from("b_u"), Tensor::from_vec(payload(&mut state, n_users), &[n_users, 1])),
            (String::from("b_i"), Tensor::from_vec(payload(&mut state, n_items), &[n_items, 1])),
        ],
    };
    ServingModel::from_snapshot(&snap).expect("synthetic snapshot serves")
}

/// Deterministic batch of user ids (the serve binary's Fibonacci stream).
fn query_batch(n: usize, n_users: usize) -> Vec<usize> {
    (0..n).map(|q| (q.wrapping_mul(0x9E3779B97F4A7C15) >> 7) % n_users).collect()
}

fn scoring(c: &mut Criterion) {
    let model = synthetic_model();
    eprintln!(
        "fastpath: scoring {} users × {} items, dim {}",
        model.n_users(),
        model.n_items(),
        model.dim()
    );
    // Build the f32 tables outside the timer (one-time per process anyway).
    let _ = model.score_batch_f32(&[0]);
    for batch in BATCHES {
        let users = query_batch(batch, model.n_users());
        c.bench_function(format!("score/f64_topk_batch{batch}"), |b| {
            b.iter(|| {
                std::hint::black_box(model.top_k_batch_with(&users, TOP_K, ScorePrecision::Exact64))
            })
        });
        c.bench_function(format!("score/f32_topk_batch{batch}"), |b| {
            b.iter(|| {
                std::hint::black_box(model.top_k_batch_with(&users, TOP_K, ScorePrecision::Fast32))
            })
        });
    }
    let users = query_batch(*BATCHES.last().expect("non-empty"), model.n_users());
    c.bench_function(format!("score/f64_raw_batch{}", users.len()), |b| {
        b.iter(|| std::hint::black_box(model.score_batch(&users)))
    });
    c.bench_function(format!("score/f32_raw_batch{}", users.len()), |b| {
        b.iter(|| std::hint::black_box(model.score_batch_f32(&users)))
    });
}

/// `side²`-node 2-D grid Laplacian + I: SPD, ~5 nnz/row — the sparsity
/// shape of the planner's damped curvature systems.
fn grid_operator(side: usize) -> SparseMatrix {
    let n = side * side;
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(5 * n);
    let id = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        for c in 0..side {
            let i = id(r, c);
            let mut degree = 0.0;
            let mut push_neighbor = |j: usize| {
                triplets.push((i, j, -1.0));
                degree += 1.0;
            };
            if r > 0 {
                push_neighbor(id(r - 1, c));
            }
            if r + 1 < side {
                push_neighbor(id(r + 1, c));
            }
            if c > 0 {
                push_neighbor(id(r, c - 1));
            }
            if c + 1 < side {
                push_neighbor(id(r, c + 1));
            }
            triplets.push((i, i, degree + 1.0));
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

fn cg_solves(c: &mut Criterion) {
    let side = if smoke() { 32 } else { 128 };
    let a = grid_operator(side);
    let n = a.rows();
    eprintln!("fastpath: CG on {n}×{n} grid Laplacian ({} nnz)", a.nnz());
    let spmv = |v: &[f64]| -> Vec<f64> { a.spmm(&Tensor::from_vec(v.to_vec(), &[n, 1])).to_vec() };
    let spmm_multi = |dirs: &[(usize, &[f64])]| -> Vec<Vec<f64>> {
        // Pack the active directions into one [n, N] operand so the whole
        // lockstep iteration costs a single SpMM sweep over the matrix.
        let nact = dirs.len();
        let mut packed = vec![0.0f64; n * nact];
        for (j, (_, v)) in dirs.iter().enumerate() {
            for (row, &x) in v.iter().enumerate() {
                packed[row * nact + j] = x;
            }
        }
        let out = a.spmm(&Tensor::from_vec(packed, &[n, nact]));
        let od = out.data();
        (0..nact).map(|j| (0..n).map(|row| od[row * nact + j]).collect()).collect()
    };

    let max_followers = *FOLLOWERS.iter().max().expect("non-empty");
    let mut state = 0xfeedbeef;
    let all_rhs: Vec<Vec<f64>> = (0..max_followers).map(|_| payload(&mut state, n)).collect();

    // Equal-answer check, once, outside the timers: every multi column must
    // be bitwise the sequential solution (lockstep recurrences + per-column
    // deterministic SpMM ⇒ no tolerance needed).
    for &followers in &FOLLOWERS {
        let rhs = &all_rhs[..followers];
        let single: Vec<Vec<f64>> =
            rhs.iter().map(|b| conjugate_gradient(&spmv, b, CG_ITERS, 1e-30, 0.0).x).collect();
        let multi = conjugate_gradient_multi(spmm_multi, rhs, CG_ITERS, 1e-30, 0.0);
        for (s, m) in single.iter().zip(&multi) {
            assert_eq!(s.len(), m.x.len());
            for (a, b) in s.iter().zip(&m.x) {
                assert_eq!(a.to_bits(), b.to_bits(), "multi-RHS drifted from sequential");
            }
        }
    }

    for &followers in &FOLLOWERS {
        let rhs = &all_rhs[..followers];
        c.bench_function(format!("cg/single_f{followers}"), |b| {
            b.iter(|| {
                for rhs_one in rhs {
                    std::hint::black_box(conjugate_gradient(&spmv, rhs_one, CG_ITERS, 1e-30, 0.0));
                }
            })
        });
        c.bench_function(format!("cg/multi_f{followers}"), |b| {
            b.iter(|| {
                std::hint::black_box(conjugate_gradient_multi(
                    spmm_multi, rhs, CG_ITERS, 1e-30, 0.0,
                ))
            })
        });
    }
}

criterion_group!(
    name = benches;
    config = if smoke() {
        Criterion::default().sample_size(15).measurement_time(Duration::from_millis(600))
    } else {
        Criterion::default()
    };
    targets = scoring, cg_solves
);

/// Users/sec rows derived from the top-K timings on both precisions.
fn users_per_sec_rows(timed: &[BenchResult]) -> Vec<BenchResult> {
    timed
        .iter()
        .filter_map(|r| {
            let rest = r.id.strip_prefix("score/")?;
            let (path, batch) = rest.split_once("_topk_batch")?;
            let batch: f64 = batch.parse().ok()?;
            let median_ns = r.median_ns();
            (median_ns > 0.0).then(|| BenchResult {
                id: format!("score/users_per_sec_{path}_batch{batch}"),
                sample_means_ns: vec![batch * 1e9 / median_ns],
                iters_per_sample: 1,
                skipped: None,
            })
        })
        .collect()
}

fn main() {
    let mut all = benches();
    all.extend(users_per_sec_rows(&all));
    criterion::write_results_json("fastpath", &all);
}
