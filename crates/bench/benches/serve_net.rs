//! Multi-process loopback benchmark of the TCP serving transport.
//!
//! The in-process open-loop generator tops out near 3.2M attempts/sec on a
//! single submit loop (the `serve_async` bench clamps there on purpose —
//! past it the generator, not the tier, is what's measured). Real offered
//! load does not come from one loop: this bench forks N **client
//! processes**, each driving a pipelined window of queries over its own TCP
//! connection, so the aggregate attempt rate scales with client processes
//! instead of being clamped by one generator core.
//!
//! Emits `BENCH_serve_net.json` with, per `ScorePrecision` and
//! N ∈ {1, 4, 8} client processes:
//!
//! * `{precision}/procs{N}/completions_per_sec` — total completed queries
//!   divided by the slowest client's wall-clock (the honest aggregate);
//! * `{precision}/procs{N}/p99_us` — the worst per-client p99;
//! * `{precision}/procs{N}/offered` and `…/rejected` — totals across
//!   clients, so sheds are visible next to the throughput they bought;
//! * `config/{deadline_us,max_batch,queue_cap,conn_window,top_k}` — the full
//!   admission/batching/windowing configuration the numbers were measured
//!   under.
//!
//! The orchestrator re-executes its own binary as the workers: a child with
//! `MSOPDS_SERVE_NET_ROLE=client` connects to `MSOPDS_SERVE_NET_ADDR`,
//! drives `MSOPDS_SERVE_NET_REQUESTS` queries, and prints one line of
//! whitespace-separated counters. No shared memory, no threads pretending
//! to be processes.
//!
//! Set `MSOPDS_BENCH_SMOKE=1` for the small CI model and short runs.

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::Duration;

use criterion::BenchResult;
use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ServeConfig, ServingModel, Snapshot};
use msopds_serve_async::{stream_user, AsyncServeConfig, AsyncServer, BatcherConfig};
use msopds_serve_net::{NetClient, NetServeConfig, NetServer, RetryPolicy};
use msopds_xp::{train_clean_victim, DatasetKind, XpConfig};

/// Client-process fan-out points.
const PROCS: [usize; 3] = [1, 4, 8];
/// Pipelined in-flight window per client — matches the server's default
/// `conn_window`, so the client can keep the wire full without tripping
/// per-connection backpressure.
const WINDOW: usize = 64;
/// Served list length (matches the serve benches).
const TOP_K: usize = 10;
/// Batched dispatcher configuration (matches the serve_async bench).
const MAX_BATCH: usize = 256;
const DEADLINE_US: u64 = 200;
const QUEUE_CAP: usize = 8192;

fn smoke() -> bool {
    std::env::var("MSOPDS_BENCH_SMOKE").is_ok()
}

fn xp_cfg() -> XpConfig {
    XpConfig {
        scale: if smoke() { 24.0 } else { 12.0 },
        seeds: vec![5],
        datasets: vec![DatasetKind::Ciao],
        backend: Backend::Dense,
        ..XpConfig::quick()
    }
}

fn row(id: String, samples: Vec<f64>) -> BenchResult {
    BenchResult { id, sample_means_ns: samples, iters_per_sample: 1, skipped: None }
}

/// What one client process measured, parsed back from its stdout line.
struct ClientRun {
    offered: u64,
    completed: u64,
    rejected: u64,
    elapsed_s: f64,
    p99_us: u64,
}

/// Worker mode: drive the pipelined load and print one whitespace line.
fn run_client() -> ! {
    let env = |k: &str| std::env::var(k).unwrap_or_else(|_| panic!("{k} must be set for workers"));
    let addr: std::net::SocketAddr = env("MSOPDS_SERVE_NET_ADDR").parse().expect("worker addr");
    let requests: u64 = env("MSOPDS_SERVE_NET_REQUESTS").parse().expect("worker requests");
    let users: usize = env("MSOPDS_SERVE_NET_USERS").parse().expect("worker users");
    let salt: u64 = env("MSOPDS_SERVE_NET_SALT").parse().expect("worker salt");

    let mut client = NetClient::connect(addr, RetryPolicy::default()).expect("worker connect");
    // Each process walks a salted slice of the shared deterministic user
    // stream so concurrent clients don't serve identical (cached) queries.
    let report = client
        .run_pipelined(requests, WINDOW, 0, |i| {
            stream_user(i.wrapping_add(salt.wrapping_mul(0x1000)) as usize, users) as u64
        })
        .expect("worker pipelined run");
    println!(
        "{} {} {} {:.6} {}",
        report.offered,
        report.completed,
        report.rejected,
        report.elapsed.as_secs_f64(),
        report.latency_pct_us(0.99),
    );
    std::process::exit(0)
}

/// Spawns `n` worker processes against `addr` and collects their reports.
fn drive(
    addr: std::net::SocketAddr,
    n: usize,
    requests_per_client: u64,
    users: usize,
) -> Vec<ClientRun> {
    let exe = std::env::current_exe().expect("bench exe path");
    let children: Vec<_> = (0..n)
        .map(|salt| {
            Command::new(&exe)
                .env("MSOPDS_SERVE_NET_ROLE", "client")
                .env("MSOPDS_SERVE_NET_ADDR", addr.to_string())
                .env("MSOPDS_SERVE_NET_REQUESTS", requests_per_client.to_string())
                .env("MSOPDS_SERVE_NET_USERS", users.to_string())
                .env("MSOPDS_SERVE_NET_SALT", salt.to_string())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn client process")
        })
        .collect();
    children
        .into_iter()
        .map(|mut child| {
            let mut out = String::new();
            child.stdout.take().expect("piped stdout").read_to_string(&mut out).expect("read");
            let status = child.wait().expect("client process exit");
            assert!(status.success(), "client process failed: {status:?}\n{out}");
            let f: Vec<&str> = out.split_whitespace().collect();
            assert_eq!(f.len(), 5, "malformed worker report: {out:?}");
            ClientRun {
                offered: f[0].parse().expect("offered"),
                completed: f[1].parse().expect("completed"),
                rejected: f[2].parse().expect("rejected"),
                elapsed_s: f[3].parse().expect("elapsed"),
                p99_us: f[4].parse().expect("p99"),
            }
        })
        .collect()
}

fn main() {
    if std::env::var("MSOPDS_SERVE_NET_ROLE").as_deref() == Ok("client") {
        run_client();
    }

    let cfg = xp_cfg();
    let (data, victim) = train_clean_victim(&cfg);
    let bytes = victim.snapshot(&data).to_bytes();
    let model = ServingModel::from_snapshot(&Snapshot::from_bytes(&bytes).expect("bench snapshot"))
        .expect("bench snapshot serves");
    let users = model.n_users();
    eprintln!("serve_net: {} users × {} items, dim {}", users, model.n_items(), model.dim());

    let mut all: Vec<BenchResult> = Vec::new();
    for (knob, value) in [
        ("deadline_us", DEADLINE_US as f64),
        ("max_batch", MAX_BATCH as f64),
        ("queue_cap", QUEUE_CAP as f64),
        ("conn_window", WINDOW as f64),
        ("top_k", TOP_K as f64),
    ] {
        all.push(row(format!("config/{knob}"), vec![value]));
    }

    let reps = if smoke() { 1 } else { 3 };
    for precision in [ScorePrecision::Exact64, ScorePrecision::Fast32] {
        let server_cfg = AsyncServeConfig {
            batcher: BatcherConfig {
                deadline: Duration::from_micros(DEADLINE_US),
                max_batch: MAX_BATCH,
                queue_cap: QUEUE_CAP,
            },
            serve: ServeConfig { top_k: TOP_K, cache_capacity: users, precision },
        };
        let net_cfg = NetServeConfig { conn_window: WINDOW, ..NetServeConfig::default() };
        let server = AsyncServer::start(model.clone(), server_cfg);
        server.warm(&(0..users).collect::<Vec<_>>());
        let net = NetServer::start("127.0.0.1:0", server, net_cfg).expect("bench bind");
        let addr = net.local_addr();

        // Keep total traffic roughly constant across fan-out points so a
        // run is ~the same wall-clock whether 1 or 8 processes offer it.
        let total_requests: u64 = if smoke() { 16_000 } else { 240_000 };
        let mut samples: Vec<[Vec<f64>; 4]> = PROCS.iter().map(|_| Default::default()).collect();
        for _rep in 0..reps {
            for (&n, slots) in PROCS.iter().zip(samples.iter_mut()) {
                let per_client = total_requests / n as u64;
                let runs = drive(addr, n, per_client, users);
                let offered: u64 = runs.iter().map(|r| r.offered).sum();
                let completed: u64 = runs.iter().map(|r| r.completed).sum();
                let rejected: u64 = runs.iter().map(|r| r.rejected).sum();
                let wall = runs.iter().map(|r| r.elapsed_s).fold(0.0f64, f64::max).max(1e-9);
                let p99 = runs.iter().map(|r| r.p99_us).max().unwrap_or(0);
                let per_sec = completed as f64 / wall;
                eprintln!(
                    "{precision}/procs{n}: {offered} offered — {per_sec:.0} completions/sec, worst p99 {p99} µs, {rejected} rejected",
                );
                for (slot, value) in
                    slots.iter_mut().zip([per_sec, p99 as f64, offered as f64, rejected as f64])
                {
                    slot.push(value);
                }
            }
        }
        let stats = net.drain();
        assert!(stats.balanced(), "bench accounting must balance: {stats:?}");

        for (&n, slots) in PROCS.iter().zip(samples) {
            let prefix = format!("{precision}/procs{n}");
            for (suffix, values) in
                ["completions_per_sec", "p99_us", "offered", "rejected"].into_iter().zip(slots)
            {
                all.push(row(format!("{prefix}/{suffix}"), values));
            }
        }
    }
    criterion::write_results_json("serve_net", &all);
}
