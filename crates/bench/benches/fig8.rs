//! Fig. 8 bench: the poisoning-action category ablation (ratings only vs
//! ratings+item vs ratings+user vs full capacity).

use criterion::{criterion_group, criterion_main, Criterion};
use msopds_bench::{bench_game_cfg, bench_setup};
use msopds_core::ActionToggles;
use msopds_gameplay::{run_game, AttackMethod};

fn fig8(c: &mut Criterion) {
    let (data, market) = bench_setup(1);
    let cfg = bench_game_cfg();
    let variants = [
        ("ratings_only", ActionToggles::ratings_only()),
        ("ratings_item", ActionToggles::ratings_and_item()),
        ("ratings_user", ActionToggles::ratings_and_social()),
        ("full", ActionToggles::all()),
    ];

    println!("\n[fig8 @ bench scale] action-category ablation:");
    for (name, toggles) in variants {
        let out = run_game(&data, &market, AttackMethod::Msopds(toggles), &cfg);
        println!("  {name:<13} r̄ = {:.4}  HR@3 = {:.4}", out.avg_rating, out.hit_rate_at_3);
    }

    let mut group = c.benchmark_group("fig8");
    for (name, toggles) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(run_game(&data, &market, AttackMethod::Msopds(toggles), &cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = fig8
}
criterion_main!(benches);
