//! Model-training benchmarks: the victim Het-RecSys and the MF surrogate.

use criterion::{criterion_group, criterion_main, Criterion};
use msopds_bench::bench_setup;
use msopds_recsys::{HetRec, HetRecConfig, MatrixFactorization, MfConfig};

fn victim_fit(c: &mut Criterion) {
    let (data, _) = bench_setup(1);
    for (name, attention) in [("attention", true), ("mean", false)] {
        let cfg = HetRecConfig { epochs: 10, dim: 8, attention, ..Default::default() };
        c.bench_function(format!("training/victim_10_epochs_{name}"), |b| {
            b.iter(|| {
                let mut model = HetRec::new(cfg, data.n_users(), data.n_items());
                std::hint::black_box(model.fit(&data))
            })
        });
    }
}

fn mf_fit(c: &mut Criterion) {
    let (data, _) = bench_setup(1);
    c.bench_function("training/mf_20_epochs", |b| {
        b.iter(|| {
            let mut mf = MatrixFactorization::new(
                MfConfig { epochs: 20, ..Default::default() },
                data.n_users(),
                data.n_items(),
            );
            std::hint::black_box(mf.fit(&data))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = victim_fit, mf_fit
}
criterion_main!(benches);
