//! Fig. 9 bench: real hired users vs injected fake accounts (item-graph
//! actions excluded throughout, per the figure's protocol).

use criterion::{criterion_group, criterion_main, Criterion};
use msopds_bench::{bench_game_cfg, bench_setup};
use msopds_core::ActionToggles;
use msopds_gameplay::{run_game, AttackMethod};

fn fig9(c: &mut Criterion) {
    let (data, market) = bench_setup(1);
    let cfg = bench_game_cfg();
    let variants = [
        ("real_only", ActionToggles::real_only()),
        ("fake_only", ActionToggles::fake_only()),
        ("both", ActionToggles::no_item_edges()),
    ];

    println!("\n[fig9 @ bench scale] real vs fake accounts:");
    for (name, toggles) in variants {
        let out = run_game(&data, &market, AttackMethod::Msopds(toggles), &cfg);
        println!("  {name:<10} r̄ = {:.4}  HR@3 = {:.4}", out.avg_rating, out.hit_rate_at_3);
    }

    let mut group = c.benchmark_group("fig9");
    for (name, toggles) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(run_game(&data, &market, AttackMethod::Msopds(toggles), &cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = fig9
}
criterion_main!(benches);
