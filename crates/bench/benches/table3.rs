//! Table III bench: one reduced game per attack method against a single
//! opponent. Criterion measures the cost of planning + game + victim
//! retraining per method; the measured r̄ / HR@3 per method is printed once,
//! regenerating a reduced Table III column.

use criterion::{criterion_group, criterion_main, Criterion};
use msopds_attacks::Baseline;
use msopds_bench::{bench_game_cfg, bench_setup};
use msopds_core::ActionToggles;
use msopds_gameplay::{run_game, AttackMethod};

fn table3(c: &mut Criterion) {
    let (data, market) = bench_setup(1);
    let cfg = bench_game_cfg();

    let methods: Vec<(String, AttackMethod)> = Baseline::all()
        .into_iter()
        .map(|b| (b.name().to_string(), AttackMethod::Baseline(b)))
        .chain(std::iter::once(("MSOPDS".to_string(), AttackMethod::Msopds(ActionToggles::all()))))
        .collect();

    println!("\n[table3 @ bench scale, b = {}] reduced regeneration:", cfg.attacker_b);
    for (name, method) in &methods {
        let out = run_game(&data, &market, *method, &cfg);
        println!("  {name:<10} r̄ = {:.4}  HR@3 = {:.4}", out.avg_rating, out.hit_rate_at_3);
    }

    let mut group = c.benchmark_group("table3");
    for (name, method) in methods {
        group.bench_function(&name, |b| {
            b.iter(|| std::hint::black_box(run_game(&data, &market, method, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = table3
}
criterion_main!(benches);
