//! Calibration probe: how much does a 5-star poison batch lift the target's
//! predicted rating for non-rating users, as a function of victim λ/epochs?
fn main() {
    use msopds_recdata::{DatasetSpec, PoisonAction};
    use msopds_recsys::{HetRec, HetRecConfig};
    let data = DatasetSpec::ciao().scaled(24.0).generate(1);
    let n = data.n_users();
    println!("users={} items={} ratings={}", n, data.n_items(), data.ratings.len());
    // Target: a low-degree item; audience: 10 users that did NOT rate it.
    let target = (0..data.n_items())
        .filter(|&i| data.ratings.item_degree(i) > 0)
        .min_by(|&a, &b| {
            data.ratings
                .item_mean(a)
                .unwrap()
                .partial_cmp(&data.ratings.item_mean(b).unwrap())
                .unwrap()
        })
        .unwrap();
    let audience: Vec<usize> =
        (0..n).filter(|&u| data.ratings.get(u, target).is_none()).take(12).collect();
    // Hired real users (well-connected) vs fresh fakes.
    let mut hired: Vec<usize> = (0..n).collect();
    hired.sort_by_key(|&u| std::cmp::Reverse(data.social.degree(u)));
    let hired: Vec<usize> = hired.into_iter().filter(|u| !audience.contains(u)).take(8).collect();

    for (lambda, epochs) in [(1e-4, 60), (1e-3, 60), (1e-2, 60), (1e-2, 40), (5e-2, 40)] {
        let cfg = HetRecConfig { dim: 12, epochs, lambda, attention: true, ..Default::default() };
        let mut clean = HetRec::new(cfg, data.n_users(), data.n_items());
        clean.fit(&data);
        let base: f64 =
            audience.iter().map(|&u| clean.predict(u, target)).sum::<f64>() / audience.len() as f64;

        // real hired 5-stars
        let real_poison: Vec<PoisonAction> = hired
            .iter()
            .map(|&u| PoisonAction::Rating { user: u as u32, item: target as u32, value: 5.0 })
            .collect();
        let dreal = data.apply_poison(&real_poison);
        let mut m1 = HetRec::new(cfg, dreal.n_users(), dreal.n_items());
        m1.fit(&dreal);
        let r1: f64 =
            audience.iter().map(|&u| m1.predict(u, target)).sum::<f64>() / audience.len() as f64;

        // fake 5-stars (+social links to hired users)
        let mut dfake = data.clone();
        let fakes = dfake.add_fake_users(8);
        let mut fp: Vec<PoisonAction> = fakes
            .iter()
            .map(|&f| PoisonAction::Rating { user: f as u32, item: target as u32, value: 5.0 })
            .collect();
        for &f in &fakes {
            for &h in hired.iter().take(3) {
                fp.push(PoisonAction::SocialEdge { a: h as u32, b: f as u32 });
            }
        }
        let dfake = dfake.apply_poison(&fp);
        let mut m2 = HetRec::new(cfg, dfake.n_users(), dfake.n_items());
        m2.fit(&dfake);
        let r2: f64 =
            audience.iter().map(|&u| m2.predict(u, target)).sum::<f64>() / audience.len() as f64;

        println!("λ={lambda:<6} ep={epochs}: clean r̄={base:.3} | +8 real 5★ → {r1:.3} (Δ{:+.3}) | +8 fake 5★+links → {r2:.3} (Δ{:+.3}) | rmse={:.3}",
          r1-base, r2-base, clean.rmse(&data));
    }
}
