//! # msopds-xp
//!
//! The experiment harness regenerating every table and figure of the MSOPDS
//! evaluation (§VI): Table III (single-opponent comparison), Fig. 6 (number
//! of opponents), Fig. 7 (opponent capacity), Fig. 8 (action categories) and
//! Fig. 9 (real vs fake accounts), plus the attack × defense zoo matrix
//! (every attack against every shadow-ban policy, HR@10-lift grid). Runs
//! cells in parallel, averages over seeds, and renders paper-shaped reports.
//!
//! Use the `repro` binary:
//!
//! ```text
//! cargo run --release -p msopds-xp --bin repro -- table3 --quick
//! cargo run --release -p msopds-xp --bin repro -- matrix --quick
//! cargo run --release -p msopds-xp --bin repro -- all
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod journal;
pub mod matrix;
pub mod runner;
pub mod serving;

pub use config::{DatasetKind, RuntimeConfig, RuntimeConfigBuilder, XpConfig};
pub use experiments::{
    defense_cells, fig6_cells, fig7_cells, fig8_cells, fig9_cells, render_table, run_experiment,
    sweep_methods, table3_cells, to_json, Variant,
};
pub use journal::{load_journal, CellError, CellErrorKind, CellKey, Journal, JournalEntry};
pub use matrix::{
    attack_by_name, matrix_attacks, matrix_cells, matrix_defenses, matrix_grid, render_grid,
    GridCell, MatrixGrid,
};
pub use runner::{
    average_over_seeds, materialize, run_cells, run_cells_with, Cell, FailedCell, Measurement,
    RunError, RunOptions, RunReport, DEFAULT_RETRIES,
};
pub use serving::{train_clean_victim, write_victim_snapshot};
