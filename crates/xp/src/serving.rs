//! The write side of the snapshot handoff: train the clean victim once and
//! persist it for the `serve` read path (`crates/serve`).
//!
//! `repro --snapshot-out FILE` (or the dedicated `repro snapshot` id) calls
//! [`write_victim_snapshot`]; the `serve` binary and the bench harness load
//! the file back through `msopds_serve::ServingModel`. The snapshot carries
//! the dataset's CSR fingerprints, so a poisoned or regenerated world is
//! detected at load time instead of silently serving stale embeddings.

use std::path::Path;

use msopds_recdata::Dataset;
use msopds_recsys::snapshot::{Snapshot, SnapshotError};
use msopds_recsys::HetRec;

use crate::config::XpConfig;

/// Generates the clean (unpoisoned) evaluation world for the first
/// configured dataset and seed, and trains the victim on it — the same
/// victim configuration every game of the sweep retrains, minus the poison.
pub fn train_clean_victim(cfg: &XpConfig) -> (Dataset, HetRec) {
    let kind = cfg.datasets.first().copied().unwrap_or(crate::config::DatasetKind::Ciao);
    let seed = cfg.seeds.first().copied().unwrap_or(1);
    let data = kind.spec().scaled(cfg.scale).generate(seed);
    let mut victim = HetRec::new(cfg.game(seed).victim, data.n_users(), data.n_items());
    victim.fit(&data);
    (data, victim)
}

/// Trains the clean victim and writes its snapshot to `path`. Returns the
/// snapshot that was persisted (header already stamped with backend, seed
/// and graph fingerprints).
pub fn write_victim_snapshot(cfg: &XpConfig, path: &Path) -> Result<Snapshot, SnapshotError> {
    let (data, victim) = train_clean_victim(cfg);
    let snap = victim.snapshot(&data);
    snap.save(path)?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetKind;

    fn tiny_cfg() -> XpConfig {
        XpConfig {
            scale: 24.0,
            seeds: vec![5],
            datasets: vec![DatasetKind::Ciao],
            ..XpConfig::quick()
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let cfg = tiny_cfg();
        let dir = std::env::temp_dir().join(format!("msopds-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.snap");
        let written = write_victim_snapshot(&cfg, &path).expect("write snapshot");
        let read = Snapshot::load(&path).expect("read snapshot back");
        assert_eq!(read.header, written.header);
        assert_eq!(read.tensors.len(), written.tensors.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
