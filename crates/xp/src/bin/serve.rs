//! `serve` — answer batched top-K queries from a persisted model snapshot.
//!
//! Usage: `serve --snapshot FILE [--batch N] [--queries Q] [--top-k K]
//! [--cache N] [--precision exact64|fast32] [--threads N]
//! [--metrics-out FILE]`
//!
//! Loads the snapshot written by `repro --snapshot-out` into an immutable
//! `ServingModel` (no retraining, no planners), then drives `Q` user queries
//! through the `ServeEngine` in batches of `N`. The query stream is a
//! deterministic multiplicative-hash walk over the user universe, so reruns
//! are reproducible and, once `Q` exceeds the user count, the hot-user LRU
//! starts absorbing repeats.
//!
//! Runtime flags share the `RuntimeConfig` parse point with `repro`
//! (`--threads` sizes the kernel pool the score-matmul runs on;
//! `--metrics-out` records serve spans/counters and the QPS/latency gauges).
//!
//! Prints one human line per summary field to stderr and a single JSON
//! object to stdout, e.g.:
//!
//! ```text
//! {"queries":4096,"batch":64,"top_k":10,"users_per_sec":51234.0,...}
//! ```
//!
//! Exit status: 0 success, 2 usage error, 1 snapshot load/serve failure.

use std::path::PathBuf;

use msopds_serve::{ServeConfig, ServeEngine, ServingModel, SnapshotSource};
use msopds_xp::RuntimeConfig;

const USAGE: &str = "usage: serve --snapshot FILE [--mmap] [--batch N] [--queries Q] [--top-k K] [--cache N] [--precision exact64|fast32] [--threads N] [--backend dense|sparse] [--metrics-out FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let runtime = RuntimeConfig::builder()
        .parse_cli(&args)
        .and_then(|(builder, rest)| Ok((builder.build()?, rest)));
    let (runtime, rest) = match runtime {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let mut snapshot: Option<PathBuf> = None;
    let mut mmap = false;
    let mut batch = 64usize;
    let mut queries = 1024usize;
    let mut top_k = 10usize;
    let mut cache = 256usize;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value(&mut i, "--snapshot"))),
            "--mmap" => mmap = true,
            "--batch" => batch = parse_count(&value(&mut i, "--batch"), "--batch"),
            "--queries" => queries = parse_count(&value(&mut i, "--queries"), "--queries"),
            "--top-k" => top_k = parse_count(&value(&mut i, "--top-k"), "--top-k"),
            "--cache" => {
                cache = value(&mut i, "--cache").parse().unwrap_or_else(|_| {
                    eprintln!("--cache takes an integer\n{USAGE}");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(snapshot) = snapshot else {
        eprintln!("--snapshot FILE is required\n{USAGE}");
        std::process::exit(2);
    };

    runtime.install();
    msopds_autograd::pool::configure_threads(runtime.threads);

    let source = if mmap {
        SnapshotSource::mmap(&snapshot)
    } else {
        SnapshotSource::file(&snapshot)
    };
    let model = match ServingModel::open(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("serve: cannot load {}: {e}", snapshot.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "serve: {:?} model, {} users × {} items, dim {} (trained on {} backend, seed {}){}",
        model.kind(),
        model.n_users(),
        model.n_items(),
        model.dim(),
        model.backend(),
        model.seed(),
        if model.is_zero_copy() { ", zero-copy mmap" } else { "" }
    );

    let n_users = model.n_users();
    let mut engine = ServeEngine::new(
        model,
        ServeConfig { top_k, cache_capacity: cache, precision: runtime.precision },
    );
    // Deterministic pseudo-random query stream (Fibonacci hashing): covers
    // the whole user universe before repeating when Q ≥ n_users.
    let stream: Vec<usize> =
        (0..queries).map(|q| (q.wrapping_mul(0x9E3779B97F4A7C15) >> 7) % n_users).collect();
    for chunk in stream.chunks(batch.max(1)) {
        engine.serve_batch(chunk);
    }

    let s = engine.summary();
    eprintln!(
        "serve: {} queries in {} batches ({} scoring) — {:.0} users/sec, p50 {} µs, p99 {} µs, {} cache hits / {} misses",
        s.queries,
        s.batches,
        runtime.precision,
        s.users_per_sec,
        s.p50_us,
        s.p99_us,
        s.cache_hits,
        s.cache_misses
    );
    println!(
        "{{\"queries\":{},\"batches\":{},\"batch\":{},\"top_k\":{},\"precision\":\"{}\",\"users_per_sec\":{:.1},\"mean_us\":{:.1},\"p50_us\":{},\"p99_us\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
        s.queries,
        s.batches,
        batch,
        top_k,
        runtime.precision,
        s.users_per_sec,
        s.mean_us,
        s.p50_us,
        s.p99_us,
        s.cache_hits,
        s.cache_misses
    );
    runtime.export_metrics();
}

fn parse_count(raw: &str, flag: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} takes a positive integer\n{USAGE}");
            std::process::exit(2);
        }
    }
}
