//! `serve-net` — the async serving tier behind a real TCP socket, plus the
//! matching load driver. One binary, two modes:
//!
//! **Listen** (`--listen ADDR --snapshot FILE`): loads the snapshot, starts
//! an `AsyncServer` with the runtime batcher knobs, and fronts it with a
//! [`NetServer`] speaking the versioned length-prefixed wire protocol.
//! Per-connection backpressure is bounded by `--conn-window` (default 64);
//! `SIGTERM` triggers a graceful drain bounded by `--drain-ms` (default
//! 1000): in-flight queries are served, late ones get typed `Draining`
//! rejects, and the final accounting — for which
//! `offered == completed + rejected + drained` holds exactly — is printed
//! as one JSON object to stdout before a clean exit 0.
//!
//! **Connect** (`--connect ADDR`): drives `--requests` pipelined queries
//! (window = `--conn-window`) over the deterministic Fibonacci-hash user
//! stream shared with the in-process load generator, retrying idempotent
//! queries through disconnects, and reports completions/sec with tail
//! latency as JSON.
//!
//! Usage:
//!
//! ```text
//! serve-net --listen 127.0.0.1:7878 --snapshot FILE [--top-k K] [--cache N]
//!           [--deadline-us N] [--max-batch N] [--queue-cap N]
//!           [--conn-window N] [--drain-ms N] [--precision exact64|fast32]
//! serve-net --connect 127.0.0.1:7878 [--requests N] [--users N]
//!           [--query-deadline-us N] [--conn-window N]
//! ```
//!
//! Exit status: 0 success (including a drained listen run), 2 usage or
//! config error, 1 snapshot-load / bind / connect / runtime failure.

use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::time::Duration;

use msopds_serve::{ServeConfig, ServingModel, SnapshotSource};
use msopds_serve_async::{AsyncServeConfig, AsyncServer, BatcherConfig};
use msopds_serve_net::{
    drain_requested, install_drain_handler, NetClient, NetServeConfig, NetServer, RetryPolicy,
};
use msopds_xp::RuntimeConfig;

const USAGE: &str = "usage: serve-net --listen ADDR --snapshot FILE [--mmap] [--top-k K] [--cache N] [--deadline-us N] [--max-batch N] [--queue-cap N] [--conn-window N] [--drain-ms N] [--precision exact64|fast32] [--threads N] [--metrics-out FILE]\n       serve-net --connect ADDR [--requests N] [--users N] [--query-deadline-us N] [--conn-window N]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    // A malformed fault plan is a config error, not a crash: surface it as
    // exit 2 before `install()` would panic deep in the harness.
    if let Ok(plan) = std::env::var("MSOPDS_FAULT_PLAN") {
        if let Err(e) = msopds_faultline::FaultPlan::parse(&plan) {
            eprintln!("serve-net: malformed MSOPDS_FAULT_PLAN: {e}\n{USAGE}");
            std::process::exit(2);
        }
    }

    let runtime = RuntimeConfig::builder()
        .parse_cli(&args)
        .and_then(|(builder, rest)| Ok((builder.build()?, rest)));
    let (runtime, rest) = match runtime {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let mut snapshot: Option<PathBuf> = None;
    let mut mmap = false;
    let mut requests = 4096u64;
    let mut users = 64usize;
    let mut query_deadline_us = 0u32;
    let mut top_k = 10usize;
    let mut cache = 256usize;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value(&mut i, "--snapshot"))),
            "--mmap" => mmap = true,
            "--requests" => requests = parse_count(&value(&mut i, "--requests"), "--requests"),
            "--users" => users = parse_count(&value(&mut i, "--users"), "--users") as usize,
            "--top-k" => top_k = parse_count(&value(&mut i, "--top-k"), "--top-k") as usize,
            "--cache" => {
                cache = value(&mut i, "--cache").parse().unwrap_or_else(|_| {
                    eprintln!("--cache takes an integer\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--query-deadline-us" => {
                query_deadline_us =
                    value(&mut i, "--query-deadline-us").parse().unwrap_or_else(|_| {
                        eprintln!("--query-deadline-us takes an integer\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    runtime.install();
    msopds_autograd::pool::configure_threads(runtime.threads);

    let code = match (&runtime.listen, &runtime.connect) {
        (Some(addr), None) => run_listen(addr, snapshot, mmap, top_k, cache, &runtime),
        (None, Some(addr)) => run_connect(addr, requests, users, query_deadline_us, &runtime),
        _ => {
            eprintln!("exactly one of --listen or --connect is required\n{USAGE}");
            std::process::exit(2);
        }
    };
    runtime.export_metrics();
    std::process::exit(code);
}

/// Listen mode: serve until SIGTERM, then drain gracefully and report the
/// exact accounting.
fn run_listen(
    addr: &str,
    snapshot: Option<PathBuf>,
    mmap: bool,
    top_k: usize,
    cache: usize,
    runtime: &RuntimeConfig,
) -> i32 {
    let Some(snapshot) = snapshot else {
        eprintln!("--listen requires --snapshot FILE\n{USAGE}");
        std::process::exit(2);
    };
    let source = if mmap {
        SnapshotSource::mmap(&snapshot)
    } else {
        SnapshotSource::file(&snapshot)
    };
    let model = match ServingModel::open(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("serve-net: cannot load {}: {e}", snapshot.display());
            return 1;
        }
    };
    let n_users = model.n_users();

    let cfg = AsyncServeConfig {
        batcher: BatcherConfig {
            deadline: Duration::from_micros(runtime.deadline_us),
            max_batch: runtime.max_batch,
            queue_cap: runtime.queue_cap,
        },
        serve: ServeConfig { top_k, cache_capacity: cache, precision: runtime.precision },
    };
    let net_cfg = NetServeConfig {
        conn_window: runtime.conn_window,
        drain_ms: runtime.drain_ms,
        ..NetServeConfig::default()
    };
    if let Err(e) = install_drain_handler() {
        eprintln!("serve-net: cannot install SIGTERM handler: {e}");
        return 1;
    }
    let server = AsyncServer::start(model, cfg);
    let net = match NetServer::start(addr, server, net_cfg) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("serve-net: cannot bind {addr}: {e}");
            return 1;
        }
    };
    // The ready line carries the resolved port (`--listen 127.0.0.1:0`
    // binds ephemeral) so harnesses can scrape where to connect.
    eprintln!(
        "serve-net: listening on {} ({} users, top-{top_k}, window {}, drain bound {} ms)",
        net.local_addr(),
        n_users,
        runtime.conn_window,
        runtime.drain_ms,
    );

    while !drain_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("serve-net: SIGTERM — draining");
    let stats = net.drain();
    eprintln!(
        "serve-net: drained — offered {} = completed {} + rejected {} + drained {} (balanced: {})",
        stats.offered,
        stats.completed,
        stats.rejected,
        stats.drained,
        stats.balanced(),
    );
    println!(
        "{{\"offered\":{},\"completed\":{},\"rejected\":{},\"rejected_overload\":{},\"rejected_unknown_user\":{},\"rejected_deadline\":{},\"drained\":{},\"undelivered\":{},\"balanced\":{},\"conns_accepted\":{},\"conns_evicted\":{},\"torn_disconnects\":{},\"codec_errors\":{},\"deadline_us\":{},\"max_batch\":{},\"queue_cap\":{},\"conn_window\":{},\"drain_ms\":{},\"top_k\":{},\"precision\":\"{}\"}}",
        stats.offered,
        stats.completed,
        stats.rejected,
        stats.rejected_overload,
        stats.rejected_unknown_user,
        stats.rejected_deadline,
        stats.drained,
        stats.undelivered,
        stats.balanced(),
        stats.conns_accepted,
        stats.conns_evicted,
        stats.torn_disconnects,
        stats.codec_errors,
        runtime.deadline_us,
        runtime.max_batch,
        runtime.queue_cap,
        runtime.conn_window,
        runtime.drain_ms,
        top_k,
        runtime.precision,
    );
    if stats.balanced() {
        0
    } else {
        eprintln!("serve-net: accounting identity violated after drain");
        1
    }
}

/// Connect mode: pipelined load over the shared deterministic user stream.
fn run_connect(
    addr: &str,
    requests: u64,
    users: usize,
    query_deadline_us: u32,
    runtime: &RuntimeConfig,
) -> i32 {
    let resolved = match addr.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(a)) => a,
        Ok(None) | Err(_) => {
            eprintln!("serve-net: cannot resolve {addr}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut client = match NetClient::connect(resolved, RetryPolicy::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve-net: cannot connect to {resolved}: {e:?}");
            return 1;
        }
    };
    let report = match client.run_pipelined(requests, runtime.conn_window, query_deadline_us, |i| {
        msopds_serve_async::stream_user(i as usize, users) as u64
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-net: pipelined run failed: {e:?}");
            return 1;
        }
    };
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "serve-net: {} offered in {:.3}s — {} completed ({:.0}/sec), {} rejected ({} overload, {} deadline), {} drained, p50 {} µs p99 {} µs",
        report.offered,
        secs,
        report.completed,
        report.completed as f64 / secs,
        report.rejected,
        report.rejected_overload,
        report.rejected_deadline,
        report.drained,
        report.latency_pct_us(0.50),
        report.latency_pct_us(0.99),
    );
    println!(
        "{{\"offered\":{},\"completed\":{},\"completed_per_sec\":{:.1},\"rejected\":{},\"rejected_overload\":{},\"rejected_deadline\":{},\"drained\":{},\"elapsed_s\":{:.4},\"p50_us\":{},\"p99_us\":{},\"window\":{},\"users\":{},\"query_deadline_us\":{}}}",
        report.offered,
        report.completed,
        report.completed as f64 / secs,
        report.rejected,
        report.rejected_overload,
        report.rejected_deadline,
        report.drained,
        secs,
        report.latency_pct_us(0.50),
        report.latency_pct_us(0.99),
        runtime.conn_window,
        users,
        query_deadline_us,
    );
    0
}

fn parse_count(raw: &str, flag: &str) -> u64 {
    match raw.parse::<u64>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} takes a positive integer\n{USAGE}");
            std::process::exit(2);
        }
    }
}
