//! `serve-async` — drive open-loop load through the async serving tier.
//!
//! Usage: `serve-async --snapshot FILE [--requests N] [--offered QPS]
//! [--top-k K] [--cache N] [--deadline-us N] [--max-batch N] [--queue-cap N]
//! [--precision exact64|fast32] [--threads N] [--metrics-out FILE]`
//!
//! Loads the snapshot written by `repro --snapshot-out` and starts an
//! [`AsyncServer`] over it: a dynamic batcher that coalesces single-user
//! queries up to `--deadline-us` (default 200) or `--max-batch` (default
//! 1024) and sheds load past `--queue-cap` (default 8192) with a typed
//! rejection. The open-loop generator then offers `--requests` queries at
//! `--offered` QPS on the same deterministic Fibonacci-hash stream the
//! `serve` binary replays, and reports admission→response tail latency.
//!
//! Prints a human summary to stderr and one JSON object to stdout, e.g.:
//!
//! ```text
//! {"offered_qps":50000.0,"completed_per_sec":48712.3,"p99_us":410,...}
//! ```
//!
//! Exit status: 0 success, 2 usage error, 1 snapshot load failure.

use std::path::PathBuf;
use std::time::Duration;

use msopds_serve::{ServeConfig, ServingModel, SnapshotSource};
use msopds_serve_async::{
    run_open_loop, AsyncServeConfig, AsyncServer, BatcherConfig, LoadGenConfig,
};
use msopds_xp::RuntimeConfig;

const USAGE: &str = "usage: serve-async --snapshot FILE [--mmap] [--requests N] [--offered QPS] [--top-k K] [--cache N] [--deadline-us N] [--max-batch N] [--queue-cap N] [--precision exact64|fast32] [--threads N] [--backend dense|sparse] [--metrics-out FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let runtime = RuntimeConfig::builder()
        .parse_cli(&args)
        .and_then(|(builder, rest)| Ok((builder.build()?, rest)));
    let (runtime, rest) = match runtime {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let mut snapshot: Option<PathBuf> = None;
    let mut mmap = false;
    let mut requests = 4096usize;
    let mut offered_qps = 20_000.0f64;
    let mut top_k = 10usize;
    let mut cache = 256usize;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value(&mut i, "--snapshot"))),
            "--mmap" => mmap = true,
            "--requests" => requests = parse_count(&value(&mut i, "--requests"), "--requests"),
            "--top-k" => top_k = parse_count(&value(&mut i, "--top-k"), "--top-k"),
            "--offered" => {
                offered_qps = value(&mut i, "--offered").parse().unwrap_or(0.0);
                if offered_qps <= 0.0 {
                    eprintln!("--offered takes a positive rate\n{USAGE}");
                    std::process::exit(2);
                }
            }
            "--cache" => {
                cache = value(&mut i, "--cache").parse().unwrap_or_else(|_| {
                    eprintln!("--cache takes an integer\n{USAGE}");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(snapshot) = snapshot else {
        eprintln!("--snapshot FILE is required\n{USAGE}");
        std::process::exit(2);
    };

    runtime.install();
    msopds_autograd::pool::configure_threads(runtime.threads);

    let source = if mmap {
        SnapshotSource::mmap(&snapshot)
    } else {
        SnapshotSource::file(&snapshot)
    };
    let model = match ServingModel::open(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("serve-async: cannot load {}: {e}", snapshot.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "serve-async: {:?} model, {} users × {} items, dim {} (trained on {} backend, seed {}){}",
        model.kind(),
        model.n_users(),
        model.n_items(),
        model.dim(),
        model.backend(),
        model.seed(),
        if model.is_zero_copy() { ", zero-copy mmap" } else { "" }
    );

    let cfg = AsyncServeConfig {
        batcher: BatcherConfig {
            deadline: Duration::from_micros(runtime.deadline_us),
            max_batch: runtime.max_batch,
            queue_cap: runtime.queue_cap,
        },
        serve: ServeConfig { top_k, cache_capacity: cache, precision: runtime.precision },
    };
    let server = AsyncServer::start(model, cfg);
    let report = run_open_loop(&server, &LoadGenConfig { requests, offered_qps });
    let stats = server.shutdown();

    eprintln!(
        "serve-async: offered {:.0} qps (achieved {:.0}) — {}/{} accepted, {} shed, {:.0} completions/sec, fill {:.1}, p50 {} µs p99 {} µs p99.9 {} µs",
        report.offered_qps,
        report.achieved_qps,
        report.accepted,
        report.offered,
        report.rejected,
        report.completed_per_sec,
        report.mean_batch_fill,
        report.latency.p50_us,
        report.latency.p99_us,
        report.latency.p999_us,
    );
    println!(
        "{{\"requests\":{},\"offered_qps\":{:.1},\"achieved_qps\":{:.1},\"accepted\":{},\"rejected\":{},\"completed\":{},\"completed_per_sec\":{:.1},\"batches\":{},\"mean_batch_fill\":{:.2},\"deadline_us\":{},\"max_batch\":{},\"queue_cap\":{},\"top_k\":{},\"precision\":\"{}\",\"mean_us\":{:.1},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
        requests,
        report.offered_qps,
        report.achieved_qps,
        report.accepted,
        report.rejected,
        report.completed,
        report.completed_per_sec,
        stats.batcher.batches,
        report.mean_batch_fill,
        runtime.deadline_us,
        runtime.max_batch,
        runtime.queue_cap,
        top_k,
        runtime.precision,
        report.latency.mean_us,
        report.latency.p50_us,
        report.latency.p99_us,
        report.latency.p999_us,
        stats.engine.cache_hits,
        stats.engine.cache_misses,
    );
    runtime.export_metrics();
}

fn parse_count(raw: &str, flag: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} takes a positive integer\n{USAGE}");
            std::process::exit(2);
        }
    }
}
