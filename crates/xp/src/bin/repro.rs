//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <table3|fig6|fig7|fig8|fig9|defense|matrix|snapshot|all>
//! [--quick] [--scale N] [--seeds a,b,...] [--attacks A,B] [--defenses x,y]
//! [--threads N] [--backend dense|sparse] [--out DIR] [--metrics-out FILE]
//! [--journal FILE] [--resume] [--retries N] [--snapshot-out FILE]`
//!
//! `matrix` runs the attack × defense zoo (every attack against every
//! shadow-ban policy spec) and reports an HR@10-lift grid against the
//! clean None/off corner, saved to `matrix.json`; `--attacks`/`--defenses`
//! select axis subsets (the baseline corner is injected automatically).
//!
//! Runtime flags (threads, backend, metrics, journaling, retries) are parsed
//! by [`RuntimeConfig`] — one parse point shared with the `MSOPDS_THREADS`,
//! `MSOPDS_BACKEND`, `MSOPDS_METRICS` and `MSOPDS_FAULT_PLAN` environment
//! variables; the flags win over the environment. This file only parses the
//! experiment-shape flags (`--quick`, `--scale`, `--seeds`, `--out`).
//!
//! `--metrics-out FILE` enables telemetry recording and writes the collected
//! span timings, counters and gauges as JSON when the run completes
//! (equivalently: set `MSOPDS_METRICS=FILE`).
//!
//! `--backend sparse` runs every model on the CSR/SpMM graph backend (see
//! DESIGN.md §11); results agree with the default dense backend to ≤1e-10.
//!
//! Fault tolerance: `--journal FILE` appends every finished cell to a JSONL
//! journal; `--resume` replays journaled successes instead of re-running them
//! (journaled failures re-run), so a killed sweep picks up where it stopped
//! and produces bit-identical aggregates. `--retries N` grants a panicking
//! cell N extra attempts (default 1). Cells that still fail are reported and
//! the process exits with status 3. Builds with the `fault-injection` feature
//! honor `MSOPDS_FAULT_PLAN` (e.g. `seed=42;xp.cell=panic@0.1`) for drills.
//!
//! Snapshots: `--snapshot-out FILE` trains the clean victim (first dataset ×
//! first seed, same victim config as the sweep) after the experiments finish
//! and persists its model snapshot for the `serve` binary; the `snapshot`
//! experiment id does *only* that, skipping the sweep entirely.
//!
//! Exit status: 0 success, 2 usage error, 3 cells failed permanently,
//! 1 infrastructure error (journal I/O or corruption).

use std::path::PathBuf;

use msopds_xp::{
    fig6_cells, fig7_cells, fig8_cells, fig9_cells, render_table, run_cells_with, table3_cells,
    to_json, RunError, RuntimeConfig, XpConfig,
};

const USAGE: &str = "usage: repro <table3|fig6|fig7|fig8|fig9|defense|matrix|snapshot|all> [--quick] [--scale N] [--seeds a,b] [--attacks A,B] [--defenses x,y] [--threads N] [--backend dense|sparse] [--out DIR] [--metrics-out FILE] [--journal FILE] [--resume] [--retries N] [--snapshot-out FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    // Runtime knobs: env defaults overlaid with CLI flags, one parse point.
    let runtime = RuntimeConfig::builder()
        .parse_cli(&args)
        .and_then(|(builder, rest)| Ok((builder.build()?, rest)));
    let (runtime, rest) = match runtime {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Experiment-shape flags.
    if rest.is_empty() {
        eprintln!("missing experiment id\n{USAGE}");
        std::process::exit(2);
    }
    let which = rest[0].clone();
    let mut cfg = XpConfig::default();
    let mut out_dir = PathBuf::from("target/xp-results");
    let mut attacks_flag: Option<String> = None;
    let mut defenses_flag: Option<String> = None;
    let mut i = 1;
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => cfg = XpConfig::quick(),
            "--scale" => {
                i += 1;
                cfg.scale = rest[i].parse().expect("--scale takes a number");
            }
            "--seeds" => {
                i += 1;
                cfg.seeds = rest[i]
                    .split(',')
                    .map(|s| s.parse().expect("--seeds takes comma-separated integers"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(&rest[i]);
            }
            "--attacks" => {
                i += 1;
                attacks_flag = Some(rest[i].clone());
            }
            "--defenses" => {
                i += 1;
                defenses_flag = Some(rest[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    runtime.apply_to(&mut cfg);
    runtime.install();
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // The attack × defense matrix has its own grid-shaped report, so it is
    // handled here rather than in the table/figure loop (and is not part of
    // `all` — run `repro matrix` explicitly).
    if which == "matrix" {
        let attacks = match &attacks_flag {
            None => msopds_xp::matrix_attacks(),
            Some(names) => names
                .split(',')
                .map(|n| {
                    msopds_xp::attack_by_name(n.trim()).unwrap_or_else(|| {
                        eprintln!("unknown attack {n:?}\n{USAGE}");
                        std::process::exit(2);
                    })
                })
                .collect(),
        };
        let defenses: Vec<String> = match &defenses_flag {
            None => msopds_xp::matrix_defenses(),
            Some(specs) => specs.split(',').map(|s| s.trim().to_string()).collect(),
        };
        let started = std::time::Instant::now();
        let cells = match msopds_xp::matrix_cells(&cfg, &attacks, &defenses) {
            Ok(cells) => cells,
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                std::process::exit(2);
            }
        };
        eprintln!(
            "[matrix] running {} games ({} attacks × {} defenses × {} seeds) on {} threads…",
            cells.len(),
            attacks.len(),
            defenses.len(),
            cfg.seeds.len(),
            cfg.threads.max(1)
        );
        let opts = runtime.run_options("matrix", runtime.resume);
        let report = match run_cells_with(cells, &cfg, &opts) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("repro: {e}");
                std::process::exit(1);
            }
        };
        if report.resumed > 0 {
            eprintln!("[matrix] resumed {} cells from the journal", report.resumed);
        }
        for f in &report.failures {
            eprintln!(
                "[matrix] FAILED cell {}/{}/seed={} after {} attempts: {}",
                f.key.method, f.key.defense, f.key.seed, f.error.attempts, f.error.message
            );
        }
        let averaged = msopds_xp::average_over_seeds(&report.measurements);
        let grid = msopds_xp::matrix_grid(&averaged, &attacks, &defenses);
        runtime.export_metrics();
        match grid {
            Ok(grid) => {
                println!("{}", msopds_xp::render_grid(&grid));
                let json_path = out_dir.join("matrix.json");
                let doc = serde_json::to_string_pretty(&grid).expect("grid serializes");
                std::fs::write(&json_path, doc).expect("write matrix json");
                eprintln!(
                    "[matrix] done in {:.1?}; grid saved to {}",
                    started.elapsed(),
                    json_path.display()
                );
            }
            Err(e) => {
                eprintln!("repro: incomplete grid: {e}");
                if report.failures.is_empty() {
                    std::process::exit(1);
                }
            }
        }
        if !report.failures.is_empty() {
            eprintln!("repro: {} cells failed permanently", report.failures.len());
            std::process::exit(3);
        }
        return;
    }

    let mut failed_cells = 0usize;
    // A fresh (non-`--resume`) run truncates the journal once, on the first
    // experiment; later experiments of an `all` sweep append so one file
    // holds the whole run. Resumed entries are keyed by experiment id, so
    // appending never causes a cross-experiment skip.
    let mut journal_started = runtime.resume;
    let mut run_one = |id: &str| -> Result<(), RunError> {
        let started = std::time::Instant::now();
        let (cells, knob) = match id {
            "table3" => (table3_cells(&cfg), "b"),
            "fig6" => (fig6_cells(&cfg), "#opp"),
            "fig7" => (fig7_cells(&cfg), "b_op"),
            "fig8" => (fig8_cells(&cfg), "b"),
            "fig9" => (fig9_cells(&cfg), "b"),
            "defense" => (msopds_xp::defense_cells(&cfg), "defended"),
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        };
        eprintln!(
            "[{id}] running {} games on {} threads ({} backend)…",
            cells.len(),
            cfg.threads.max(1),
            cfg.backend
        );
        let opts = runtime.run_options(id, journal_started);
        journal_started = true;
        let report = run_cells_with(cells, &cfg, &opts)?;
        if report.resumed > 0 {
            eprintln!("[{id}] resumed {} cells from the journal", report.resumed);
        }
        for f in &report.failures {
            eprintln!(
                "[{id}] FAILED cell {}/{}/knob={}/seed={} after {} attempts: {}",
                f.key.dataset,
                f.key.method,
                f.key.knob_milli as f64 / 1000.0,
                f.key.seed,
                f.error.attempts,
                f.error.message
            );
        }
        failed_cells += report.failures.len();
        let rows = msopds_xp::average_over_seeds(&report.measurements);
        let title = match id {
            "table3" => "Table III: target item r̄ and HR@3 vs ConsisRec, single opponent",
            "fig6" => "Fig. 6: impact of the number of opponents (b = 5)",
            "fig7" => "Fig. 7: impact of the opponent's capacity (b = 5, 1 opponent)",
            "fig8" => "Fig. 8: effect of poisoning-action categories (Epinions)",
            "fig9" => "Fig. 9: real users vs fake accounts (Epinions)",
            "defense" => "Extension: attacks vs moderator detection (Epinions, b = 5)",
            _ => unreachable!(),
        };
        println!("{}", render_table(title, knob, &rows));
        let json_path = out_dir.join(format!("{id}.json"));
        std::fs::write(&json_path, to_json(&rows)).expect("write results json");
        eprintln!(
            "[{id}] done in {:.1?}; results saved to {}",
            started.elapsed(),
            json_path.display()
        );
        Ok(())
    };

    if which == "snapshot" && runtime.snapshot_out.is_none() {
        eprintln!("the snapshot experiment requires --snapshot-out FILE\n{USAGE}");
        std::process::exit(2);
    }
    let outcome: Result<(), RunError> = if which == "snapshot" {
        Ok(()) // snapshot-only invocation: no sweep, persisted below.
    } else if which == "all" {
        ["table3", "fig6", "fig7", "fig8", "fig9", "defense"].iter().try_for_each(|id| run_one(id))
    } else {
        run_one(&which)
    };
    // Persist the clean victim for the `serve` read path after the sweep, so
    // a single invocation can both reproduce a figure and hand off a model.
    if let Some(path) = &runtime.snapshot_out {
        let started = std::time::Instant::now();
        eprintln!("[snapshot] training the clean victim ({} backend)…", cfg.backend);
        match msopds_xp::write_victim_snapshot(&cfg, path) {
            Ok(snap) => eprintln!(
                "[snapshot] {} users × {} items (seed {}) saved to {} in {:.1?}",
                snap.header.n_users,
                snap.header.n_items,
                snap.header.seed,
                path.display(),
                started.elapsed()
            ),
            Err(e) => {
                eprintln!("repro: snapshot failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // Honors --metrics-out, falls back to an MSOPDS_METRICS path, and prints
    // the tree summary to stderr when recording is on without a path.
    runtime.export_metrics();
    if let Err(e) = outcome {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
    if failed_cells > 0 {
        eprintln!("repro: {failed_cells} cells failed permanently (see journal / log above)");
        std::process::exit(3);
    }
}
