//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <table3|fig6|fig7|fig8|fig9|all> [--quick] [--scale N]
//! [--seeds a,b,...] [--threads N] [--out DIR] [--metrics-out FILE]`
//!
//! `--metrics-out FILE` enables telemetry recording and writes the collected
//! span timings, counters and gauges as JSON when the run completes
//! (equivalently: set `MSOPDS_METRICS=FILE`).

use std::path::PathBuf;

use msopds_telemetry as telemetry;

use msopds_xp::{
    fig6_cells, fig7_cells, fig8_cells, fig9_cells, render_table, run_experiment, table3_cells,
    to_json, XpConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro <table3|fig6|fig7|fig8|fig9|defense|all> [--quick] [--scale N] [--seeds a,b] [--threads N] [--out DIR] [--metrics-out FILE]");
        std::process::exit(2);
    }
    let which = args[0].clone();
    let mut cfg = XpConfig::default();
    let mut out_dir = PathBuf::from("target/xp-results");
    let mut metrics_out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = XpConfig { threads: cfg.threads, ..XpConfig::quick() },
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a number");
            }
            "--seeds" => {
                i += 1;
                cfg.seeds = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--seeds takes comma-separated integers"))
                    .collect();
            }
            "--threads" => {
                i += 1;
                cfg.threads = args[i].parse().expect("--threads takes an integer");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(&args[i]);
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(&args[i]));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    if metrics_out.is_some() {
        telemetry::set_enabled(true);
    }

    let run_one = |id: &str| {
        let started = std::time::Instant::now();
        let (cells, knob) = match id {
            "table3" => (table3_cells(&cfg), "b"),
            "fig6" => (fig6_cells(&cfg), "#opp"),
            "fig7" => (fig7_cells(&cfg), "b_op"),
            "fig8" => (fig8_cells(&cfg), "b"),
            "fig9" => (fig9_cells(&cfg), "b"),
            "defense" => (msopds_xp::defense_cells(&cfg), "defended"),
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        };
        eprintln!("[{id}] running {} games on {} threads…", cells.len(), cfg.threads.max(1));
        let rows = run_experiment(cells, &cfg);
        let title = match id {
            "table3" => "Table III: target item r̄ and HR@3 vs ConsisRec, single opponent",
            "fig6" => "Fig. 6: impact of the number of opponents (b = 5)",
            "fig7" => "Fig. 7: impact of the opponent's capacity (b = 5, 1 opponent)",
            "fig8" => "Fig. 8: effect of poisoning-action categories (Epinions)",
            "fig9" => "Fig. 9: real users vs fake accounts (Epinions)",
            "defense" => "Extension: attacks vs moderator detection (Epinions, b = 5)",
            _ => unreachable!(),
        };
        println!("{}", render_table(title, knob, &rows));
        let json_path = out_dir.join(format!("{id}.json"));
        std::fs::write(&json_path, to_json(&rows)).expect("write results json");
        eprintln!(
            "[{id}] done in {:.1?}; results saved to {}",
            started.elapsed(),
            json_path.display()
        );
    };

    if which == "all" {
        for id in ["table3", "fig6", "fig7", "fig8", "fig9", "defense"] {
            run_one(id);
        }
    } else {
        run_one(&which);
    }
    // Honors --metrics-out, falls back to an MSOPDS_METRICS path, and prints
    // the tree summary to stderr when recording is on without a path.
    telemetry::export(metrics_out.as_deref());
}
