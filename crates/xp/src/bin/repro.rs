//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <table3|fig6|fig7|fig8|fig9|defense|all> [--quick] [--scale N]
//! [--seeds a,b,...] [--threads N] [--out DIR] [--metrics-out FILE]
//! [--journal FILE] [--resume] [--retries N]`
//!
//! `--metrics-out FILE` enables telemetry recording and writes the collected
//! span timings, counters and gauges as JSON when the run completes
//! (equivalently: set `MSOPDS_METRICS=FILE`).
//!
//! Fault tolerance: `--journal FILE` appends every finished cell to a JSONL
//! journal; `--resume` replays journaled successes instead of re-running them
//! (journaled failures re-run), so a killed sweep picks up where it stopped
//! and produces bit-identical aggregates. `--retries N` grants a panicking
//! cell N extra attempts (default 1). Cells that still fail are reported and
//! the process exits with status 3. Builds with the `fault-injection` feature
//! honor `MSOPDS_FAULT_PLAN` (e.g. `seed=42;xp.cell=panic@0.1`) for drills.
//!
//! Exit status: 0 success, 2 usage error, 3 cells failed permanently,
//! 1 infrastructure error (journal I/O or corruption).

use std::path::PathBuf;

use msopds_telemetry as telemetry;

use msopds_xp::{
    fig6_cells, fig7_cells, fig8_cells, fig9_cells, render_table, run_cells_with, table3_cells,
    to_json, RunError, RunOptions, XpConfig, DEFAULT_RETRIES,
};

fn main() {
    msopds_faultline::arm_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro <table3|fig6|fig7|fig8|fig9|defense|all> [--quick] [--scale N] [--seeds a,b] [--threads N] [--out DIR] [--metrics-out FILE] [--journal FILE] [--resume] [--retries N]");
        std::process::exit(2);
    }
    let which = args[0].clone();
    let mut cfg = XpConfig::default();
    let mut out_dir = PathBuf::from("target/xp-results");
    let mut metrics_out: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut retries = DEFAULT_RETRIES;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = XpConfig { threads: cfg.threads, ..XpConfig::quick() },
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a number");
            }
            "--seeds" => {
                i += 1;
                cfg.seeds = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--seeds takes comma-separated integers"))
                    .collect();
            }
            "--threads" => {
                i += 1;
                cfg.threads = args[i].parse().expect("--threads takes an integer");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(&args[i]);
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(&args[i]));
            }
            "--journal" => {
                i += 1;
                journal = Some(PathBuf::from(&args[i]));
            }
            "--resume" => resume = true,
            "--retries" => {
                i += 1;
                retries = args[i].parse().expect("--retries takes an integer");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if resume && journal.is_none() {
        eprintln!("--resume requires --journal FILE");
        std::process::exit(2);
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    if metrics_out.is_some() {
        telemetry::set_enabled(true);
    }

    let mut failed_cells = 0usize;
    // A fresh (non-`--resume`) run truncates the journal once, on the first
    // experiment; later experiments of an `all` sweep append so one file
    // holds the whole run. Resumed entries are keyed by experiment id, so
    // appending never causes a cross-experiment skip.
    let mut journal_started = resume;
    let mut run_one = |id: &str| -> Result<(), RunError> {
        let started = std::time::Instant::now();
        let (cells, knob) = match id {
            "table3" => (table3_cells(&cfg), "b"),
            "fig6" => (fig6_cells(&cfg), "#opp"),
            "fig7" => (fig7_cells(&cfg), "b_op"),
            "fig8" => (fig8_cells(&cfg), "b"),
            "fig9" => (fig9_cells(&cfg), "b"),
            "defense" => (msopds_xp::defense_cells(&cfg), "defended"),
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        };
        eprintln!("[{id}] running {} games on {} threads…", cells.len(), cfg.threads.max(1));
        let opts = RunOptions {
            experiment: id.to_string(),
            journal: journal.clone(),
            resume: journal_started,
            retries,
        };
        journal_started = true;
        let report = run_cells_with(cells, &cfg, &opts)?;
        if report.resumed > 0 {
            eprintln!("[{id}] resumed {} cells from the journal", report.resumed);
        }
        for f in &report.failures {
            eprintln!(
                "[{id}] FAILED cell {}/{}/knob={}/seed={} after {} attempts: {}",
                f.key.dataset,
                f.key.method,
                f.key.knob_milli as f64 / 1000.0,
                f.key.seed,
                f.error.attempts,
                f.error.message
            );
        }
        failed_cells += report.failures.len();
        let rows = msopds_xp::average_over_seeds(&report.measurements);
        let title = match id {
            "table3" => "Table III: target item r̄ and HR@3 vs ConsisRec, single opponent",
            "fig6" => "Fig. 6: impact of the number of opponents (b = 5)",
            "fig7" => "Fig. 7: impact of the opponent's capacity (b = 5, 1 opponent)",
            "fig8" => "Fig. 8: effect of poisoning-action categories (Epinions)",
            "fig9" => "Fig. 9: real users vs fake accounts (Epinions)",
            "defense" => "Extension: attacks vs moderator detection (Epinions, b = 5)",
            _ => unreachable!(),
        };
        println!("{}", render_table(title, knob, &rows));
        let json_path = out_dir.join(format!("{id}.json"));
        std::fs::write(&json_path, to_json(&rows)).expect("write results json");
        eprintln!(
            "[{id}] done in {:.1?}; results saved to {}",
            started.elapsed(),
            json_path.display()
        );
        Ok(())
    };

    let outcome: Result<(), RunError> = if which == "all" {
        ["table3", "fig6", "fig7", "fig8", "fig9", "defense"].iter().try_for_each(|id| run_one(id))
    } else {
        run_one(&which)
    };
    // Honors --metrics-out, falls back to an MSOPDS_METRICS path, and prints
    // the tree summary to stderr when recording is on without a path.
    telemetry::export(metrics_out.as_deref());
    if let Err(e) = outcome {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
    if failed_cells > 0 {
        eprintln!("repro: {failed_cells} cells failed permanently (see journal / log above)");
        std::process::exit(3);
    }
}
