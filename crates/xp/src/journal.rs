//! Cell journaling and resume.
//!
//! Every completed cell — success or permanent failure — is appended to a
//! JSONL journal as soon as its result arrives, one [`JournalEntry`] per
//! line, flushed per entry. A run killed at any point can be resumed with the
//! same cell list: journaled successes are skipped (their measurements are
//! replayed from the file), journaled failures are re-executed, and the
//! combined aggregates are bit-identical to an uninterrupted run because
//! [`crate::runner::average_over_seeds`] is summation-order independent.
//!
//! The file format is deliberately dumb: self-contained JSON objects, one per
//! line. A partial trailing line — the signature of a hard kill mid-write —
//! is tolerated on load; corruption anywhere else is a typed error.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::runner::{Cell, Measurement, RunError};

/// Stable identity of a cell inside a journal: every axis the experiment
/// builders sweep. The knob is stored in milli-units so equality is exact.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellKey {
    /// Experiment id (`table3`, `fig6`, …) — one journal can hold several.
    pub experiment: String,
    /// Dataset display name.
    pub dataset: String,
    /// Method/variant label.
    pub method: String,
    /// Swept knob value × 1000, rounded (matches the averaging group key).
    pub knob_milli: i64,
    /// Game seed.
    pub seed: u64,
    /// Moderator-defense variant flag.
    pub defended: bool,
    /// Detector-pipeline spec for matrix cells (`""` for legacy experiments).
    pub defense: String,
}

impl CellKey {
    /// The key for `cell` under experiment `experiment`.
    pub fn of(experiment: &str, cell: &Cell) -> Self {
        Self {
            experiment: experiment.to_string(),
            dataset: cell.dataset.name().to_string(),
            method: cell.label.clone(),
            knob_milli: (cell.knob * 1000.0).round() as i64,
            seed: cell.game.seed,
            defended: cell.defended,
            defense: cell.defense.clone().unwrap_or_default(),
        }
    }

    /// Deterministic 64-bit context for fault-injection decisions: depends on
    /// the cell identity and the retry attempt, *not* on scheduling — the same
    /// faults fire at any `--threads`, and every retry rerolls.
    pub fn context_hash(&self, attempt: usize) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.experiment.as_bytes());
        eat(&[0xff]);
        eat(self.dataset.as_bytes());
        eat(&[0xff]);
        eat(self.method.as_bytes());
        eat(&[0xff]);
        eat(&self.knob_milli.to_le_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&[self.defended as u8]);
        eat(&[0xff]);
        eat(self.defense.as_bytes());
        eat(&(attempt as u64).to_le_bytes());
        h
    }
}

/// Why a cell failed permanently (its retry budget included).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellErrorKind {
    /// The game panicked on every attempt (assertion, injected fault, …).
    Panic,
}

/// A cell that exhausted its retry budget without producing a measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellError {
    /// Failure class.
    pub kind: CellErrorKind,
    /// Panic payload of the *last* attempt.
    pub message: String,
    /// Attempts consumed (1 = no retries granted).
    pub attempts: usize,
}

/// One journal line. Exactly one of `ok`/`err` is set (the vendored serde has
/// no `Result` impl, so the sum type is spelled out).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Which cell this is.
    pub key: CellKey,
    /// The measurement, when the cell succeeded.
    pub ok: Option<Measurement>,
    /// The terminal error, when it did not.
    pub err: Option<CellError>,
}

/// Append-only JSONL writer, flushed per entry so a hard kill loses at most
/// the line being written.
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Opens `path` for appending (resume) or truncates it (fresh run).
    ///
    /// Appending first chops any partial trailing line — the leftover of a
    /// kill mid-`append` — so new entries never concatenate onto a fragment.
    pub fn open(path: &Path, append: bool) -> Result<Self, RunError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(RunError::Journal)?;
            }
        }
        if append && path.exists() {
            let text = std::fs::read(path).map_err(RunError::Journal)?;
            if !text.is_empty() && !text.ends_with(b"\n") {
                let keep = text.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                let file = OpenOptions::new().write(true).open(path).map_err(RunError::Journal)?;
                file.set_len(keep as u64).map_err(RunError::Journal)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(append)
            .write(true)
            .truncate(!append)
            .open(path)
            .map_err(RunError::Journal)?;
        Ok(Self { writer: BufWriter::new(file) })
    }

    /// Appends one entry and flushes it to the OS.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), RunError> {
        let line = serde_json::to_string(entry)
            .map_err(|e| RunError::Journal(std::io::Error::other(e.to_string())))?;
        self.writer.write_all(line.as_bytes()).map_err(RunError::Journal)?;
        self.writer.write_all(b"\n").map_err(RunError::Journal)?;
        self.writer.flush().map_err(RunError::Journal)
    }
}

/// Loads a journal, tolerating a truncated final line (a kill mid-`append`).
/// Returns entries in file order; a parse failure anywhere *before* the last
/// line is corruption and reported as [`RunError::JournalParse`].
pub fn load_journal(path: &Path) -> Result<Vec<JournalEntry>, RunError> {
    let text = std::fs::read_to_string(path).map_err(RunError::Journal)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(e) => entries.push(e),
            Err(err) if i + 1 == lines.len() => {
                eprintln!(
                    "[journal] dropping truncated trailing line {} of {}: {err}",
                    i + 1,
                    path.display()
                );
            }
            Err(err) => {
                return Err(RunError::JournalParse { line: i + 1, message: err.to_string() })
            }
        }
    }
    Ok(entries)
}

/// Collapses journal entries into the latest outcome per cell (later lines —
/// e.g. a resumed re-run of a previously failed cell — override earlier ones)
/// and restricts to `experiment`.
pub fn latest_outcomes(
    entries: &[JournalEntry],
    experiment: &str,
) -> HashMap<CellKey, JournalEntry> {
    let mut map = HashMap::new();
    for e in entries {
        if e.key.experiment == experiment {
            map.insert(e.key.clone(), e.clone());
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u64, ok: bool) -> JournalEntry {
        JournalEntry {
            key: CellKey {
                experiment: "t".into(),
                dataset: "d".into(),
                method: "m".into(),
                knob_milli: 2000,
                seed,
                defended: false,
                defense: String::new(),
            },
            ok: ok.then(|| Measurement {
                dataset: "d".into(),
                method: "m".into(),
                knob: 2.0,
                defense: String::new(),
                rbar: 3.0,
                hr3: 0.5,
                hr10: 0.6,
                seed,
            }),
            err: (!ok).then(|| CellError {
                kind: CellErrorKind::Panic,
                message: "boom".into(),
                attempts: 1,
            }),
        }
    }

    #[test]
    fn roundtrip_append_load() {
        let path =
            std::env::temp_dir().join(format!("msopds-journal-{}.jsonl", std::process::id()));
        let mut j = Journal::open(&path, false).unwrap();
        j.append(&entry(1, true)).unwrap();
        j.append(&entry(2, false)).unwrap();
        drop(j);
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded[0].ok.is_some() && loaded[0].err.is_none());
        assert!(loaded[1].err.is_some() && loaded[1].ok.is_none());
        assert_eq!(loaded[1].err.as_ref().unwrap().kind, CellErrorKind::Panic);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_but_corruption_is_an_error() {
        let path =
            std::env::temp_dir().join(format!("msopds-journal-trunc-{}.jsonl", std::process::id()));
        let mut j = Journal::open(&path, false).unwrap();
        j.append(&entry(1, true)).unwrap();
        j.append(&entry(2, true)).unwrap();
        drop(j);
        // Chop the file mid-way through the last line: a kill during append.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].key.seed, 1);
        // Corruption *before* the tail is not silently skipped.
        std::fs::write(&path, format!("{{bad json}}\n{}", text.lines().next().unwrap())).unwrap();
        match load_journal(&path) {
            Err(RunError::JournalParse { line: 1, .. }) => {}
            other => panic!("expected JournalParse at line 1, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_entries_override_earlier() {
        let es = vec![entry(1, false), entry(2, true), entry(1, true)];
        let map = latest_outcomes(&es, "t");
        assert_eq!(map.len(), 2);
        let k = es[0].key.clone();
        assert!(map[&k].ok.is_some(), "re-run success must override the earlier failure");
        assert!(latest_outcomes(&es, "other").is_empty());
    }

    #[test]
    fn context_hash_varies_by_attempt_and_cell() {
        let k1 = entry(1, true).key;
        let k2 = entry(2, true).key;
        assert_ne!(k1.context_hash(0), k1.context_hash(1), "retries must reroll faults");
        assert_ne!(k1.context_hash(0), k2.context_hash(0));
        assert_eq!(k1.context_hash(0), k1.context_hash(0));
        let defended = CellKey { defense: "degree".into(), ..k1.clone() };
        assert_ne!(k1.context_hash(0), defended.context_hash(0), "defense axis must reroll");
    }
}
