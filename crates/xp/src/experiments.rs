//! The experiment definitions: Table III and Figures 6–9 (§VI-B – §VI-F).
//!
//! Each experiment builds a list of [`Cell`]s (one game per dataset × method
//! × knob × seed), runs them in parallel, averages over seeds, and renders a
//! report mirroring the paper's rows/series.

use msopds_attacks::Baseline;
use msopds_core::ActionToggles;
use msopds_gameplay::AttackMethod;

use crate::config::{DatasetKind, XpConfig};
use crate::runner::{average_over_seeds, run_cells, Cell, Measurement, RunError};

/// A labelled attacker variant (labels distinguish the Fig. 8/9 ablations,
/// which all report as "MSOPDS" otherwise).
#[derive(Clone, Debug)]
pub struct Variant {
    /// Report label.
    pub label: &'static str,
    /// The underlying method.
    pub method: AttackMethod,
}

impl Variant {
    /// A labelled variant.
    pub fn new(label: &'static str, method: AttackMethod) -> Self {
        Self { label, method }
    }
}

/// The Table III method column: the seven IA baselines plus MSOPDS under MCA.
pub fn table3_methods() -> Vec<Variant> {
    let mut v: Vec<Variant> = Baseline::all()
        .into_iter()
        .map(|b| Variant::new(b.name(), AttackMethod::Baseline(b)))
        .collect();
    v.push(Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::all())));
    v
}

/// The reduced method set used by the opponent sweeps (Fig. 6 / Fig. 7) on
/// the single-core reproduction budget: the clean reference, the two
/// heuristics' strongest representative, the strongest optimization baseline,
/// and MSOPDS (see DESIGN.md §5.8).
pub fn sweep_methods() -> Vec<Variant> {
    vec![
        Variant::new("None", AttackMethod::Baseline(Baseline::None)),
        Variant::new("Random", AttackMethod::Baseline(Baseline::Random)),
        Variant::new("Popular", AttackMethod::Baseline(Baseline::Popular)),
        Variant::new("RevAdv", AttackMethod::Baseline(Baseline::RevAdv)),
        Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::all())),
    ]
}

/// Fig. 8 variants (§VI-E): capacity-category ablations.
pub fn fig8_methods() -> Vec<Variant> {
    vec![
        Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::all())),
        Variant::new("ratings only", AttackMethod::Msopds(ActionToggles::ratings_only())),
        Variant::new("ratings+item", AttackMethod::Msopds(ActionToggles::ratings_and_item())),
        Variant::new("ratings+user", AttackMethod::Msopds(ActionToggles::ratings_and_social())),
    ]
}

/// Fig. 9 variants (§VI-F): real vs fake account ablations (item edges
/// excluded throughout, per the figure's protocol).
pub fn fig9_methods() -> Vec<Variant> {
    vec![
        Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::no_item_edges())),
        Variant::new("MSOPDS-real", AttackMethod::Msopds(ActionToggles::real_only())),
        Variant::new("MSOPDS-fake", AttackMethod::Msopds(ActionToggles::fake_only())),
    ]
}

fn cell(
    cfg: &XpConfig,
    dataset: DatasetKind,
    variant: &Variant,
    seed: u64,
    knob: f64,
    mutate: impl Fn(&mut msopds_gameplay::GameConfig),
) -> Cell {
    let mut game = cfg.game(seed);
    mutate(&mut game);
    Cell {
        dataset,
        method: variant.method,
        game,
        knob,
        label: variant.label.to_string(),
        defended: false,
        defense: None,
    }
}

/// Table III: every method × budget b × dataset, single opponent (b_op = 2).
pub fn table3_cells(cfg: &XpConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &dataset in &cfg.datasets {
        for variant in table3_methods() {
            for &b in &cfg.budgets {
                for &seed in &cfg.seeds {
                    cells.push(cell(cfg, dataset, &variant, seed, b as f64, |g| {
                        g.attacker_b = b;
                    }));
                }
            }
        }
    }
    cells
}

/// Fig. 6: every method × number of opponents, b = 5.
pub fn fig6_cells(cfg: &XpConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &dataset in &cfg.datasets {
        for variant in sweep_methods() {
            for &n_opp in &cfg.opponent_counts {
                for &seed in &cfg.seeds {
                    cells.push(cell(cfg, dataset, &variant, seed, n_opp as f64, |g| {
                        g.n_opponents = n_opp;
                    }));
                }
            }
        }
    }
    cells
}

/// Fig. 7: every method × opponent budget b_op, single opponent, b = 5.
pub fn fig7_cells(cfg: &XpConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &dataset in &cfg.datasets {
        for variant in sweep_methods() {
            for &b_op in &cfg.opponent_budgets {
                for &seed in &cfg.seeds {
                    cells.push(cell(cfg, dataset, &variant, seed, b_op as f64, |g| {
                        g.opponent_b = b_op;
                    }));
                }
            }
        }
    }
    cells
}

/// Fig. 8: capacity-category ablations on Epinions, budget sweep.
pub fn fig8_cells(cfg: &XpConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for variant in fig8_methods() {
        for &b in &cfg.budgets {
            for &seed in &cfg.seeds {
                cells.push(cell(cfg, DatasetKind::Epinions, &variant, seed, b as f64, |g| {
                    g.attacker_b = b;
                }));
            }
        }
    }
    cells
}

/// Fig. 9: real vs fake ablations on Epinions, budget sweep.
pub fn fig9_cells(cfg: &XpConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for variant in fig9_methods() {
        for &b in &cfg.budgets {
            for &seed in &cfg.seeds {
                cells.push(cell(cfg, DatasetKind::Epinions, &variant, seed, b as f64, |g| {
                    g.attacker_b = b;
                }));
            }
        }
    }
    cells
}

/// Runs an experiment's cells and returns seed-averaged measurements.
/// Permanently failed cells are dropped from the average — use
/// [`crate::runner::run_cells_with`] to observe and journal them.
pub fn run_experiment(cells: Vec<Cell>, cfg: &XpConfig) -> Result<Vec<Measurement>, RunError> {
    Ok(average_over_seeds(&run_cells(cells, cfg)?))
}

/// Renders Table III-style output: per dataset, one row per method, one
/// (r̄, HR@3) column pair per knob value.
pub fn render_table(title: &str, knob_name: &str, rows: &[Measurement]) -> String {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let datasets: BTreeSet<&str> = rows.iter().map(|m| m.dataset.as_str()).collect();
    let knobs: BTreeSet<i64> = rows.iter().map(|m| (m.knob * 1000.0) as i64).collect();
    // Preserve first-appearance method order.
    let mut methods: Vec<&str> = Vec::new();
    for m in rows {
        if !methods.contains(&m.method.as_str()) {
            methods.push(&m.method);
        }
    }
    for dataset in datasets {
        let _ = writeln!(out, "\n[{dataset}]");
        let _ = write!(out, "{:<14}", "method");
        for &k in &knobs {
            let _ = write!(out, " | {knob_name}={:<4} r̄    HR@3", k as f64 / 1000.0);
        }
        let _ = writeln!(out);
        for method in &methods {
            let _ = write!(out, "{method:<14}");
            for &k in &knobs {
                match rows.iter().find(|m| {
                    m.dataset == dataset && m.method == *method && ((m.knob * 1000.0) as i64) == k
                }) {
                    Some(m) => {
                        let _ = write!(out, " |      {:>6.4}  {:>6.4}", m.rbar, m.hr3);
                    }
                    None => {
                        let _ = write!(out, " |      {:>6}  {:>6}", "-", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Serializes measurements to pretty JSON.
pub fn to_json(rows: &[Measurement]) -> String {
    serde_json::to_string_pretty(rows).expect("measurements serialize")
}

/// Extension experiment (§VI-F's motivating claim, made executable): the same
/// attacks with and without a moderator that detects and shadow-bans
/// suspicious accounts before the victim trains. Expectation: the fake-heavy
/// capacities lose most of their effect, the real-user capacity survives —
/// the reason the paper argues for hiring real users.
pub fn defense_cells(cfg: &XpConfig) -> Vec<Cell> {
    let variants = vec![
        Variant::new("Random", AttackMethod::Baseline(Baseline::Random)),
        Variant::new("MSOPDS-fake", AttackMethod::Msopds(ActionToggles::fake_only())),
        Variant::new("MSOPDS-real", AttackMethod::Msopds(ActionToggles::real_only())),
        Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::no_item_edges())),
    ];
    let mut cells = Vec::new();
    for variant in variants {
        // knob 0 = undefended, knob 1 = defended.
        for defended in [0.0f64, 1.0] {
            for &seed in &cfg.seeds {
                let mut c = cell(cfg, DatasetKind::Epinions, &variant, seed, defended, |g| {
                    g.attacker_b = 5;
                });
                c.defended = defended > 0.5;
                cells.push(c);
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_cell_count() {
        let cfg = XpConfig::quick();
        let cells = table3_cells(&cfg);
        // datasets × methods (9 baselines + MSOPDS) × budgets × seeds
        assert_eq!(cells.len(), 10 * 2);
    }

    #[test]
    fn fig_cell_counts() {
        let cfg = XpConfig::quick();
        assert_eq!(fig6_cells(&cfg).len(), 5 * 2);
        assert_eq!(fig7_cells(&cfg).len(), 5 * 2);
        assert_eq!(fig8_cells(&cfg).len(), 4 * 2);
        assert_eq!(fig9_cells(&cfg).len(), 3 * 2);
    }

    #[test]
    fn defense_cells_pair_defended_and_undefended() {
        let cfg = XpConfig::quick();
        let cells = defense_cells(&cfg);
        assert_eq!(cells.len(), 4 * 2 * cfg.seeds.len());
        let defended = cells.iter().filter(|c| c.defended).count();
        assert_eq!(defended, cells.len() / 2);
        // knob encodes the defended flag for reporting.
        for c in &cells {
            assert_eq!(c.defended, c.knob > 0.5);
        }
    }

    #[test]
    fn fig9_excludes_item_edges() {
        for v in fig9_methods() {
            if let AttackMethod::Msopds(t) = v.method {
                assert!(!t.item_edges, "{} must exclude item edges", v.label);
            } else {
                panic!("fig9 methods are MSOPDS variants");
            }
        }
    }

    #[test]
    fn render_handles_missing_cells() {
        let rows = vec![Measurement {
            dataset: "D".into(),
            method: "M".into(),
            knob: 2.0,
            defense: String::new(),
            rbar: 3.25,
            hr3: 0.5,
            hr10: 0.7,
            seed: 0,
        }];
        let s = render_table("t", "b", &rows);
        assert!(s.contains("3.25"));
        assert!(s.contains("[D]"));
    }
}
