//! Cell-level execution: one (dataset, method, knobs, seed) game per cell,
//! parallelized across worker threads with crossbeam scoped threads.

use crossbeam::channel;
use msopds_gameplay::{run_game, AttackMethod, GameConfig};
use msopds_recdata::{sample_market, Dataset, Market};
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Experiment cells (games) executed across all [`run_cells`] calls.
static CELLS_RUN: telemetry::Counter = telemetry::Counter::new("xp.cells");

use crate::config::{DatasetKind, XpConfig};

/// One unit of work: a fully-specified game.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Dataset to generate.
    pub dataset: DatasetKind,
    /// Attacker method.
    pub method: AttackMethod,
    /// Game parameters (budgets, opponents, seed).
    pub game: GameConfig,
    /// Free-form knob value recorded in the result (b, #opponents, b_op, …).
    pub knob: f64,
    /// Report label (distinguishes ablation variants that share a method name).
    pub label: String,
    /// Run the moderator defense (detection + shadow ban) before the victim
    /// trains (the `defense` extension experiment).
    pub defended: bool,
}

/// One measured result row (seed-averaged by [`run_cells`]'s caller or raw).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Measurement {
    /// Dataset display name.
    pub dataset: String,
    /// Method display name.
    pub method: String,
    /// The experiment's swept knob value.
    pub knob: f64,
    /// Average predicted rating r̄.
    pub rbar: f64,
    /// HitRate@3.
    pub hr3: f64,
    /// Seed this game used.
    pub seed: u64,
}

/// Generates the dataset and market for a cell. Market sampling is seeded by
/// the game seed so every method in a (dataset, seed) group sees the *same*
/// market — the paper's controlled comparison.
pub fn materialize(
    kind: DatasetKind,
    cfg: &XpConfig,
    seed: u64,
    n_opponents: usize,
) -> (Dataset, Market) {
    let data = kind.spec().scaled(cfg.scale).generate(seed);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xA11CE);
    let market = sample_market(&data, &cfg.demographics(), n_opponents.max(1), &mut rng);
    (data, market)
}

/// Runs all cells across `cfg.threads` workers and returns measurements in
/// completion order.
pub fn run_cells(cells: Vec<Cell>, cfg: &XpConfig) -> Vec<Measurement> {
    let n = cells.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.threads.clamp(1, n);
    // Split the thread budget between the two parallelism levels so they
    // compose without oversubscription: cells take as many workers as there
    // are cells (up to the budget), and whatever remains — plus the worker's
    // own thread — becomes kernel-pool lanes inside each game.
    let kernel_lanes = (cfg.threads + 1).saturating_sub(threads).max(1);
    msopds_autograd::pool::configure_threads(kernel_lanes);
    let (work_tx, work_rx) = channel::unbounded::<Cell>();
    let (res_tx, res_rx) = channel::unbounded::<Measurement>();
    for cell in cells {
        work_tx.send(cell).expect("queue open");
    }
    drop(work_tx);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let cfg = cfg.clone();
            scope.spawn(move |_| {
                while let Ok(cell) = work_rx.recv() {
                    let _cell_span = telemetry::span("cell");
                    CELLS_RUN.incr();
                    let (data, market) =
                        materialize(cell.dataset, &cfg, cell.game.seed, cell.game.n_opponents);
                    let outcome = if cell.defended {
                        msopds_gameplay::run_defended_game(
                            &data,
                            &market,
                            cell.method,
                            &cell.game,
                            &msopds_gameplay::DetectorConfig::default(),
                        )
                        .0
                    } else {
                        run_game(&data, &market, cell.method, &cell.game)
                    };
                    res_tx
                        .send(Measurement {
                            dataset: cell.dataset.name().to_string(),
                            method: cell.label.clone(),
                            knob: cell.knob,
                            rbar: outcome.avg_rating,
                            hr3: outcome.hit_rate_at_3,
                            seed: cell.game.seed,
                        })
                        .expect("result channel open");
                }
            });
        }
        drop(res_tx);
        res_rx.iter().collect()
    })
    .expect("worker panicked")
}

/// Averages measurements over seeds, grouped by (dataset, method, knob).
pub fn average_over_seeds(measurements: &[Measurement]) -> Vec<Measurement> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, String, i64), (f64, f64, usize)> = BTreeMap::new();
    for m in measurements {
        let key = (m.dataset.clone(), m.method.clone(), (m.knob * 1000.0).round() as i64);
        let e = groups.entry(key).or_insert((0.0, 0.0, 0));
        e.0 += m.rbar;
        e.1 += m.hr3;
        e.2 += 1;
    }
    groups
        .into_iter()
        .map(|((dataset, method, knob_k), (rbar, hr3, count))| Measurement {
            dataset,
            method,
            knob: knob_k as f64 / 1000.0,
            rbar: rbar / count as f64,
            hr3: hr3 / count as f64,
            seed: 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_groups_by_key() {
        let m = |method: &str, knob: f64, rbar: f64, seed: u64| Measurement {
            dataset: "d".into(),
            method: method.into(),
            knob,
            rbar,
            hr3: rbar / 10.0,
            seed,
        };
        let avg = average_over_seeds(&[
            m("A", 2.0, 1.0, 1),
            m("A", 2.0, 3.0, 2),
            m("A", 3.0, 5.0, 1),
            m("B", 2.0, 7.0, 1),
        ]);
        assert_eq!(avg.len(), 3);
        let a2 = avg.iter().find(|x| x.method == "A" && x.knob == 2.0).unwrap();
        assert!((a2.rbar - 2.0).abs() < 1e-12);
        assert!((a2.hr3 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_cells_is_empty() {
        let cfg = XpConfig::quick();
        assert!(run_cells(Vec::new(), &cfg).is_empty());
    }
}
