//! Cell-level execution: one (dataset, method, knobs, seed) game per cell,
//! parallelized across worker threads with crossbeam scoped threads.
//!
//! Fault tolerance: every cell runs under `catch_unwind` with a bounded retry
//! budget, permanent failures become typed [`CellError`]s instead of tearing
//! the sweep down, and an optional JSONL journal (see [`crate::journal`])
//! records each outcome as it lands so an interrupted run can be resumed.

use std::panic::{self, AssertUnwindSafe};

use crossbeam::channel;
use msopds_faultline as faultline;
use msopds_gameplay::{run_game, AttackMethod, GameConfig};
use msopds_recdata::{sample_market, Dataset, Market};
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::journal::{latest_outcomes, CellError, CellErrorKind, CellKey, Journal, JournalEntry};

/// Experiment cells (games) executed across all [`run_cells`] calls.
static CELLS_RUN: telemetry::Counter = telemetry::Counter::new("xp.cells");
/// Cell attempts that panicked (caught, not fatal).
static CELL_PANICS: telemetry::Counter = telemetry::Counter::new("xp.cell_panics");
/// Retries granted after a panicked attempt.
static CELL_RETRIES: telemetry::Counter = telemetry::Counter::new("xp.cell_retries");
/// Cells that exhausted their retry budget.
static CELLS_FAILED: telemetry::Counter = telemetry::Counter::new("xp.cells_failed");
/// Cells skipped on resume because the journal already has their result.
static CELLS_RESUMED: telemetry::Counter = telemetry::Counter::new("xp.cells_resumed");

use crate::config::{DatasetKind, XpConfig};

/// One unit of work: a fully-specified game.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Dataset to generate.
    pub dataset: DatasetKind,
    /// Attacker method.
    pub method: AttackMethod,
    /// Game parameters (budgets, opponents, seed).
    pub game: GameConfig,
    /// Free-form knob value recorded in the result (b, #opponents, b_op, …).
    pub knob: f64,
    /// Report label (distinguishes ablation variants that share a method name).
    pub label: String,
    /// Run the moderator defense (detection + shadow ban) before the victim
    /// trains (the `defense` extension experiment).
    pub defended: bool,
    /// Detector-pipeline spec for the attack × defense matrix (e.g. `"off"`,
    /// `"degree"`, `"degree+spectral"`; see
    /// [`msopds_gameplay::ShadowBanPolicy::from_spec`]). `None` keeps the
    /// legacy `defended` semantics.
    pub defense: Option<String>,
}

/// One measured result row (seed-averaged by [`run_cells`]'s caller or raw).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Measurement {
    /// Dataset display name.
    pub dataset: String,
    /// Method display name.
    pub method: String,
    /// The experiment's swept knob value.
    pub knob: f64,
    /// Defense-pipeline spec this cell ran under (`""` for the legacy
    /// experiments, `"off"`/`"degree"`/… for matrix cells).
    pub defense: String,
    /// Average predicted rating r̄.
    pub rbar: f64,
    /// HitRate@3.
    pub hr3: f64,
    /// HitRate@10 over the padded ranking pool (see
    /// [`msopds_gameplay::ranking_pool`]).
    pub hr10: f64,
    /// Seed this game used.
    pub seed: u64,
}

/// Infrastructure failure of a sweep (I/O, corruption, channel teardown) —
/// *not* an individual cell failure, which is reported in [`RunReport`].
#[derive(Debug)]
pub enum RunError {
    /// Journal file I/O failed.
    Journal(std::io::Error),
    /// The journal is corrupt before its final line.
    JournalParse {
        /// 1-based line number of the offending entry.
        line: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// An internal channel closed early (a worker died outside `catch_unwind`).
    ChannelClosed(&'static str),
    /// A worker thread itself panicked (outside the per-cell guard).
    WorkerPanic(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Journal(e) => write!(f, "journal I/O error: {e}"),
            RunError::JournalParse { line, message } => {
                write!(f, "corrupt journal at line {line}: {message}")
            }
            RunError::ChannelClosed(which) => write!(f, "{which} channel closed unexpectedly"),
            RunError::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// How [`run_cells_with`] journals, resumes and retries.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Experiment id recorded in each journal key (`table3`, `fig6`, …).
    pub experiment: String,
    /// Append each cell outcome to this JSONL file.
    pub journal: Option<std::path::PathBuf>,
    /// Skip cells whose success is already journaled (failures re-run).
    pub resume: bool,
    /// Extra attempts granted to a panicking cell (0 = fail on first panic).
    pub retries: usize,
}

impl RunOptions {
    /// Options for experiment `experiment` with the default retry budget.
    pub fn for_experiment(experiment: &str) -> Self {
        Self { experiment: experiment.to_string(), retries: DEFAULT_RETRIES, ..Self::default() }
    }
}

/// Default extra attempts for a panicking cell.
pub const DEFAULT_RETRIES: usize = 1;

/// A cell that produced no measurement within its retry budget.
#[derive(Clone, Debug)]
pub struct FailedCell {
    /// Which cell.
    pub key: CellKey,
    /// Why it failed.
    pub error: CellError,
}

/// What a sweep produced.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Successful measurements — journal-replayed and freshly executed.
    pub measurements: Vec<Measurement>,
    /// Cells that exhausted their retry budget this run.
    pub failures: Vec<FailedCell>,
    /// Cells skipped because the journal already had their measurement.
    pub resumed: usize,
    /// Cells actually executed (including re-runs of journaled failures).
    pub executed: usize,
}

/// Generates the dataset and market for a cell. Market sampling is seeded by
/// the game seed so every method in a (dataset, seed) group sees the *same*
/// market — the paper's controlled comparison.
pub fn materialize(
    kind: DatasetKind,
    cfg: &XpConfig,
    seed: u64,
    n_opponents: usize,
) -> (Dataset, Market) {
    let data = kind.spec().scaled(cfg.scale).generate(seed);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xA11CE);
    let market = sample_market(&data, &cfg.demographics(), n_opponents.max(1), &mut rng);
    (data, market)
}

/// Runs one cell to completion (the per-attempt body; may panic).
fn execute_cell(cell: &Cell, cfg: &XpConfig) -> Measurement {
    let _cell_span = telemetry::span("cell");
    CELLS_RUN.incr();
    faultline::fault_point!("xp.cell");
    let (data, market) = materialize(cell.dataset, cfg, cell.game.seed, cell.game.n_opponents);
    let outcome = if let Some(spec) = &cell.defense {
        let policy = msopds_gameplay::ShadowBanPolicy::from_spec(spec)
            .unwrap_or_else(|e| panic!("invalid defense spec {spec:?}: {e}"));
        msopds_gameplay::run_defended_game_with(&data, &market, cell.method, &cell.game, &policy).0
    } else if cell.defended {
        msopds_gameplay::run_defended_game(
            &data,
            &market,
            cell.method,
            &cell.game,
            &msopds_gameplay::DetectorConfig::default(),
        )
        .0
    } else {
        run_game(&data, &market, cell.method, &cell.game)
    };
    Measurement {
        dataset: cell.dataset.name().to_string(),
        method: cell.label.clone(),
        knob: cell.knob,
        defense: cell.defense.clone().unwrap_or_default(),
        rbar: outcome.avg_rating,
        hr3: outcome.hit_rate_at_3,
        hr10: outcome.hit_rate_at_10,
        seed: cell.game.seed,
    }
}

/// Renders a caught panic payload for diagnostics.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `cell` under `catch_unwind` with `retries` extra attempts. The
/// fault-injection context is re-keyed per attempt so injected faults are
/// deterministic per (cell, attempt) and retries reroll them.
fn run_cell_guarded(
    cell: &Cell,
    cfg: &XpConfig,
    key: &CellKey,
    retries: usize,
) -> Result<Measurement, CellError> {
    let mut last = String::new();
    for attempt in 0..=retries {
        faultline::set_context(key.context_hash(attempt));
        let result = panic::catch_unwind(AssertUnwindSafe(|| execute_cell(cell, cfg)));
        faultline::set_context(0);
        match result {
            Ok(m) => return Ok(m),
            Err(payload) => {
                CELL_PANICS.incr();
                last = panic_message(payload);
                if attempt < retries {
                    CELL_RETRIES.incr();
                }
            }
        }
    }
    CELLS_FAILED.incr();
    Err(CellError { kind: CellErrorKind::Panic, message: last, attempts: retries + 1 })
}

/// Runs all cells across `cfg.threads` workers with journaling, resume and
/// per-cell retry per `opts`. Measurements come back in completion order;
/// callers needing a canonical order go through [`average_over_seeds`], which
/// is summation-order independent.
pub fn run_cells_with(
    cells: Vec<Cell>,
    cfg: &XpConfig,
    opts: &RunOptions,
) -> Result<RunReport, RunError> {
    let mut report = RunReport::default();

    // ---- resume: replay journaled successes, re-run journaled failures ----
    let mut todo = Vec::with_capacity(cells.len());
    let journaled = match (&opts.journal, opts.resume) {
        (Some(path), true) if path.exists() => {
            latest_outcomes(&crate::journal::load_journal(path)?, &opts.experiment)
        }
        _ => Default::default(),
    };
    for cell in cells {
        let key = CellKey::of(&opts.experiment, &cell);
        match journaled.get(&key).and_then(|e| e.ok.clone()) {
            Some(m) => {
                CELLS_RESUMED.incr();
                report.resumed += 1;
                report.measurements.push(m);
            }
            None => todo.push((key, cell)),
        }
    }
    let mut journal = match &opts.journal {
        Some(path) => Some(Journal::open(path, opts.resume)?),
        None => None,
    };
    if todo.is_empty() {
        return Ok(report);
    }

    let threads = cfg.threads.clamp(1, todo.len());
    // Split the thread budget between the two parallelism levels so they
    // compose without oversubscription: cells take as many workers as there
    // are cells (up to the budget), and whatever remains — plus the worker's
    // own thread — becomes kernel-pool lanes inside each game.
    let kernel_lanes = (cfg.threads + 1).saturating_sub(threads).max(1);
    msopds_autograd::pool::configure_threads(kernel_lanes);
    let (work_tx, work_rx) = channel::unbounded::<(CellKey, Cell)>();
    let (res_tx, res_rx) = channel::unbounded::<(CellKey, Result<Measurement, CellError>)>();
    report.executed = todo.len();
    for job in todo {
        work_tx.send(job).map_err(|_| RunError::ChannelClosed("work"))?;
    }
    drop(work_tx);

    let retries = opts.retries;
    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let cfg = cfg.clone();
            scope.spawn(move |_| {
                while let Ok((key, cell)) = work_rx.recv() {
                    let outcome = run_cell_guarded(&cell, &cfg, &key, retries);
                    // A closed result channel means the collector bailed
                    // (journal I/O error) — drain nothing further and exit.
                    if res_tx.send((key, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);

        // Collector: journal each outcome the moment it lands, then fold it
        // into the report. On journal failure, dropping `res_rx` (by
        // returning) unblocks the workers, and the scope joins them.
        for (key, outcome) in res_rx.iter() {
            if let Some(j) = journal.as_mut() {
                j.append(&JournalEntry {
                    key: key.clone(),
                    ok: outcome.as_ref().ok().cloned(),
                    err: outcome.as_ref().err().cloned(),
                })?;
            }
            match outcome {
                Ok(m) => report.measurements.push(m),
                Err(error) => report.failures.push(FailedCell { key, error }),
            }
        }
        Ok(report)
    });
    match scope_result {
        Ok(collected) => collected,
        Err(payload) => Err(RunError::WorkerPanic(panic_message(payload))),
    }
}

/// Runs all cells with default options (no journal, default retry budget) and
/// returns measurements in completion order. Cells that fail permanently are
/// *dropped* from the result — use [`run_cells_with`] to observe them.
pub fn run_cells(cells: Vec<Cell>, cfg: &XpConfig) -> Result<Vec<Measurement>, RunError> {
    let opts = RunOptions { retries: DEFAULT_RETRIES, ..RunOptions::default() };
    Ok(run_cells_with(cells, cfg, &opts)?.measurements)
}

/// Averages measurements over seeds, grouped by (dataset, method, knob).
///
/// Members of each group are sorted by seed before summation, so the result
/// is **bit-identical regardless of arrival order** — the property that makes
/// resumed runs reproduce uninterrupted ones exactly.
pub fn average_over_seeds(measurements: &[Measurement]) -> Vec<Measurement> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, String, String, i64), Vec<&Measurement>> = BTreeMap::new();
    for m in measurements {
        let key = (
            m.dataset.clone(),
            m.method.clone(),
            m.defense.clone(),
            (m.knob * 1000.0).round() as i64,
        );
        groups.entry(key).or_default().push(m);
    }
    groups
        .into_iter()
        .map(|((dataset, method, defense, knob_k), mut members)| {
            // Total order (seed, then value bits) so even pathological inputs
            // with duplicate seeds sum in a canonical order.
            members.sort_by_key(|m| (m.seed, m.rbar.to_bits(), m.hr3.to_bits(), m.hr10.to_bits()));
            let (mut rbar, mut hr3, mut hr10) = (0.0, 0.0, 0.0);
            for m in &members {
                rbar += m.rbar;
                hr3 += m.hr3;
                hr10 += m.hr10;
            }
            let count = members.len() as f64;
            Measurement {
                dataset,
                method,
                knob: knob_k as f64 / 1000.0,
                defense,
                rbar: rbar / count,
                hr3: hr3 / count,
                hr10: hr10 / count,
                seed: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_groups_by_key() {
        let m = |method: &str, knob: f64, rbar: f64, seed: u64| Measurement {
            dataset: "d".into(),
            method: method.into(),
            knob,
            defense: String::new(),
            rbar,
            hr3: rbar / 10.0,
            hr10: rbar / 5.0,
            seed,
        };
        let avg = average_over_seeds(&[
            m("A", 2.0, 1.0, 1),
            m("A", 2.0, 3.0, 2),
            m("A", 3.0, 5.0, 1),
            m("B", 2.0, 7.0, 1),
        ]);
        assert_eq!(avg.len(), 3);
        let a2 = avg.iter().find(|x| x.method == "A" && x.knob == 2.0).unwrap();
        assert!((a2.rbar - 2.0).abs() < 1e-12);
        assert!((a2.hr3 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn averaging_is_order_independent_bitwise() {
        // Values chosen so naive float summation order would differ in ulps.
        let m = |rbar: f64, seed: u64| Measurement {
            dataset: "d".into(),
            method: "A".into(),
            knob: 1.0,
            defense: String::new(),
            rbar,
            hr3: rbar * 0.3,
            hr10: rbar * 0.7,
            seed,
        };
        let a = [m(0.1, 1), m(1e15, 2), m(-1e15, 3), m(0.2, 4)];
        let mut b = a.clone();
        b.reverse();
        let (ra, rb) = (average_over_seeds(&a), average_over_seeds(&b));
        assert_eq!(ra.len(), 1);
        assert_eq!(ra[0].rbar.to_bits(), rb[0].rbar.to_bits());
        assert_eq!(ra[0].hr3.to_bits(), rb[0].hr3.to_bits());
    }

    #[test]
    fn empty_cells_is_empty() {
        let cfg = XpConfig::quick();
        assert!(run_cells(Vec::new(), &cfg).unwrap().is_empty());
    }
}
