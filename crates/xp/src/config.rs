//! Experiment configuration shared by every table/figure runner.

use msopds_autograd::HvpMode;
use msopds_core::{MsoConfig, PlannerConfig};
use msopds_gameplay::GameConfig;
use msopds_recdata::{DatasetSpec, DemographicsSpec};
use msopds_recsys::pds::PdsConfig;
use msopds_recsys::HetRecConfig;
use serde::{Deserialize, Serialize};

/// The three evaluation datasets of §VI-A.1 (synthetic equivalents).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Ciao [79].
    Ciao,
    /// Epinions [80].
    Epinions,
    /// LibraryThing [81].
    LibraryThing,
}

impl DatasetKind {
    /// All datasets in Table III order.
    pub fn all() -> [DatasetKind; 3] {
        [DatasetKind::Ciao, DatasetKind::Epinions, DatasetKind::LibraryThing]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Ciao => "Ciao",
            DatasetKind::Epinions => "Epinions",
            DatasetKind::LibraryThing => "LibraryThing",
        }
    }

    /// The generator spec at full published statistics.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Ciao => DatasetSpec::ciao(),
            DatasetKind::Epinions => DatasetSpec::epinions(),
            DatasetKind::LibraryThing => DatasetSpec::library_thing(),
        }
    }
}

/// Harness-wide experiment parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct XpConfig {
    /// Dataset scale divisor (DESIGN.md §2; default 16).
    pub scale: f64,
    /// Seeds averaged per cell.
    pub seeds: Vec<u64>,
    /// Attacker budgets swept by Table III / Fig. 8 / Fig. 9.
    pub budgets: Vec<usize>,
    /// Datasets to evaluate.
    pub datasets: Vec<DatasetKind>,
    /// Opponent counts swept by Fig. 6.
    pub opponent_counts: Vec<usize>,
    /// Opponent budgets swept by Fig. 7.
    pub opponent_budgets: Vec<usize>,
    /// Total worker budget shared between cell-level parallelism and the
    /// tensor-kernel pool (see `run_cells`). Defaults to the `MSOPDS_THREADS`
    /// environment variable when set, else the machine's parallelism.
    pub threads: usize,
}

/// The default thread budget: `MSOPDS_THREADS` if set to a positive integer,
/// otherwise the number of available cores.
pub fn default_threads() -> usize {
    std::env::var("MSOPDS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

impl Default for XpConfig {
    fn default() -> Self {
        Self {
            scale: 16.0,
            seeds: vec![1, 2],
            budgets: vec![2, 3, 4, 5],
            datasets: DatasetKind::all().to_vec(),
            opponent_counts: vec![1, 2, 3],
            opponent_budgets: vec![1, 2, 3, 4],
            threads: default_threads(),
        }
    }
}

impl XpConfig {
    /// A fast smoke configuration for CI and the quickstart example.
    pub fn quick() -> Self {
        Self {
            scale: 24.0,
            seeds: vec![1],
            budgets: vec![2, 5],
            datasets: vec![DatasetKind::Ciao],
            opponent_counts: vec![1, 2],
            opponent_budgets: vec![1, 3],
            ..Self::default()
        }
    }

    /// Demographic sampling spec at this scale.
    pub fn demographics(&self) -> DemographicsSpec {
        DemographicsSpec::default().scaled(self.scale)
    }

    /// The per-game configuration template at this scale.
    pub fn game(&self, seed: u64) -> GameConfig {
        let planner = PlannerConfig {
            mso: MsoConfig {
                iters: 12,
                cg_iters: 5,
                hvp_mode: HvpMode::Exact,
                ..Default::default()
            },
            pds: PdsConfig::default(),
        };
        GameConfig {
            victim: HetRecConfig {
                epochs: 50,
                dim: 12,
                attention: true,
                lambda: 1e-2,
                ..Default::default()
            },
            planner,
            opponent_planner: PlannerConfig {
                mso: MsoConfig { iters: 6, cg_iters: 3, ..Default::default() },
                pds: PdsConfig { inner_steps: 4, ..Default::default() },
            },
            attacker_b: 5,
            n_opponents: 1,
            opponent_b: 2,
            scale: self.scale,
            seed,
            kernel_threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kinds_resolve() {
        for k in DatasetKind::all() {
            let spec = k.spec();
            assert!(spec.n_users > 1000, "{} spec too small", k.name());
        }
    }

    #[test]
    fn quick_is_smaller_than_default() {
        let q = XpConfig::quick();
        let d = XpConfig::default();
        assert!(q.scale > d.scale);
        assert!(q.seeds.len() <= d.seeds.len());
        assert!(q.datasets.len() < d.datasets.len());
    }

    #[test]
    fn game_config_derives_from_scale() {
        let cfg = XpConfig::default();
        let g = cfg.game(7);
        assert_eq!(g.scale, cfg.scale);
        assert_eq!(g.seed, 7);
        assert!(g.planner.mso.eta_p < g.planner.mso.eta_q);
    }
}
