//! Experiment configuration shared by every table/figure runner, plus the
//! [`RuntimeConfig`] builder — the single place where environment variables
//! and CLI flags that control *how* experiments run (threads, backend,
//! telemetry, fault plans, journaling) are parsed.

use std::path::PathBuf;

use msopds_autograd::HvpMode;
use msopds_core::{MsoConfig, PlannerConfig};
use msopds_gameplay::GameConfig;
use msopds_recdata::{DatasetSpec, DemographicsSpec};
use msopds_recsys::pds::PdsConfig;
use msopds_recsys::{Backend, HetRecConfig};
use msopds_serve::ScorePrecision;
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// The three evaluation datasets of §VI-A.1 (synthetic equivalents).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Ciao [79].
    Ciao,
    /// Epinions [80].
    Epinions,
    /// LibraryThing [81].
    LibraryThing,
}

impl DatasetKind {
    /// All datasets in Table III order.
    pub fn all() -> [DatasetKind; 3] {
        [DatasetKind::Ciao, DatasetKind::Epinions, DatasetKind::LibraryThing]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Ciao => "Ciao",
            DatasetKind::Epinions => "Epinions",
            DatasetKind::LibraryThing => "LibraryThing",
        }
    }

    /// The generator spec at full published statistics.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Ciao => DatasetSpec::ciao(),
            DatasetKind::Epinions => DatasetSpec::epinions(),
            DatasetKind::LibraryThing => DatasetSpec::library_thing(),
        }
    }
}

/// Harness-wide experiment parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct XpConfig {
    /// Dataset scale divisor (DESIGN.md §2; default 16).
    pub scale: f64,
    /// Seeds averaged per cell.
    pub seeds: Vec<u64>,
    /// Attacker budgets swept by Table III / Fig. 8 / Fig. 9.
    pub budgets: Vec<usize>,
    /// Datasets to evaluate.
    pub datasets: Vec<DatasetKind>,
    /// Opponent counts swept by Fig. 6.
    pub opponent_counts: Vec<usize>,
    /// Opponent budgets swept by Fig. 7.
    pub opponent_budgets: Vec<usize>,
    /// Total worker budget shared between cell-level parallelism and the
    /// tensor-kernel pool (see `run_cells`). Defaults to the `MSOPDS_THREADS`
    /// environment variable when set, else the machine's parallelism.
    pub threads: usize,
    /// Graph-operation backend every model in the sweep runs on. Defaults to
    /// the `MSOPDS_BACKEND` environment variable (else dense).
    pub backend: Backend,
}

/// The default thread budget: `MSOPDS_THREADS` if set to a positive integer,
/// otherwise the number of available cores.
pub fn default_threads() -> usize {
    std::env::var("MSOPDS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

impl Default for XpConfig {
    fn default() -> Self {
        Self {
            scale: 16.0,
            seeds: vec![1, 2],
            budgets: vec![2, 3, 4, 5],
            datasets: DatasetKind::all().to_vec(),
            opponent_counts: vec![1, 2, 3],
            opponent_budgets: vec![1, 2, 3, 4],
            threads: default_threads(),
            backend: Backend::from_env(),
        }
    }
}

impl XpConfig {
    /// A fast smoke configuration for CI and the quickstart example.
    pub fn quick() -> Self {
        Self {
            scale: 24.0,
            seeds: vec![1],
            budgets: vec![2, 5],
            datasets: vec![DatasetKind::Ciao],
            opponent_counts: vec![1, 2],
            opponent_budgets: vec![1, 3],
            ..Self::default()
        }
    }

    /// Demographic sampling spec at this scale.
    pub fn demographics(&self) -> DemographicsSpec {
        DemographicsSpec::default().scaled(self.scale)
    }

    /// The per-game configuration template at this scale. The configured
    /// [`Backend`] is threaded into every model config, so the whole game —
    /// victim retraining and both players' surrogates — runs on it.
    pub fn game(&self, seed: u64) -> GameConfig {
        let planner = PlannerConfig {
            mso: MsoConfig {
                iters: 12,
                cg_iters: 5,
                hvp_mode: HvpMode::Exact,
                ..Default::default()
            },
            pds: PdsConfig { backend: self.backend, ..Default::default() },
        };
        GameConfig {
            victim: HetRecConfig {
                epochs: 50,
                dim: 12,
                attention: true,
                lambda: 1e-2,
                backend: self.backend,
                ..Default::default()
            },
            planner,
            opponent_planner: PlannerConfig {
                mso: MsoConfig { iters: 6, cg_iters: 3, ..Default::default() },
                pds: PdsConfig { inner_steps: 4, backend: self.backend, ..Default::default() },
            },
            attacker_b: 5,
            n_opponents: 1,
            opponent_b: 2,
            scale: self.scale,
            seed,
            kernel_threads: 0,
        }
    }
}

/// Resolved runtime parameters of a harness invocation: everything that
/// controls *how* a sweep executes, as opposed to *what* it measures
/// ([`XpConfig`]).
///
/// Built by [`RuntimeConfig::builder`], which seeds every field from the
/// environment (`MSOPDS_THREADS`, `MSOPDS_BACKEND`, `MSOPDS_METRICS`,
/// `MSOPDS_FAULT_PLAN`) and then layers CLI flags on top via
/// [`RuntimeConfigBuilder::parse_cli`]. This is the **only** env/CLI parse
/// point — `repro` and the runner consume the finished struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Total worker budget (cells × kernel lanes); see [`XpConfig::threads`].
    pub threads: usize,
    /// Graph-operation backend for every model in the run.
    pub backend: Backend,
    /// Write collected telemetry as JSON here on completion; `Some` also
    /// enables recording.
    pub metrics_out: Option<PathBuf>,
    /// Arm `MSOPDS_FAULT_PLAN` fault injection (builds with the
    /// `fault-injection` feature; a no-op otherwise).
    pub arm_faults: bool,
    /// Append each finished cell to this JSONL journal.
    pub journal: Option<PathBuf>,
    /// Replay journaled successes instead of re-running them.
    pub resume: bool,
    /// Extra attempts granted to a panicking cell.
    pub retries: usize,
    /// Train the clean victim and persist its model snapshot here (the
    /// `repro --snapshot-out` / `repro snapshot` read-path handoff).
    pub snapshot_out: Option<PathBuf>,
    /// Scoring kernel of the serving read path (`--precision` /
    /// `MSOPDS_PRECISION`): bit-exact f64 by default, opt-in f32 fast path.
    /// Only the serving front ends consume this — planners and training are
    /// always f64.
    pub precision: ScorePrecision,
    /// Async-serving coalescing deadline in microseconds (`--deadline-us` /
    /// `MSOPDS_DEADLINE_US`): how long a submitted query may wait for
    /// co-batched company. Only the `serve-async` front end consumes this.
    pub deadline_us: u64,
    /// Async-serving max coalesced batch (`--max-batch` /
    /// `MSOPDS_MAX_BATCH`): the queue flushes as soon as this many queries
    /// are pending.
    pub max_batch: usize,
    /// Async-serving admission cap (`--queue-cap` / `MSOPDS_QUEUE_CAP`):
    /// offers beyond this many pending queries are shed with a typed
    /// `Overloaded` rejection instead of queueing into unbounded latency.
    pub queue_cap: usize,
    /// TCP address the `serve-net` binary listens on (`--listen`), e.g.
    /// `127.0.0.1:7878`. Mutually exclusive with [`RuntimeConfig::connect`].
    pub listen: Option<String>,
    /// TCP address the `serve-net` binary drives load against (`--connect`).
    pub connect: Option<String>,
    /// Per-connection in-flight window of the socket front end
    /// (`--conn-window` / `MSOPDS_CONN_WINDOW`): the server stops reading a
    /// connection with this many unanswered queries, letting TCP push back
    /// on the client instead of buffering unboundedly.
    pub conn_window: usize,
    /// Upper bound on the socket front end's graceful-drain wait in
    /// milliseconds (`--drain-ms` / `MSOPDS_DRAIN_MS`).
    pub drain_ms: u64,
}

/// An optional positive-integer environment override, for the async-serving
/// batcher knobs (`MSOPDS_DEADLINE_US`, `MSOPDS_MAX_BATCH`,
/// `MSOPDS_QUEUE_CAP`). Unset, empty, or non-positive values fall back.
fn env_count(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl RuntimeConfig {
    /// A builder seeded from the environment.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            threads: default_threads(),
            backend: Backend::from_env(),
            metrics_out: telemetry::env_metrics_path(),
            arm_faults: true,
            journal: None,
            resume: false,
            retries: crate::runner::DEFAULT_RETRIES,
            snapshot_out: None,
            precision: ScorePrecision::from_env(),
            deadline_us: env_count("MSOPDS_DEADLINE_US", 200),
            max_batch: env_count("MSOPDS_MAX_BATCH", 1024) as usize,
            queue_cap: env_count("MSOPDS_QUEUE_CAP", 8192) as usize,
            listen: None,
            connect: None,
            conn_window: env_count("MSOPDS_CONN_WINDOW", 64) as usize,
            drain_ms: env_count("MSOPDS_DRAIN_MS", 1000),
        }
    }

    /// Applies the process-global side effects this configuration implies:
    /// arms the fault plan and switches telemetry recording on when a metrics
    /// path is set. Call once, before running cells.
    pub fn install(&self) {
        if self.arm_faults {
            msopds_faultline::arm_from_env();
        }
        if self.metrics_out.is_some() {
            telemetry::set_enabled(true);
        }
    }

    /// Exports collected telemetry to [`RuntimeConfig::metrics_out`] (or the
    /// recorder's fallback behavior when unset). Call once, after the run.
    pub fn export_metrics(&self) {
        telemetry::export(self.metrics_out.as_deref());
    }

    /// Overlays the runtime knobs that [`XpConfig`] carries into each cell.
    pub fn apply_to(&self, cfg: &mut XpConfig) {
        cfg.threads = self.threads;
        cfg.backend = self.backend;
    }

    /// The per-experiment [`crate::runner::RunOptions`] this configuration
    /// prescribes. `resume_now` lets an `all` sweep pass journal-append mode
    /// for every experiment after the first.
    pub fn run_options(&self, experiment: &str, resume_now: bool) -> crate::runner::RunOptions {
        crate::runner::RunOptions {
            experiment: experiment.to_string(),
            journal: self.journal.clone(),
            resume: resume_now,
            retries: self.retries,
        }
    }
}

/// Builder for [`RuntimeConfig`]; see [`RuntimeConfig::builder`].
#[derive(Clone, Debug)]
pub struct RuntimeConfigBuilder {
    threads: usize,
    backend: Backend,
    metrics_out: Option<PathBuf>,
    arm_faults: bool,
    journal: Option<PathBuf>,
    resume: bool,
    retries: usize,
    snapshot_out: Option<PathBuf>,
    precision: ScorePrecision,
    deadline_us: u64,
    max_batch: usize,
    queue_cap: usize,
    listen: Option<String>,
    connect: Option<String>,
    conn_window: usize,
    drain_ms: u64,
}

impl RuntimeConfigBuilder {
    /// Overrides the worker-thread budget (0 is rejected at [`build`](Self::build)).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Overrides the graph-operation backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables telemetry recording and sets the export path.
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Disables fault-plan arming (tests that manage faultline themselves).
    pub fn no_faults(mut self) -> Self {
        self.arm_faults = false;
        self
    }

    /// Sets the cell journal path.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Replays journaled successes.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Sets the per-cell retry budget.
    pub fn retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// Persist the clean victim's model snapshot to `path` after the run.
    pub fn snapshot_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_out = Some(path.into());
        self
    }

    /// Overrides the serving scoring kernel.
    pub fn precision(mut self, precision: ScorePrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Overrides the async-serving coalescing deadline, microseconds.
    pub fn deadline_us(mut self, us: u64) -> Self {
        self.deadline_us = us;
        self
    }

    /// Overrides the async-serving max coalesced batch.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Overrides the async-serving admission cap.
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n;
        self
    }

    /// Sets the `serve-net` listen address.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = Some(addr.into());
        self
    }

    /// Sets the `serve-net` connect address.
    pub fn connect(mut self, addr: impl Into<String>) -> Self {
        self.connect = Some(addr.into());
        self
    }

    /// Overrides the socket front end's per-connection in-flight window.
    pub fn conn_window(mut self, n: usize) -> Self {
        self.conn_window = n;
        self
    }

    /// Overrides the socket front end's graceful-drain bound, milliseconds.
    pub fn drain_ms(mut self, ms: u64) -> Self {
        self.drain_ms = ms;
        self
    }

    /// Consumes the runtime flags from `args`, returning the remaining
    /// (experiment-specific) arguments in order.
    ///
    /// Recognized: `--threads N`, `--backend dense|sparse`,
    /// `--metrics-out FILE`, `--journal FILE`, `--resume`, `--retries N`,
    /// `--snapshot-out FILE`, `--precision exact64|fast32`,
    /// `--deadline-us N`, `--max-batch N`, `--queue-cap N`,
    /// `--listen ADDR`, `--connect ADDR`, `--conn-window N`, `--drain-ms N`.
    /// Errors name the offending flag, for `exit(2)`-style usage reporting.
    pub fn parse_cli(mut self, args: &[String]) -> Result<(Self, Vec<String>), String> {
        let mut rest = Vec::new();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} requires a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    self.threads = value(&mut i, "--threads")?
                        .parse()
                        .map_err(|_| "--threads takes an integer".to_string())?;
                }
                "--backend" => {
                    self.backend = value(&mut i, "--backend")?
                        .parse()
                        .map_err(|e| format!("--backend: {e}"))?;
                }
                "--metrics-out" => {
                    self.metrics_out = Some(PathBuf::from(value(&mut i, "--metrics-out")?));
                }
                "--journal" => {
                    self.journal = Some(PathBuf::from(value(&mut i, "--journal")?));
                }
                "--resume" => self.resume = true,
                "--snapshot-out" => {
                    self.snapshot_out = Some(PathBuf::from(value(&mut i, "--snapshot-out")?));
                }
                "--retries" => {
                    self.retries = value(&mut i, "--retries")?
                        .parse()
                        .map_err(|_| "--retries takes an integer".to_string())?;
                }
                "--precision" => {
                    self.precision = value(&mut i, "--precision")?
                        .parse()
                        .map_err(|e| format!("--precision: {e}"))?;
                }
                "--deadline-us" => {
                    self.deadline_us = value(&mut i, "--deadline-us")?
                        .parse()
                        .map_err(|_| "--deadline-us takes an integer".to_string())?;
                }
                "--max-batch" => {
                    self.max_batch = value(&mut i, "--max-batch")?
                        .parse()
                        .map_err(|_| "--max-batch takes an integer".to_string())?;
                }
                "--queue-cap" => {
                    self.queue_cap = value(&mut i, "--queue-cap")?
                        .parse()
                        .map_err(|_| "--queue-cap takes an integer".to_string())?;
                }
                "--listen" => self.listen = Some(value(&mut i, "--listen")?),
                "--connect" => self.connect = Some(value(&mut i, "--connect")?),
                "--conn-window" => {
                    self.conn_window = value(&mut i, "--conn-window")?
                        .parse()
                        .map_err(|_| "--conn-window takes an integer".to_string())?;
                }
                "--drain-ms" => {
                    self.drain_ms = value(&mut i, "--drain-ms")?
                        .parse()
                        .map_err(|_| "--drain-ms takes an integer".to_string())?;
                }
                other => rest.push(other.to_string()),
            }
            i += 1;
        }
        Ok((self, rest))
    }

    /// Validates and produces the [`RuntimeConfig`].
    pub fn build(self) -> Result<RuntimeConfig, String> {
        if self.threads == 0 {
            return Err("--threads must be positive".to_string());
        }
        if self.resume && self.journal.is_none() {
            return Err("--resume requires --journal FILE".to_string());
        }
        if self.max_batch == 0 {
            return Err("--max-batch must be positive".to_string());
        }
        if self.queue_cap == 0 {
            return Err("--queue-cap must be positive".to_string());
        }
        if self.conn_window == 0 {
            return Err("--conn-window must be positive".to_string());
        }
        if self.listen.is_some() && self.connect.is_some() {
            return Err("--listen and --connect are mutually exclusive".to_string());
        }
        Ok(RuntimeConfig {
            threads: self.threads,
            backend: self.backend,
            metrics_out: self.metrics_out,
            arm_faults: self.arm_faults,
            journal: self.journal,
            resume: self.resume,
            retries: self.retries,
            snapshot_out: self.snapshot_out,
            precision: self.precision,
            deadline_us: self.deadline_us,
            max_batch: self.max_batch,
            queue_cap: self.queue_cap,
            listen: self.listen,
            connect: self.connect,
            conn_window: self.conn_window,
            drain_ms: self.drain_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kinds_resolve() {
        for k in DatasetKind::all() {
            let spec = k.spec();
            assert!(spec.n_users > 1000, "{} spec too small", k.name());
        }
    }

    #[test]
    fn quick_is_smaller_than_default() {
        let q = XpConfig::quick();
        let d = XpConfig::default();
        assert!(q.scale > d.scale);
        assert!(q.seeds.len() <= d.seeds.len());
        assert!(q.datasets.len() < d.datasets.len());
    }

    #[test]
    fn game_config_derives_from_scale() {
        let cfg = XpConfig::default();
        let g = cfg.game(7);
        assert_eq!(g.scale, cfg.scale);
        assert_eq!(g.seed, 7);
        assert!(g.planner.mso.eta_p < g.planner.mso.eta_q);
    }

    #[test]
    fn game_config_threads_backend_everywhere() {
        let cfg = XpConfig { backend: Backend::Sparse, ..XpConfig::default() };
        let g = cfg.game(1);
        assert_eq!(g.victim.backend, Backend::Sparse);
        assert_eq!(g.planner.pds.backend, Backend::Sparse);
        assert_eq!(g.opponent_planner.pds.backend, Backend::Sparse);
    }

    fn cli(args: &[&str]) -> Result<(RuntimeConfig, Vec<String>), String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let (builder, rest) = RuntimeConfig::builder().parse_cli(&args)?;
        Ok((builder.build()?, rest))
    }

    #[test]
    fn runtime_cli_parses_and_leaves_rest() {
        let (rt, rest) = cli(&[
            "table3",
            "--threads",
            "3",
            "--backend",
            "sparse",
            "--quick",
            "--retries",
            "2",
            "--journal",
            "j.jsonl",
            "--resume",
            "--metrics-out",
            "m.json",
            "--snapshot-out",
            "victim.snap",
            "--precision",
            "fast32",
            "--deadline-us",
            "500",
            "--max-batch",
            "64",
            "--queue-cap",
            "2048",
        ])
        .unwrap();
        assert_eq!(rt.threads, 3);
        assert_eq!(rt.backend, Backend::Sparse);
        assert_eq!(rt.retries, 2);
        assert!(rt.resume);
        assert_eq!(rt.precision, ScorePrecision::Fast32);
        assert_eq!(rt.deadline_us, 500);
        assert_eq!(rt.max_batch, 64);
        assert_eq!(rt.queue_cap, 2048);
        assert_eq!(rt.snapshot_out.as_deref(), Some(std::path::Path::new("victim.snap")));
        assert_eq!(rt.journal.as_deref(), Some(std::path::Path::new("j.jsonl")));
        assert_eq!(rt.metrics_out.as_deref(), Some(std::path::Path::new("m.json")));
        assert_eq!(rest, vec!["table3".to_string(), "--quick".to_string()]);
    }

    #[test]
    fn runtime_cli_rejects_bad_input() {
        assert!(cli(&["--backend", "dens"]).unwrap_err().contains("--backend"));
        assert!(cli(&["--threads", "x"]).unwrap_err().contains("--threads"));
        assert!(cli(&["--threads"]).unwrap_err().contains("requires a value"));
        assert!(cli(&["--threads", "0"]).unwrap_err().contains("positive"));
        assert!(cli(&["--resume"]).unwrap_err().contains("--journal"));
        assert!(cli(&["--precision", "f128"]).unwrap_err().contains("--precision"));
        assert!(cli(&["--precision"]).unwrap_err().contains("requires a value"));
        assert!(cli(&["--deadline-us", "soon"]).unwrap_err().contains("--deadline-us"));
        assert!(cli(&["--max-batch", "0"]).unwrap_err().contains("--max-batch"));
        assert!(cli(&["--queue-cap", "0"]).unwrap_err().contains("--queue-cap"));
        assert!(cli(&["--queue-cap"]).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn runtime_batcher_knobs_default_to_issue_values() {
        let rt = RuntimeConfig::builder().build().unwrap();
        assert_eq!(rt.deadline_us, 200);
        assert_eq!(rt.max_batch, 1024);
        assert_eq!(rt.queue_cap, 8192);
        let rt =
            RuntimeConfig::builder().deadline_us(50).max_batch(8).queue_cap(32).build().unwrap();
        assert_eq!((rt.deadline_us, rt.max_batch, rt.queue_cap), (50, 8, 32));
    }

    #[test]
    fn runtime_net_knobs_parse_default_and_validate() {
        let rt = RuntimeConfig::builder().build().unwrap();
        assert_eq!(rt.conn_window, 64);
        assert_eq!(rt.drain_ms, 1000);
        assert_eq!(rt.listen, None);
        assert_eq!(rt.connect, None);

        let (rt, rest) =
            cli(&["--listen", "127.0.0.1:0", "--conn-window", "8", "--drain-ms", "250"]).unwrap();
        assert_eq!(rt.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(rt.conn_window, 8);
        assert_eq!(rt.drain_ms, 250);
        assert!(rest.is_empty());

        let (rt, _) = cli(&["--connect", "10.0.0.1:7878"]).unwrap();
        assert_eq!(rt.connect.as_deref(), Some("10.0.0.1:7878"));

        assert!(cli(&["--conn-window", "0"]).unwrap_err().contains("--conn-window"));
        assert!(cli(&["--conn-window", "x"]).unwrap_err().contains("--conn-window"));
        assert!(cli(&["--drain-ms", "soon"]).unwrap_err().contains("--drain-ms"));
        assert!(cli(&["--listen"]).unwrap_err().contains("requires a value"));
        assert!(cli(&["--listen", "a:1", "--connect", "b:2"])
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn runtime_precision_defaults_exact_and_parses() {
        let rt = RuntimeConfig::builder().build().unwrap();
        assert_eq!(rt.precision, ScorePrecision::Exact64);
        let (rt, rest) = cli(&["--precision", "f32", "serve"]).unwrap();
        assert_eq!(rt.precision, ScorePrecision::Fast32);
        assert_eq!(rest, vec!["serve".to_string()]);
    }

    #[test]
    fn runtime_applies_to_xp_config_and_run_options() {
        let rt = RuntimeConfig::builder().threads(2).backend(Backend::Sparse).build().unwrap();
        let mut cfg = XpConfig::quick();
        rt.apply_to(&mut cfg);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.backend, Backend::Sparse);
        let opts = rt.run_options("fig6", false);
        assert_eq!(opts.experiment, "fig6");
        assert_eq!(opts.retries, rt.retries);
        assert!(!opts.resume);
    }
}
