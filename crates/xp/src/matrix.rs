//! The cross-table **attack × defense matrix** (`repro matrix`): every
//! attack in the zoo against every detector pipeline, reported as an
//! HR@10-lift grid.
//!
//! Each grid cell plays the full multiplayer game — attacker commits, the
//! moderator's [`ShadowBanPolicy`] scrubs, the victim retrains — and records
//! the target item's HitRate@10 over the padded ranking pool. Lift is
//! measured against the clean baseline (attack `None` under defense `off`),
//! which the cell builder injects automatically when a subset request leaves
//! it out, so lifts are always well-defined.
//!
//! Cells run through the same journaled, resumable [`crate::runner`] as the
//! paper experiments: a killed `repro matrix --journal j.jsonl` resumed with
//! `--resume` re-emits a byte-identical grid.

use msopds_attacks::Baseline;
use msopds_core::ActionToggles;
use msopds_gameplay::{AttackMethod, ShadowBanPolicy};
use serde::{Deserialize, Serialize};

use crate::config::XpConfig;
use crate::experiments::Variant;
use crate::runner::{Cell, Measurement};

/// The attack axis: clean reference, the heuristic and optimization
/// baselines, the two zoo attacks (Influence, DLAttack), and MSOPDS.
pub fn matrix_attacks() -> Vec<Variant> {
    vec![
        Variant::new("None", AttackMethod::Baseline(Baseline::None)),
        Variant::new("Random", AttackMethod::Baseline(Baseline::Random)),
        Variant::new("Popular", AttackMethod::Baseline(Baseline::Popular)),
        Variant::new("S-attack", AttackMethod::Baseline(Baseline::SAttack)),
        Variant::new("Influence", AttackMethod::Baseline(Baseline::Influence)),
        Variant::new("DLAttack", AttackMethod::Baseline(Baseline::DlAttack)),
        Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::all())),
    ]
}

/// Resolves one attack display name (as printed by [`matrix_attacks`] or any
/// [`Baseline::name`]) to its method.
pub fn attack_by_name(name: &str) -> Option<Variant> {
    if name == "MSOPDS" {
        return Some(Variant::new("MSOPDS", AttackMethod::Msopds(ActionToggles::all())));
    }
    Baseline::all()
        .into_iter()
        .find(|b| b.name() == name)
        .map(|b| Variant::new(b.name(), AttackMethod::Baseline(b)))
}

/// The defense axis: every stock pipeline spec, `"off"` first.
pub fn matrix_defenses() -> Vec<String> {
    ShadowBanPolicy::matrix_specs().iter().map(|s| s.to_string()).collect()
}

/// The clean-reference corner every grid is normalized against.
pub const BASELINE_ATTACK: &str = "None";
/// The undefended defense spec.
pub const BASELINE_DEFENSE: &str = "off";

/// Builds the matrix cells: `attacks × defenses × cfg.seeds` on the first
/// configured dataset, plus the clean baseline corner if the requested subset
/// excludes it. Every defense spec is validated up front so a typo fails the
/// run before any game is played.
pub fn matrix_cells(
    cfg: &XpConfig,
    attacks: &[Variant],
    defenses: &[String],
) -> Result<Vec<Cell>, String> {
    for spec in defenses {
        ShadowBanPolicy::from_spec(spec).map_err(|e| format!("defense {spec:?}: {e}"))?;
    }
    let dataset = *cfg.datasets.first().ok_or("no dataset configured")?;
    let mut pairs: Vec<(Variant, String)> = Vec::new();
    for attack in attacks {
        for defense in defenses {
            pairs.push((attack.clone(), defense.clone()));
        }
    }
    let has_baseline =
        pairs.iter().any(|(a, d)| a.label == BASELINE_ATTACK && d == BASELINE_DEFENSE);
    if !has_baseline {
        let clean = attack_by_name(BASELINE_ATTACK).expect("None is a baseline");
        pairs.push((clean, BASELINE_DEFENSE.to_string()));
    }
    let mut cells = Vec::new();
    for (attack, defense) in pairs {
        for &seed in &cfg.seeds {
            let game = cfg.game(seed);
            cells.push(Cell {
                dataset,
                method: attack.method,
                knob: game.attacker_b as f64,
                game,
                label: attack.label.to_string(),
                defended: false,
                defense: Some(defense.clone()),
            });
        }
    }
    Ok(cells)
}

/// One grid cell of the rendered matrix (seed-averaged).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridCell {
    /// Attack display name.
    pub attack: String,
    /// Defense pipeline spec.
    pub defense: String,
    /// Seed-averaged HitRate@10 of the target item.
    pub hr10: f64,
    /// `hr10 − baseline_hr10` (clean world, no defense).
    pub hr10_lift: f64,
    /// Seed-averaged predicted rating r̄ of the target item.
    pub rbar: f64,
}

/// The emitted `matrix.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixGrid {
    /// Dataset the grid was measured on.
    pub dataset: String,
    /// HR@10 of the clean baseline corner (attack `None`, defense `off`).
    pub baseline_hr10: f64,
    /// Requested attack order (row order of `cells`).
    pub attacks: Vec<String>,
    /// Requested defense order (column order of `cells`).
    pub defenses: Vec<String>,
    /// Row-major `attacks × defenses` grid.
    pub cells: Vec<GridCell>,
}

/// Folds seed-averaged measurements into the row-major grid. Returns an error
/// naming the first missing (attack, defense) pair — a permanently failed
/// cell surfaces here instead of producing a silently sparse grid.
pub fn matrix_grid(
    averaged: &[Measurement],
    attacks: &[Variant],
    defenses: &[String],
) -> Result<MatrixGrid, String> {
    let find = |attack: &str, defense: &str| -> Option<&Measurement> {
        averaged.iter().find(|m| m.method == attack && m.defense == defense)
    };
    let baseline = find(BASELINE_ATTACK, BASELINE_DEFENSE)
        .ok_or_else(|| format!("missing baseline cell {BASELINE_ATTACK}/{BASELINE_DEFENSE}"))?;
    let baseline_hr10 = baseline.hr10;
    let dataset = baseline.dataset.clone();
    let mut cells = Vec::with_capacity(attacks.len() * defenses.len());
    for attack in attacks {
        for defense in defenses {
            let m = find(attack.label, defense)
                .ok_or_else(|| format!("missing matrix cell {}/{}", attack.label, defense))?;
            cells.push(GridCell {
                attack: attack.label.to_string(),
                defense: defense.clone(),
                hr10: m.hr10,
                hr10_lift: m.hr10 - baseline_hr10,
                rbar: m.rbar,
            });
        }
    }
    Ok(MatrixGrid {
        dataset,
        baseline_hr10,
        attacks: attacks.iter().map(|a| a.label.to_string()).collect(),
        defenses: defenses.to_vec(),
        cells,
    })
}

/// Renders the grid as an HR@10-lift table, one attack per row.
pub fn render_grid(grid: &MatrixGrid) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Attack × defense matrix: HR@10 lift over clean ({}, baseline {:.4}) ==",
        grid.dataset, grid.baseline_hr10
    );
    let _ = write!(out, "{:<12}", "attack");
    for d in &grid.defenses {
        let _ = write!(out, " | {d:>12}");
    }
    let _ = writeln!(out);
    for (ai, a) in grid.attacks.iter().enumerate() {
        let _ = write!(out, "{a:<12}");
        for di in 0..grid.defenses.len() {
            let cell = &grid.cells[ai * grid.defenses.len() + di];
            let _ = write!(out, " | {:>+12.4}", cell.hr10_lift);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> XpConfig {
        XpConfig::quick()
    }

    #[test]
    fn attack_axis_covers_the_zoo() {
        let names: Vec<&str> = matrix_attacks().iter().map(|v| v.label).collect();
        assert!(names.len() >= 6);
        for required in ["None", "Influence", "DLAttack", "MSOPDS"] {
            assert!(names.contains(&required), "matrix must include {required}");
        }
    }

    #[test]
    fn defense_axis_covers_off_and_detectors() {
        let specs = matrix_defenses();
        assert!(specs.len() >= 4);
        assert_eq!(specs[0], "off");
        for spec in &specs {
            ShadowBanPolicy::from_spec(spec).unwrap();
        }
    }

    #[test]
    fn full_grid_cell_count() {
        let cfg = quick();
        let cells = matrix_cells(&cfg, &matrix_attacks(), &matrix_defenses()).unwrap();
        assert_eq!(cells.len(), 7 * 5 * cfg.seeds.len());
        assert!(cells.iter().all(|c| c.defense.is_some()));
    }

    #[test]
    fn subset_without_baseline_gets_one_injected() {
        let cfg = quick();
        let attacks: Vec<Variant> =
            ["Random", "Influence"].iter().map(|n| attack_by_name(n).unwrap()).collect();
        let defenses = vec!["off".to_string(), "degree".to_string()];
        let cells = matrix_cells(&cfg, &attacks, &defenses).unwrap();
        // 2×2 product + the injected None/off corner, × seeds.
        assert_eq!(cells.len(), (2 * 2 + 1) * cfg.seeds.len());
        let baselines = cells
            .iter()
            .filter(|c| c.label == "None" && c.defense.as_deref() == Some("off"))
            .count();
        assert_eq!(baselines, cfg.seeds.len());
    }

    #[test]
    fn bad_defense_spec_fails_before_running() {
        let cfg = quick();
        let err = matrix_cells(&cfg, &matrix_attacks(), &["bogus".to_string()]).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn unknown_attack_name_is_none() {
        assert!(attack_by_name("Random").is_some());
        assert!(attack_by_name("DLAttack").is_some());
        assert!(attack_by_name("nope").is_none());
    }

    #[test]
    fn grid_folds_and_renders() {
        let m = |attack: &str, defense: &str, hr10: f64| Measurement {
            dataset: "Ciao".into(),
            method: attack.into(),
            knob: 5.0,
            defense: defense.into(),
            rbar: 3.0,
            hr3: hr10 / 2.0,
            hr10,
            seed: 0,
        };
        let attacks: Vec<Variant> =
            ["None", "Random"].iter().map(|n| attack_by_name(n).unwrap()).collect();
        let defenses = vec!["off".to_string(), "degree".to_string()];
        let rows = vec![
            m("None", "off", 0.10),
            m("None", "degree", 0.10),
            m("Random", "off", 0.45),
            m("Random", "degree", 0.20),
        ];
        let grid = matrix_grid(&rows, &attacks, &defenses).unwrap();
        assert_eq!(grid.cells.len(), 4);
        assert!((grid.baseline_hr10 - 0.10).abs() < 1e-12);
        let random_off = &grid.cells[2];
        assert_eq!(random_off.attack, "Random");
        assert!((random_off.hr10_lift - 0.35).abs() < 1e-12);
        let rendered = render_grid(&grid);
        assert!(rendered.contains("Random"));
        assert!(rendered.contains("degree"));

        // A missing pair is a hard error, not a sparse grid.
        let err = matrix_grid(&rows[..3], &attacks, &defenses).unwrap_err();
        assert!(err.contains("Random"), "{err}");
    }
}
