//! The full write→read handoff: `repro --snapshot-out` territory on the
//! write side, `serve --snapshot` territory on the read side, minus the
//! process boundary — the snapshot still crosses a real file on disk.
//!
//! Asserts the PR's core acceptance criterion: the served top-K lists are
//! bit-identical to the in-process victim's predictions, on both GraphOps
//! backends.

use msopds_recsys::Backend;
use msopds_serve::{ServingModel, Snapshot};
use msopds_xp::{train_clean_victim, write_victim_snapshot, DatasetKind, XpConfig};

fn tiny_cfg(backend: Backend) -> XpConfig {
    XpConfig {
        scale: 24.0,
        seeds: vec![5],
        datasets: vec![DatasetKind::Ciao],
        backend,
        ..XpConfig::quick()
    }
}

#[test]
fn served_top_k_matches_in_process_victim_on_both_backends() {
    for backend in [Backend::Dense, Backend::Sparse] {
        let cfg = tiny_cfg(backend);
        let (data, victim) = train_clean_victim(&cfg);
        let snap = victim.snapshot(&data);

        let dir =
            std::env::temp_dir().join(format!("msopds-handoff-{}-{backend}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.snap");
        snap.save(&path).expect("persist snapshot");

        let served = ServingModel::load(&path).expect("load snapshot into serving model");
        assert_eq!(served.backend(), backend);
        assert_eq!(served.n_users(), data.n_users());
        assert_eq!(served.n_items(), data.n_items());

        // Every user's full ranking is driven by bit-identical scores.
        let users: Vec<usize> = (0..served.n_users()).collect();
        let scores = served.score_batch(&users);
        for u in (0..served.n_users()).step_by(7) {
            for i in 0..served.n_items() {
                assert_eq!(
                    scores.at(u, i).to_bits(),
                    victim.predict(u, i).to_bits(),
                    "{backend}: served score ({u},{i}) != in-process predict"
                );
            }
        }
        // And the top-10 list agrees with a scalar argsort of predict.
        let k = 10.min(served.n_items());
        for u in (0..served.n_users()).step_by(11) {
            let mut expect: Vec<(u32, f64)> =
                (0..served.n_items()).map(|i| (i as u32, victim.predict(u, i))).collect();
            expect.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            for (got, want) in served.top_k(u, k).iter().zip(&expect) {
                assert_eq!(got.item, want.0, "{backend}: top-K order diverged for user {u}");
                assert_eq!(got.score.to_bits(), want.1.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn write_victim_snapshot_stamps_dataset_provenance() {
    let cfg = tiny_cfg(Backend::Dense);
    let dir = std::env::temp_dir().join(format!("msopds-prov-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.snap");
    let written = write_victim_snapshot(&cfg, &path).expect("write snapshot");

    // The snapshot binds to the exact generated world: same spec + seed
    // matches, a different seed's world does not.
    let read = Snapshot::load(&path).expect("read back");
    assert_eq!(read.header, written.header);
    let same = DatasetKind::Ciao.spec().scaled(cfg.scale).generate(5);
    assert!(read.matches_dataset(&same), "fingerprints must match the generating world");
    let other = DatasetKind::Ciao.spec().scaled(cfg.scale).generate(6);
    assert!(!read.matches_dataset(&other), "a different world must invalidate the snapshot");
    std::fs::remove_dir_all(&dir).ok();
}
