//! End-to-end fault tolerance: kill/resume bit-identity, panic containment,
//! and (under `--features fault-injection`) recovery from injected faults.
//!
//! Tests that execute cells or touch the process-global fault plan serialize
//! on [`SERIAL`]; pure functions (averaging) run freely.

use std::path::PathBuf;
use std::sync::Mutex;

use msopds_xp::{
    average_over_seeds, load_journal, run_cells_with, table3_cells, to_json, Cell, Measurement,
    RunOptions, XpConfig,
};
use proptest::prelude::*;

static SERIAL: Mutex<()> = Mutex::new(());

/// Two cheap baseline methods × two seeds on the quick Ciao config: four
/// independent cells, enough for a meaningful resume.
fn tiny() -> (XpConfig, Vec<Cell>) {
    let mut cfg = XpConfig::quick();
    cfg.seeds = vec![11, 22];
    cfg.budgets = vec![2];
    cfg.threads = 2;
    let cells: Vec<Cell> = table3_cells(&cfg)
        .into_iter()
        .filter(|c| c.label == "Random" || c.label == "Popular")
        .collect();
    assert_eq!(cells.len(), 4);
    (cfg, cells)
}

fn tmp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msopds-xp-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn killed_run_resumes_to_bit_identical_aggregates() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (cfg, cells) = tiny();
    let path = tmp_journal("resume");

    // Uninterrupted journaled run: the reference report.
    let opts = RunOptions {
        experiment: "t".into(),
        journal: Some(path.clone()),
        resume: false,
        retries: 0,
    };
    let full = run_cells_with(cells.clone(), &cfg, &opts).unwrap();
    assert_eq!(full.measurements.len(), 4);
    assert!(full.failures.is_empty());
    let reference = to_json(&average_over_seeds(&full.measurements));

    // Simulate a hard kill mid-append: keep the first journal line intact and
    // leave a truncated fragment of the second.
    let text = std::fs::read_to_string(&path).unwrap();
    let first_nl = text.find('\n').unwrap();
    std::fs::write(&path, &text[..first_nl + 30]).unwrap();

    // Resume re-runs everything the truncated journal lost.
    let resumed =
        run_cells_with(cells, &cfg, &RunOptions { resume: true, ..opts.clone() }).unwrap();
    assert_eq!(resumed.resumed, 1, "exactly one cell survived the kill");
    assert_eq!(resumed.executed, 3);
    assert!(resumed.failures.is_empty());
    assert_eq!(
        to_json(&average_over_seeds(&resumed.measurements)),
        reference,
        "resumed aggregates must be bit-identical to the uninterrupted run"
    );

    // The journal now covers all four cells again.
    let entries = load_journal(&path).unwrap();
    let keys: std::collections::BTreeSet<_> = entries.iter().map(|e| e.key.clone()).collect();
    assert_eq!(keys.len(), 4);
    std::fs::remove_file(&path).ok();
}

#[test]
fn panicking_cell_becomes_typed_error_not_a_crash() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (cfg, cells) = tiny();
    // A NaN scale trips the dataset generator's `scale >= 1` assertion — a
    // stand-in for any in-cell assertion failure.
    let broken_cfg = XpConfig { scale: f64::NAN, ..cfg };
    let opts = RunOptions { experiment: "t".into(), journal: None, resume: false, retries: 1 };
    let report = run_cells_with(cells, &broken_cfg, &opts).unwrap();
    assert!(report.measurements.is_empty());
    assert_eq!(report.failures.len(), 4, "every cell fails, none tears the sweep down");
    for f in &report.failures {
        assert_eq!(f.error.attempts, 2, "retry budget must be consumed");
        assert!(!f.error.message.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Journal replay order never changes seed-averaged aggregates, bit for
    /// bit — the invariant resume correctness rests on.
    #[test]
    fn averaging_is_replay_order_invariant(
        rows in proptest::collection::vec(
            (0u8..9, 1u64..50, -10.0..10.0f64, 0.0..1.0f64),
            1..40,
        ),
        perm_seed in 0u64..u64::MAX,
    ) {
        let measurements: Vec<Measurement> = rows
            .iter()
            .map(|&(group, seed, rbar, hr3)| Measurement {
                dataset: format!("d{}", group / 3),
                method: format!("m{}", group % 3),
                knob: 1.0,
                defense: String::new(),
                rbar,
                hr3,
                hr10: hr3 * 1.5,
                seed,
            })
            .collect();
        // Fisher–Yates driven by splitmix64: an arbitrary replay order.
        let mut shuffled = measurements.clone();
        let mut state = perm_seed;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let a = average_over_seeds(&measurements);
        let b = average_over_seeds(&shuffled);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.dataset, &y.dataset);
            prop_assert_eq!(&x.method, &y.method);
            prop_assert_eq!(x.rbar.to_bits(), y.rbar.to_bits());
            prop_assert_eq!(x.hr3.to_bits(), y.hr3.to_bits());
            prop_assert_eq!(x.hr10.to_bits(), y.hr10.to_bits());
        }
    }
}

/// Injected-fault drills: only meaningful when the fault sites are compiled
/// in (`cargo test -p msopds-xp --features fault-injection`).
#[cfg(feature = "fault-injection")]
mod injection {
    use super::*;
    use msopds_faultline::{set_plan, FaultPlan};

    #[test]
    fn injected_cell_panics_are_contained_and_resume_recovers() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (cfg, cells) = tiny();

        // Fault-free reference aggregates.
        set_plan(None);
        let opts = RunOptions { experiment: "t".into(), journal: None, resume: false, retries: 0 };
        let clean = run_cells_with(cells.clone(), &cfg, &opts).unwrap();
        let reference = to_json(&average_over_seeds(&clean.measurements));

        // Panic in roughly half the cells, no retries: failures must be
        // journaled as typed errors while the sweep still completes.
        let path = tmp_journal("inject");
        let plan = FaultPlan::parse("seed=9;xp.cell=panic@0.5").unwrap();
        set_plan(Some(plan));
        let opts = RunOptions { journal: Some(path.clone()), ..opts };
        let faulted = run_cells_with(cells.clone(), &cfg, &opts).unwrap();
        set_plan(None);
        assert!(!faulted.failures.is_empty(), "the deterministic plan must fell at least one cell");
        assert_eq!(faulted.measurements.len() + faulted.failures.len(), 4);

        // Resume with faults cleared: journaled successes replay, failures
        // re-run, aggregates match the fault-free reference bit for bit.
        let resumed = run_cells_with(cells, &cfg, &RunOptions { resume: true, ..opts }).unwrap();
        assert_eq!(resumed.resumed, faulted.measurements.len());
        assert_eq!(resumed.executed, faulted.failures.len());
        assert!(resumed.failures.is_empty());
        assert_eq!(to_json(&average_over_seeds(&resumed.measurements)), reference);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retries_reroll_injected_faults() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (cfg, cells) = tiny();
        // 50% panic rate with a generous retry budget: every cell should get
        // through because each attempt rerolls its fault decision.
        let plan = FaultPlan::parse("seed=9;xp.cell=panic@0.5").unwrap();
        set_plan(Some(plan));
        let opts = RunOptions { experiment: "t".into(), journal: None, resume: false, retries: 6 };
        let report = run_cells_with(cells, &cfg, &opts).unwrap();
        set_plan(None);
        assert!(
            report.failures.is_empty(),
            "6 retries at p=0.5 must recover every cell: {:?}",
            report.failures
        );
        assert_eq!(report.measurements.len(), 4);
    }
}
