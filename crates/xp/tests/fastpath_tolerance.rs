//! Tolerance traces for the opt-in f32 fast path, on realistic golden
//! worlds: the same quick-scale Ciao victim the golden-trace suites train,
//! on both GraphOps backends.
//!
//! The exact path's bit-fidelity is pinned elsewhere (`snapshot_serve.rs`
//! asserts served f64 scores equal in-process `predict` to the bit). This
//! suite pins the *fast* path's contract instead:
//!
//! 1. every f32 score is within `1e-4` of its f64 counterpart, for every
//!    user and item of the golden world;
//! 2. the fast top-K is the exact top-K up to that rounding: the two item
//!    sets may differ only in items whose exact score is within `1e-4` of
//!    the exact k-th score (i.e. genuinely tied at fast-path resolution);
//! 3. enabling the fast path changes nothing about the exact path — the
//!    engine serves both from one model with per-precision cache entries.

use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ServeConfig, ServeEngine, ServingModel};
use msopds_xp::{train_clean_victim, DatasetKind, XpConfig};

/// Fast-path score tolerance (also the bound DESIGN.md §13 documents).
const TOL: f64 = 1e-4;

fn golden_model(backend: Backend) -> ServingModel {
    let cfg = XpConfig {
        scale: 24.0,
        seeds: vec![5],
        datasets: vec![DatasetKind::Ciao],
        backend,
        ..XpConfig::quick()
    };
    let (data, victim) = train_clean_victim(&cfg);
    ServingModel::from_snapshot(&victim.snapshot(&data)).expect("valid snapshot")
}

fn assert_fast_tracks_exact(model: &ServingModel, backend: Backend) {
    let users: Vec<usize> = (0..model.n_users()).collect();
    let m = model.n_items();

    // (1) Per-score tolerance, every user × item.
    let exact = model.score_batch(&users);
    let exact = exact.data();
    let fast = model.score_batch_f32(&users);
    assert_eq!(fast.len(), exact.len());
    let mut max_abs = 0.0f64;
    for (idx, (&e, &f)) in exact.iter().zip(&fast).enumerate() {
        let err = (e - f as f64).abs();
        max_abs = max_abs.max(err);
        assert!(err <= TOL, "{backend}: score {} drifted {err:.2e} (exact {e}, fast {f})", idx);
    }
    // The worlds are non-degenerate: the fast path really does round.
    assert!(max_abs > 0.0, "{backend}: f32 path produced bit-identical scores — suspicious");

    // (2) Top-K set equality modulo TOL-ties at the boundary.
    let k = 10.min(m);
    let exact_lists = model.top_k_batch_with(&users, k, ScorePrecision::Exact64);
    let fast_lists = model.top_k_batch_with(&users, k, ScorePrecision::Fast32);
    for (u, (erow, frow)) in exact_lists.iter().zip(&fast_lists).enumerate() {
        assert_eq!(erow.len(), frow.len());
        let kth = erow.last().expect("k ≥ 1").score;
        let in_exact: Vec<u32> = erow.iter().map(|s| s.item).collect();
        for f in frow {
            if !in_exact.contains(&f.item) {
                // An item the fast path promoted into the list must be a
                // genuine TOL-tie with the exact k-th score.
                let e_score = exact[u * m + f.item as usize];
                assert!(
                    (e_score - kth).abs() <= TOL,
                    "{backend}: fast top-{k} admitted item {} for user {u} whose exact \
                     score {e_score} is {:.2e} from the exact k-th {kth}",
                    f.item,
                    (e_score - kth).abs()
                );
            }
        }
    }
}

#[test]
fn fast32_traces_stay_within_tolerance_on_both_backends() {
    for backend in [Backend::Dense, Backend::Sparse] {
        let model = golden_model(backend);
        assert_fast_tracks_exact(&model, backend);
    }
}

#[test]
fn engine_serves_both_precisions_from_one_model() {
    let model = golden_model(Backend::Dense);
    let users: Vec<usize> = (0..model.n_users().min(32)).collect();
    let exact_direct = model.top_k_batch_with(&users, 10, ScorePrecision::Exact64);

    let mut engine = ServeEngine::new(
        model,
        ServeConfig { top_k: 10, cache_capacity: 64, precision: ScorePrecision::Fast32 },
    );
    // Fast-path batch first, so any cache contamination would poison the
    // exact lookups that follow.
    let _fast = engine.serve_batch(&users);
    let exact_served = engine.serve_batch_with(&users, ScorePrecision::Exact64);
    for (served, direct) in exact_served.iter().zip(&exact_direct) {
        assert_eq!(&**served, direct, "exact path changed after fast-path traffic");
    }
}
