//! Sparse-vs-dense equivalence and determinism for the SpMM kernel family.
//!
//! Property-tested invariants on random CSR matrices (isolated nodes — empty
//! rows/columns — included by construction):
//!
//! 1. forward: `A·X` through the sparse kernel equals the dense matmul;
//! 2. gradient: the tape gradient through `Op::Spmm` matches both the dense
//!    tape gradient and a finite-difference reference (`ndiff`);
//! 3. HVP: exact Hessian-vector products agree between the two paths;
//! 4. determinism: parallel sparse output is bit-identical to sequential at
//!    any lane count.

use std::sync::Mutex;

use msopds_autograd::ndiff;
use msopds_autograd::pool::{self, DEFAULT_COPY_MIN, DEFAULT_ELEMWISE_MIN, DEFAULT_MATMUL_MIN};
use msopds_autograd::{spmm, SparseMatrix, SparseOperand, Tape, Tensor};
use proptest::prelude::*;

/// Serializes tests that reconfigure the process-global pool/thresholds.
static LOCK: Mutex<()> = Mutex::new(());

/// A random sparse matrix as triplets. Density is low enough that several
/// rows and columns stay empty (the isolated-node case of a CSR graph).
fn sparse_triplets(rows: usize, cols: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    let entry = (0..rows, 0..cols, -2.0..2.0f64);
    proptest::collection::vec(entry, 0..=(rows * cols / 4).max(1))
}

/// A symmetric 0/1 adjacency-like matrix from an undirected edge list.
fn symmetric_triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0..n, 0..n), 0..=n).prop_map(|edges| {
        let mut t = Vec::new();
        for (a, b) in edges {
            if a != b {
                t.push((a, b, 1.0));
                t.push((b, a, 1.0));
            }
        }
        t
    })
}

fn dense_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0..2.0f64, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_matches_dense(
        triplets in sparse_triplets(9, 7),
        xv in dense_vec(7 * 3),
    ) {
        let a = SparseMatrix::from_triplets(9, 7, &triplets);
        let x = Tensor::from_vec(xv, &[7, 3]);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn gradient_matches_dense_and_ndiff(
        triplets in sparse_triplets(6, 5),
        xv in dense_vec(5 * 2),
        wv in dense_vec(6 * 2),
    ) {
        let a = SparseMatrix::from_triplets(6, 5, &triplets);
        let op = SparseOperand::new(a.clone());
        let x0 = Tensor::from_vec(xv, &[5, 2]);
        let w = Tensor::from_vec(wv, &[6, 2]);

        // Sparse path.
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = spmm(&op, x).mul(tape.constant(w.clone())).sum();
        let g_sparse = tape.grad(loss, &[x]).remove(0);

        // Dense path: same loss through the dense matmul op.
        let tape_d = Tape::new();
        let xd = tape_d.leaf(x0.clone());
        let ad = tape_d.constant(a.to_dense());
        let loss_d = ad.matmul(xd).mul(tape_d.constant(w.clone())).sum();
        let g_dense = tape_d.grad(loss_d, &[xd]).remove(0);

        prop_assert!(g_sparse.max_abs_diff(&g_dense) < 1e-10);
        let dense = a.to_dense();
        ndiff::assert_grad_close(
            |t| dense.matmul(t).data().iter().zip(w.data()).map(|(y, wi)| y * wi).sum(),
            &x0,
            &g_sparse,
            1e-5,
        );
    }

    #[test]
    fn hvp_matches_dense(
        triplets in symmetric_triplets(8),
        xv in dense_vec(8),
        vv in dense_vec(8),
    ) {
        // L = ‖A·x‖² (Hessian 2AᵀA) through both backends.
        let a = SparseMatrix::from_triplets(8, 8, &triplets);
        let op = SparseOperand::symmetric(a.clone());
        let v = Tensor::from_vec(vv, &[8]);

        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(xv.clone(), &[8]));
        let y = spmm(&op, x);
        let hv_sparse = msopds_autograd::hvp::hvp_exact(&tape, y.mul(y).sum(), x, &v);

        let tape_d = Tape::new();
        let xd = tape_d.leaf(Tensor::from_vec(xv, &[8, 1]));
        let ad = tape_d.constant(a.to_dense());
        let yd = ad.matmul(xd);
        let hv_dense =
            msopds_autograd::hvp::hvp_exact(&tape_d, yd.mul(yd).sum(), xd, &v.reshape(&[8, 1]));

        prop_assert!(hv_sparse.reshape(&[8, 1]).max_abs_diff(&hv_dense) < 1e-10);
    }

    #[test]
    fn parallel_spmm_bit_identical(
        triplets in sparse_triplets(40, 40),
        xv in dense_vec(40 * 3),
    ) {
        let a = SparseMatrix::from_triplets(40, 40, &triplets);
        let x = Tensor::from_vec(xv, &[40, 3]);
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        pool::configure_threads(1);
        let seq = a.spmm(&x);
        pool::set_parallel_thresholds(1, 1, 1);
        let mut parallel = Vec::new();
        for lanes in [2, 4, 7] {
            pool::configure_threads(lanes);
            parallel.push((lanes, a.spmm(&x)));
        }
        pool::set_parallel_thresholds(DEFAULT_ELEMWISE_MIN, DEFAULT_COPY_MIN, DEFAULT_MATMUL_MIN);
        pool::configure_threads(1);
        for (lanes, out) in parallel {
            let bitwise = seq
                .to_vec()
                .iter()
                .zip(out.to_vec())
                .all(|(s, p)| s.to_bits() == p.to_bits());
            prop_assert!(bitwise, "sparse kernel differs at {lanes} lanes");
        }
    }
}

#[test]
fn empty_matrix_multiplies_to_zeros() {
    // All-isolated-nodes graph: no entries at all.
    let a = SparseMatrix::from_triplets(5, 5, &[]);
    let x = Tensor::from_vec((0..10).map(|i| i as f64).collect(), &[5, 2]);
    assert_eq!(a.spmm(&x).to_vec(), vec![0.0; 10]);
}
