//! Property-based tests for the autodiff substrate.
//!
//! The central invariants: analytic gradients equal finite differences on
//! randomized inputs, adjoint pairs (gather/scatter, concat/slice) satisfy the
//! inner-product identity, and CG solves random SPD systems.

use msopds_autograd::ndiff::numeric_grad;
use msopds_autograd::{conjugate_gradient, Tape, Tensor};
use proptest::prelude::*;
use std::sync::Arc;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0..2.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grad_matches_numeric_elementwise(xs in small_vec(6), ys in small_vec(6)) {
        // f = Σ ( x·y + sigmoid(x) − tanh(y) + selu(x·0.5) )
        let f = |x: &Tensor, y: &Tensor| -> (Tape, usize, usize, usize) {
            let tape = Tape::new();
            let (xid, yid, lid);
            {
                let xv = tape.leaf(x.clone());
                let yv = tape.leaf(y.clone());
                let expr = xv.mul(yv)
                    .add(xv.sigmoid())
                    .sub(yv.tanh())
                    .add(xv.scale(0.5).selu())
                    .sum();
                xid = xv.id();
                yid = yv.id();
                lid = expr.id();
            }
            (tape, xid, yid, lid)
        };
        let x0 = Tensor::from_vec(xs, &[6]);
        let y0 = Tensor::from_vec(ys, &[6]);
        let (tape, xid, yid, lid) = f(&x0, &y0);
        let loss = var_of(&tape, lid);
        let g = tape.grad(loss, &[var_of(&tape, xid), var_of(&tape, yid)]);

        let ng_x = numeric_grad(|t| {
            let (tp, _, _, l) = f(t, &y0);
            tp.value(l).item()
        }, &x0, 1e-5);
        let ng_y = numeric_grad(|t| {
            let (tp, _, _, l) = f(&x0, t);
            tp.value(l).item()
        }, &y0, 1e-5);

        for i in 0..6 {
            // SELU's kink at 0 makes finite differences unreliable within ε of 0.
            if (x0.get(i) * 0.5).abs() > 1e-3 {
                prop_assert!((g[0].get(i) - ng_x.get(i)).abs() < 1e-4,
                    "x grad mismatch at {i}: {} vs {}", g[0].get(i), ng_x.get(i));
            }
            prop_assert!((g[1].get(i) - ng_y.get(i)).abs() < 1e-4,
                "y grad mismatch at {i}: {} vs {}", g[1].get(i), ng_y.get(i));
        }
    }

    #[test]
    fn grad_matches_numeric_matrix_pipeline(xs in small_vec(12)) {
        // f = Σ selu( X · W )  for a fixed W, X ∈ R^{3×4}
        let w0 = Tensor::from_vec((0..8).map(|i| 0.1 * i as f64 - 0.3).collect(), &[4, 2]);
        let f = |x: &Tensor| -> f64 {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.constant(w0.clone());
            xv.matmul(wv).selu().sum().item()
        };
        let x0 = Tensor::from_vec(xs, &[3, 4]);
        let tape = Tape::new();
        let xv = tape.leaf(x0.clone());
        let wv = tape.constant(w0.clone());
        let loss = xv.matmul(wv).selu().sum();
        let g = tape.grad(loss, &[xv]).remove(0);
        let ng = numeric_grad(f, &x0, 1e-5);
        prop_assert!(g.max_abs_diff(&ng) < 1e-3,
            "max diff {}", g.max_abs_diff(&ng));
    }

    #[test]
    fn gather_scatter_adjoint_identity(
        xs in small_vec(8),
        ys in small_vec(3),
        idx in proptest::collection::vec(0usize..8, 3),
    ) {
        // ⟨gather(x, idx), y⟩ = ⟨x, scatter(y, idx)⟩
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(xs, &[8]));
        let y = tape.leaf(Tensor::from_vec(ys, &[3]));
        let idx = Arc::new(idx);
        let lhs = x.gather_elems(Arc::clone(&idx)).mul(y).sum().item();
        let rhs = y.scatter_add_elems(idx, 8).mul(x).sum().item();
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn concat_slice_inverse(a in small_vec(6), b in small_vec(4)) {
        let tape = Tape::new();
        let av = tape.leaf(Tensor::from_vec(a.clone(), &[2, 3]));
        let bv = tape.leaf(Tensor::from_vec(b.clone(), &[2, 2]));
        let c = av.concat_cols(bv);
        prop_assert_eq!(c.slice_cols(0, 3).value().to_vec(), a);
        prop_assert_eq!(c.slice_cols(3, 5).value().to_vec(), b);
    }

    #[test]
    fn cg_recovers_direct_solution(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 6;
        let mm: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = (0..n).map(|k| mm[k][i] * mm[k][j]).sum::<f64>()
                    + if i == j { 0.5 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sol = conjugate_gradient(
            |v| a.iter().map(|row| row.iter().zip(v).map(|(x, y)| x * y).sum()).collect(),
            &b, 100, 1e-12, 0.0,
        );
        let ax: Vec<f64> = a
            .iter()
            .map(|row| row.iter().zip(&sol.x).map(|(x, y)| x * y).sum())
            .collect();
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-6, "residual at {i}");
        }
    }

    #[test]
    fn second_order_matches_numeric_hessian_diag(xs in small_vec(4)) {
        // L = Σ exp(x)·x; d²L/dx² = exp(x)(x + 2) elementwise-diagonal.
        let x0 = Tensor::from_vec(xs, &[4]);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = x.exp().mul(x).sum();
        let g = tape.grad_vars(loss, &[x])[0];
        let gsum = g.sum();
        let hdiag_rowsum = tape.grad(gsum, &[x]).remove(0);
        // Since the Hessian is diagonal here, grad of Σgrad equals the diagonal.
        for i in 0..4 {
            let expect = x0.get(i).exp() * (x0.get(i) + 2.0);
            prop_assert!((hdiag_rowsum.get(i) - expect).abs() < 1e-8);
        }
    }
}

fn var_of<'t>(tape: &'t Tape, id: usize) -> msopds_autograd::Var<'t> {
    tape.var(id)
}
