//! Bit-exactness of the parallel kernels against their sequential forms.
//!
//! The pool's determinism contract (see `msopds_autograd::pool`): every
//! output element is computed by exactly one chunk with the same inner loop
//! order as the sequential kernel, so results are *bit-identical* for any
//! thread count. These tests force the parallel code paths on small tensors
//! (thresholds dropped to 1, 4 lanes) and compare against a sequential run
//! bit for bit, across randomized shapes and values.

use std::sync::Mutex;

use msopds_autograd::pool::{self, DEFAULT_COPY_MIN, DEFAULT_ELEMWISE_MIN, DEFAULT_MATMUL_MIN};
use msopds_autograd::{Tape, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Serializes tests that reconfigure the process-global pool/thresholds.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` sequentially (1 lane), then with every kernel forced parallel
/// (4 lanes, thresholds 1), restoring defaults afterwards.
fn seq_then_par<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::configure_threads(1);
    let seq = f();
    pool::set_parallel_thresholds(1, 1, 1);
    pool::configure_threads(4);
    let par = f();
    pool::set_parallel_thresholds(DEFAULT_ELEMWISE_MIN, DEFAULT_COPY_MIN, DEFAULT_MATMUL_MIN);
    pool::configure_threads(1);
    (seq, par)
}

fn rand_tensor(rng: &mut rand::rngs::StdRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Tensor::from_vec(data, shape)
}

fn assert_bits_eq(seq: &[f64], par: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(seq.len(), par.len());
    for (i, (a, b)) in seq.iter().zip(par).enumerate() {
        prop_assert!(a.to_bits() == b.to_bits(), "bit mismatch at {}: {} vs {}", i, a, b);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bits_match(seed in 0u64..1000, m in 1usize..24, k in 1usize..24, n in 1usize..24) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[k, n]);
        let (s, p) = seq_then_par(|| a.matmul(&b).to_vec());
        assert_bits_eq(&s, &p)?;
    }

    #[test]
    fn transpose_bits_match(seed in 0u64..1000, m in 1usize..150, n in 1usize..150) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, &[m, n]);
        let (s, p) = seq_then_par(|| a.transpose().to_vec());
        assert_bits_eq(&s, &p)?;
    }

    #[test]
    fn elementwise_bits_match(seed in 0u64..1000, len in 1usize..4000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, &[len]);
        let b = rand_tensor(&mut rng, &[len]);
        let (s, p) = seq_then_par(|| {
            let mapped = a.map(|x| (x * 1.7).tanh() + 0.3);
            mapped.zip(&b, |x, y| x * y + x / (y.abs() + 1.0)).to_vec()
        });
        assert_bits_eq(&s, &p)?;
    }

    #[test]
    fn structural_kernels_bits_match(seed in 0u64..1000, m in 1usize..40, n in 1usize..40) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, &[m, n]);
        let b = rand_tensor(&mut rng, &[m, n]);
        let v = rand_tensor(&mut rng, &[m]);
        let idx: Vec<usize> = (0..2 * m).map(|_| rng.gen_range(0..m)).collect();
        let (s, p) = seq_then_par(|| {
            let mut out = a.sum_rows().to_vec();
            out.extend(a.sum_cols().to_vec());
            out.extend(v.broadcast_cols(n).to_vec());
            out.extend(v.broadcast_rows(7).to_vec());
            out.extend(a.gather_rows(&idx).to_vec());
            out.extend(a.concat_cols(&b).to_vec());
            out.extend(a.slice_cols(n / 3, n).to_vec());
            out.extend(a.pad_cols(2, n + 5).to_vec());
            out
        });
        assert_bits_eq(&s, &p)?;
    }

    #[test]
    fn backward_pass_bits_match(seed in 0u64..1000, m in 2usize..16, k in 2usize..16, n in 2usize..16) {
        // A small training-shaped graph: affine → sigmoid → gather → sum,
        // differentiated w.r.t. both weight matrices. Exercises the matmul,
        // transpose, broadcast, gather/scatter, and elementwise VJPs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = rand_tensor(&mut rng, &[m, k]);
        let w0 = rand_tensor(&mut rng, &[k, n]);
        let b0 = rand_tensor(&mut rng, &[n]);
        let rows = Arc::new((0..m).map(|_| rng.gen_range(0..m)).collect::<Vec<usize>>());
        let (s, p) = seq_then_par(|| {
            let tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let w = tape.leaf(w0.clone());
            let b = tape.leaf(b0.clone());
            let h = x.matmul(w).add(b.broadcast_rows(m)).sigmoid();
            let loss = h.gather_rows(Arc::clone(&rows)).square().sum();
            let grads = tape.grad(loss, &[x, w, b]);
            let mut out = grads[0].to_vec();
            out.extend(grads[1].to_vec());
            out.extend(grads[2].to_vec());
            out
        });
        assert_bits_eq(&s, &p)?;
    }
}

#[test]
fn tape_reset_recycles_buffers() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::configure_threads(1);
    pool::clear_buffer_pool();
    let run = || {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[32, 32]));
        let y = tape.leaf(Tensor::ones(&[32, 32]));
        let loss = x.matmul(y).sigmoid().sum();
        let _ = tape.grad(loss, &[x, y]);
    };
    run(); // tape dropped → uniquely-owned node values go to the pool
    let (bufs, elems) = pool::buffer_pool_stats();
    assert!(bufs > 0, "drop path should have recycled tape buffers");
    assert!(elems > 0);
    run(); // second run draws from the pool; pool must not grow unboundedly
    let (bufs2, _) = pool::buffer_pool_stats();
    assert!(bufs2 <= bufs + 4, "steady-state reuse expected: {bufs} then {bufs2} held buffers");
    pool::clear_buffer_pool();
}
