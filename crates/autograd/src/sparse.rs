//! Sparse CSR matrices and the `Spmm` tape operation.
//!
//! Dense graph convolutions materialize O(n²) adjacency tensors, which caps
//! the reproduction at toy graph sizes. This module stores graph operators in
//! compressed sparse row form and multiplies them against dense tensors in
//! O(nnz·d): the SpMM kernel family behind the `GraphOps` backend API of
//! `msopds-recsys`.
//!
//! ## Differentiation
//!
//! A [`SparseMatrix`] is a *constant* of the computation — gradients flow
//! through the dense operand only. The tape op records `Y = A·X` (or `Aᵀ·X`)
//! and its VJP is another `Spmm` node, `∂L/∂X = Aᵀ·(∂L/∂Y)`, so gradients of
//! gradients — and therefore the exact Hessian-vector products of
//! Algorithm 1 — work through sparse products unchanged. To avoid
//! re-transposing on every backward pass, ops carry a [`SparseOperand`]
//! holding both `A` and `Aᵀ` (a single shared buffer when `A` is symmetric,
//! the common case for undirected adjacency).
//!
//! ## Determinism
//!
//! The kernel is parallelized over row blocks on the worker pool
//! (`crate::pool`): every output row is produced by exactly one chunk, and
//! each row accumulates its neighbors sequentially in CSR order. Results are
//! therefore bit-identical at any lane count, matching the guarantee of the
//! dense kernels.

use std::sync::Arc;

use crate::pool::{self, SendMutPtr};
use crate::tape::Op;
use crate::tensor::Tensor;
use crate::var::Var;

/// An immutable CSR sparse matrix with `f64` values.
///
/// Rows hold their column indices in ascending order with no duplicates —
/// the canonical form produced by [`SparseMatrix::from_triplets`] (which
/// sorts and sums duplicates).
#[derive(Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries; length `rows+1`.
    row_ptr: Vec<usize>,
    /// Column index per stored entry.
    col_idx: Vec<u32>,
    /// Value per stored entry.
    vals: Vec<f64>,
}

impl std::fmt::Debug for SparseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz())
            .finish()
    }
}

impl SparseMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong `row_ptr` length,
    /// non-monotone offsets, column out of range, or unsorted/duplicate
    /// columns within a row).
    pub fn from_csr(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 offsets");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr must end at nnz");
        assert_eq!(col_idx.len(), vals.len(), "one value per stored entry");
        for i in 0..rows {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be non-decreasing");
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for pair in row.windows(2) {
                assert!(pair[0] < pair[1], "row {i} columns must be strictly ascending");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "row {i} column {last} out of range");
            }
        }
        Self { rows, cols, row_ptr, col_idx, vals }
    }

    /// Builds from `(row, col, value)` triplets in any order; duplicate
    /// coordinates are summed, exact zeros are kept (a stored zero still
    /// defines structure).
    ///
    /// # Panics
    /// Panics if a coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &entries {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
        }
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        for &(r, c, v) in &entries {
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr[r + 1] > row_ptr[r]) {
                if last_c as usize == c {
                    *vals.last_mut().unwrap() += v;
                    continue;
                }
            }
            // Entries land in row order, so all rows after the previous
            // entry's row and up to `r` close at the current length.
            col_idx.push(c as u32);
            vals.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Close empty rows: propagate the running offsets forward.
        for i in 1..=rows {
            row_ptr[i] = row_ptr[i].max(row_ptr[i - 1]);
        }
        Self { rows, cols, row_ptr, col_idx, vals }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Resident bytes of the CSR arrays (the sparse side of the memory-model
    /// comparison in `BENCH_sparse.json`).
    pub fn resident_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// The transpose as a new CSR matrix (counting sort over columns).
    pub fn transpose(&self) -> SparseMatrix {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = r as u32;
                vals[slot] = self.vals[k];
            }
        }
        SparseMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, vals }
    }

    /// True when the matrix equals its transpose (structure and values).
    pub fn is_symmetric(&self) -> bool {
        self.rows == self.cols && *self == self.transpose()
    }

    /// Densifies into a `[rows, cols]` tensor (tests and small baselines).
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0; self.rows * self.cols];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                data[r * self.cols + self.col_idx[k] as usize] = self.vals[k];
            }
        }
        Tensor::from_vec(data, &[self.rows, self.cols])
    }

    /// Sparse × dense product `A·X`: `[m, n]·[n, d] → [m, d]`, or the SpMV
    /// case `[m, n]·[n] → [m]` for a rank-1 operand.
    ///
    /// Row-partitioned across the kernel pool when `nnz·d` crosses the
    /// matmul threshold. Each output row is accumulated sequentially in CSR
    /// order by exactly one chunk, so results are bit-identical at any lane
    /// count.
    ///
    /// # Panics
    /// Panics when the operand's leading dimension disagrees with `cols`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        let (m, n) = (self.rows, self.cols);
        let (xr, d) = if x.rank() == 2 { (x.rows(), x.cols()) } else { (x.numel(), 1) };
        assert_eq!(n, xr, "spmm inner dims: {m}x{n} · {:?}", x.shape());
        let mut out = pool::take_zeroed(m * d);
        self.spmm_into(x.data(), d, &mut out);
        if x.rank() == 2 {
            Tensor::from_owned(out, [m, d], 2)
        } else {
            Tensor::from_owned(out, [m, 1], 1)
        }
    }

    /// The `spmm` kernel writing into a caller-owned `[rows, d]` buffer —
    /// the building block [`SparseShards`] uses to assemble one output from
    /// row-band shards without a gather copy. Accumulation per output row is
    /// sequential in CSR order, identical to [`SparseMatrix::spmm`].
    pub(crate) fn spmm_into(&self, xd: &[f64], d: usize, out: &mut [f64]) {
        let m = self.rows;
        debug_assert_eq!(out.len(), m * d);
        let row_band = |rows_out: &mut [f64], i0: usize| {
            for (ri, orow) in rows_out.chunks_mut(d).enumerate() {
                let i = i0 + ri;
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    let j = self.col_idx[k] as usize;
                    let v = self.vals[k];
                    let xrow = &xd[j * d..(j + 1) * d];
                    for (o, &xv) in orow.iter_mut().zip(xrow.iter()) {
                        *o += v * xv;
                    }
                }
            }
        };
        if !pool::should_parallelize(self.nnz() * d, pool::matmul_min()) {
            row_band(out, 0);
        } else {
            // Same chunking policy as the dense matmul: ~4 chunks per lane
            // keeps work stealing effective under skewed row lengths.
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |r0, r1| {
                // Safety: row bands are disjoint and within `out`.
                let rows = unsafe { ptr.slice(r0 * d, r1 * d) };
                row_band(rows, r0);
            });
        }
    }

    /// Splits into `k` contiguous row-range shards (the last shard absorbs
    /// the remainder rows). Each shard is a standalone CSR matrix over the
    /// full column space, so `shard.spmm(x)` produces exactly the rows
    /// `starts[s]..starts[s+1]` of `self.spmm(x)`.
    fn split_rows(&self, k: usize) -> SparseShards {
        let k = k.clamp(1, self.rows.max(1));
        let per = self.rows.div_ceil(k).max(1);
        let mut starts = vec![0usize];
        let mut shards = Vec::new();
        let mut r0 = 0;
        while r0 < self.rows {
            let r1 = (r0 + per).min(self.rows);
            let base = self.row_ptr[r0];
            let row_ptr: Vec<usize> =
                self.row_ptr[r0..=r1].iter().map(|&p| p - base).collect();
            let span = self.row_ptr[r0]..self.row_ptr[r1];
            shards.push(SparseMatrix {
                rows: r1 - r0,
                cols: self.cols,
                row_ptr,
                col_idx: self.col_idx[span.clone()].to_vec(),
                vals: self.vals[span].to_vec(),
            });
            starts.push(r1);
            r0 = r1;
        }
        if shards.is_empty() {
            // Degenerate zero-row matrix: keep one empty shard so the
            // invariant `starts.len() == shards.len() + 1` holds.
            shards.push(self.clone());
            starts = vec![0, 0];
        }
        SparseShards { rows: self.rows, cols: self.cols, starts, shards }
    }
}

/// A CSR matrix split into contiguous row-range shards.
///
/// This is the million-user layout: each shard owns an independent CSR
/// band (its `row_ptr` rebased to the band), so shards can be built,
/// stored, and multiplied separately — across threads today, across
/// processes or machines once the serving tier is distributed. Because
/// [`SparseMatrix::spmm`] accumulates every output row sequentially in CSR
/// order and each row lives in exactly one shard, a sharded product is
/// **bit-identical** to the unsharded one at any shard count.
#[derive(Clone, Debug)]
pub struct SparseShards {
    rows: usize,
    cols: usize,
    /// Row-range boundaries; shard `s` covers rows `starts[s]..starts[s+1]`.
    starts: Vec<usize>,
    shards: Vec<SparseMatrix>,
}

impl SparseShards {
    /// Splits `m` into `k` contiguous row bands (clamped to `1..=rows`).
    pub fn split(m: &SparseMatrix, k: usize) -> Self {
        m.split_rows(k)
    }

    /// Number of rows of the full matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the full matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total stored entries across shards.
    pub fn nnz(&self) -> usize {
        self.shards.iter().map(SparseMatrix::nnz).sum()
    }

    /// Resident bytes across all shard CSR arrays.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(SparseMatrix::resident_bytes).sum::<usize>()
            + self.starts.len() * std::mem::size_of::<usize>()
    }

    /// The shards with their row ranges, for per-shard inspection.
    pub fn bands(&self) -> impl Iterator<Item = (std::ops::Range<usize>, &SparseMatrix)> {
        self.shards.iter().enumerate().map(|(s, m)| (self.starts[s]..self.starts[s + 1], m))
    }

    /// Reassembles the full matrix (tests and the transpose fallback).
    pub fn to_matrix(&self) -> SparseMatrix {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for shard in &self.shards {
            let base = *row_ptr.last().unwrap();
            row_ptr.extend(shard.row_ptr[1..].iter().map(|&p| p + base));
            col_idx.extend_from_slice(&shard.col_idx);
            vals.extend_from_slice(&shard.vals);
        }
        SparseMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, vals }
    }

    /// Sharded sparse × dense product: every shard writes its own row band
    /// of one shared output buffer. Bit-identical to
    /// [`SparseMatrix::spmm`] on the unsharded matrix at any shard count.
    ///
    /// # Panics
    /// Panics when the operand's leading dimension disagrees with `cols`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        let (m, n) = (self.rows, self.cols);
        let (xr, d) = if x.rank() == 2 { (x.rows(), x.cols()) } else { (x.numel(), 1) };
        assert_eq!(n, xr, "sharded spmm inner dims: {m}x{n} · {:?}", x.shape());
        let xd = x.data();
        let mut out = pool::take_zeroed(m * d);
        for (band, shard) in self.bands() {
            shard.spmm_into(xd, d, &mut out[band.start * d..band.end * d]);
        }
        if x.rank() == 2 {
            Tensor::from_owned(out, [m, d], 2)
        } else {
            Tensor::from_owned(out, [m, 1], 1)
        }
    }
}

/// A CSR sparse matrix downcast to `f32` values: the fused lane kernel behind
/// the opt-in fast path ([`SparseMatrix::to_f32`]).
///
/// This type is *not* a tape citizen — it exists for precision-tolerant
/// inference-style products (serving, screening sweeps) where a documented
/// ≤1e-4-relative deviation buys halved memory traffic. The exact planner
/// path never touches it.
#[derive(Clone)]
pub struct SparseMatrixF32 {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl std::fmt::Debug for SparseMatrixF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMatrixF32")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.vals.len())
            .finish()
    }
}

impl SparseMatrix {
    /// Downcasts values to `f32` for the fast-path kernels. Structure is
    /// shared logic-for-logic with the `f64` matrix, so row iteration order —
    /// and thus accumulation order — is identical.
    pub fn to_f32(&self) -> SparseMatrixF32 {
        SparseMatrixF32 {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(|&v| v as f32).collect(),
        }
    }
}

impl SparseMatrixF32 {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Resident bytes of the CSR arrays (half the value payload of the `f64`
    /// matrix).
    pub fn resident_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f32>()
    }

    /// Fused sparse × dense product `A·X` over row-major `x` with `d` columns
    /// (`x.len() == cols·d`), returning a row-major `[rows, d]` buffer.
    ///
    /// The inner loop is a lane-unrolled axpy: for each stored entry the
    /// operand row streams through in contiguous 8-wide blocks, so the
    /// compiler can keep the `val` broadcast and the block in vector
    /// registers. Accumulation per output row follows CSR entry order — the
    /// same association order as [`SparseMatrix::spmm`], only in `f32`.
    ///
    /// # Panics
    /// Panics when `x.len()` is not `cols·d`.
    pub fn spmm(&self, x: &[f32], d: usize) -> Vec<f32> {
        assert_eq!(x.len(), self.cols * d, "spmm operand must be [cols, {d}] row-major");
        let mut out = vec![0.0f32; self.rows * d];
        for i in 0..self.rows {
            let orow = &mut out[i * d..(i + 1) * d];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                let v = self.vals[k];
                let xrow = &x[j * d..(j + 1) * d];
                // 8-wide blocks with a scalar tail: fixed-size chunks let the
                // autovectorizer emit one fma per lane without a remainder
                // check inside the hot loop.
                let mut oc = orow.chunks_exact_mut(8);
                let mut xc = xrow.chunks_exact(8);
                for (ob, xb) in (&mut oc).zip(&mut xc) {
                    for l in 0..8 {
                        ob[l] += v * xb[l];
                    }
                }
                for (o, &xv) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
                    *o += v * xv;
                }
            }
        }
        out
    }
}

/// One side (forward or backward orientation) of a [`SparseOperand`]: a
/// whole CSR matrix or its row-range-sharded form. Both multiply a dense
/// operand bit-identically; `Sharded` is the layout the million-user worlds
/// use so adjacency never has to live in one contiguous allocation.
#[derive(Clone, Debug)]
pub enum SparseSide {
    /// A single contiguous CSR matrix.
    Whole(Arc<SparseMatrix>),
    /// Contiguous row-range shards of the same matrix.
    Sharded(Arc<SparseShards>),
}

impl SparseSide {
    /// Sparse × dense product with this side's layout. Sharded and whole
    /// layouts produce bit-identical results (see [`SparseShards::spmm`]).
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        match self {
            SparseSide::Whole(m) => m.spmm(x),
            SparseSide::Sharded(s) => s.spmm(x),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            SparseSide::Whole(m) => m.rows(),
            SparseSide::Sharded(s) => s.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            SparseSide::Whole(m) => m.cols(),
            SparseSide::Sharded(s) => s.cols(),
        }
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        match self {
            SparseSide::Whole(m) => m.nnz(),
            SparseSide::Sharded(s) => s.nnz(),
        }
    }

    /// Resident bytes of the CSR arrays.
    pub fn resident_bytes(&self) -> usize {
        match self {
            SparseSide::Whole(m) => m.resident_bytes(),
            SparseSide::Sharded(s) => s.resident_bytes(),
        }
    }
}

/// A sparse matrix paired with its transpose, ready for tape recording.
///
/// The pairing makes the backward rule allocation-free: the VJP of
/// `Spmm(A, x)` is `Spmm(Aᵀ, g)`, recorded by flipping a flag on the same
/// shared operand — no transposition at backward time, no `Arc` cycles, and
/// double backward (HVP) flips the flag back. Either side may be stored
/// whole or as row-range shards ([`SparseSide`]); the symmetric sharded
/// constructor shares one sharded buffer for both orientations.
#[derive(Debug)]
pub struct SparseOperand {
    fwd: SparseSide,
    bwd: SparseSide,
}

impl SparseOperand {
    /// Pairs `m` with its transpose.
    pub fn new(m: SparseMatrix) -> Arc<Self> {
        let bwd = SparseSide::Whole(Arc::new(m.transpose()));
        Arc::new(Self { fwd: SparseSide::Whole(Arc::new(m)), bwd })
    }

    /// Pairs a symmetric `m` with itself, sharing one buffer.
    ///
    /// # Panics
    /// Debug-panics when `m` is not actually symmetric.
    pub fn symmetric(m: SparseMatrix) -> Arc<Self> {
        debug_assert!(m.is_symmetric(), "SparseOperand::symmetric needs A = Aᵀ");
        let fwd = SparseSide::Whole(Arc::new(m));
        Arc::new(Self { fwd: fwd.clone(), bwd: fwd })
    }

    /// Pairs a symmetric `m` with itself in `k` row-range shards, sharing
    /// one sharded buffer for both orientations (valid because `A = Aᵀ`:
    /// the row bands of `Aᵀ` are the same bands of `A`).
    ///
    /// # Panics
    /// Debug-panics when `m` is not actually symmetric.
    pub fn symmetric_sharded(m: SparseMatrix, k: usize) -> Arc<Self> {
        debug_assert!(m.is_symmetric(), "SparseOperand::symmetric_sharded needs A = Aᵀ");
        let fwd = SparseSide::Sharded(Arc::new(SparseShards::split(&m, k)));
        Arc::new(Self { fwd: fwd.clone(), bwd: fwd })
    }

    /// The forward-direction matrix, when stored whole.
    ///
    /// # Panics
    /// Panics for a sharded operand — callers that need the contiguous
    /// matrix (e.g. the f32 fast-adjacency downcast) must build from the
    /// non-sharded cache path; see [`SparseOperand::forward`] for the
    /// layout-agnostic view.
    pub fn matrix(&self) -> &SparseMatrix {
        match &self.fwd {
            SparseSide::Whole(m) => m,
            SparseSide::Sharded(_) => {
                panic!("SparseOperand::matrix on a sharded operand; use forward()")
            }
        }
    }

    /// The forward side in whichever layout it is stored.
    pub fn forward(&self) -> &SparseSide {
        &self.fwd
    }

    /// The side applied for a given orientation of the op.
    pub(crate) fn side(&self, transposed: bool) -> &SparseSide {
        if transposed {
            &self.bwd
        } else {
            &self.fwd
        }
    }
}

/// Records `A·x` on `x`'s tape: the differentiable SpMM/SpMV entry point.
///
/// `A` is constant; the gradient w.r.t. `x` is `Aᵀ·g`, itself a tape op, so
/// higher-order derivatives through the product are exact.
pub fn spmm<'t>(a: &Arc<SparseOperand>, x: Var<'t>) -> Var<'t> {
    spmm_oriented(a, false, x)
}

/// `spmm` with an explicit orientation (used by the backward pass).
pub(crate) fn spmm_oriented<'t>(a: &Arc<SparseOperand>, transposed: bool, x: Var<'t>) -> Var<'t> {
    x.tape().apply(Op::Spmm(Arc::clone(a), transposed, x.id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndiff;
    use crate::tape::Tape;

    /// A fixed 4x3 matrix with an empty row (row 2) and a duplicate triplet.
    fn sample() -> SparseMatrix {
        SparseMatrix::from_triplets(
            4,
            3,
            &[(0, 1, 2.0), (0, 0, 1.0), (1, 2, 3.0), (3, 0, -1.0), (3, 0, 0.5), (3, 2, 4.0)],
        )
    }

    #[test]
    fn triplets_sort_and_sum_duplicates() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        let d = a.to_dense();
        assert_eq!(d.at(0, 0), 1.0);
        assert_eq!(d.at(0, 1), 2.0);
        assert_eq!(d.at(1, 2), 3.0);
        assert_eq!(d.at(2, 0), 0.0); // empty row
        assert_eq!(d.at(3, 0), -0.5); // summed duplicate
        assert_eq!(d.at(3, 2), 4.0);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.to_dense().to_vec(), a.to_dense().transpose().to_vec());
        // Round trip.
        assert_eq!(t.transpose().to_dense().to_vec(), a.to_dense().to_vec());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = sample();
        let x = Tensor::from_vec((0..6).map(|i| i as f64 * 0.5 - 1.0).collect(), &[3, 2]);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        assert_eq!(sparse.shape(), &[4, 2]);
        assert_eq!(sparse.to_vec(), dense.to_vec());
    }

    #[test]
    fn spmv_rank1_roundtrip() {
        let a = sample();
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        let y = a.spmm(&x);
        assert_eq!(y.shape(), &[4]);
        assert_eq!(y.to_vec(), vec![1.0 - 4.0, 9.0, 0.0, -0.5 + 12.0]);
    }

    #[test]
    fn from_csr_validates() {
        let a = SparseMatrix::from_csr(2, 2, vec![0, 1, 2], vec![1, 0], vec![5.0, 7.0]);
        assert_eq!(a.to_dense().to_vec(), vec![0.0, 5.0, 7.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_csr_rejects_unsorted_rows() {
        let _ = SparseMatrix::from_csr(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn symmetric_operand_shares_buffers() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let op = SparseOperand::symmetric(a);
        match (&op.fwd, &op.bwd) {
            (SparseSide::Whole(f), SparseSide::Whole(b)) => assert!(Arc::ptr_eq(f, b)),
            other => panic!("expected whole sides, got {other:?}"),
        }
    }

    #[test]
    fn sharded_spmm_is_bit_identical_at_any_shard_count() {
        // A skewed matrix: some dense rows, some empty, non-uniform values.
        let mut trips = Vec::new();
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for r in 0..37 {
            let deg = (next() % 9) as usize;
            for _ in 0..deg {
                let c = (next() % 23) as usize;
                trips.push((r, c, (next() % 1000) as f64 / 313.0 - 1.5));
            }
        }
        let a = SparseMatrix::from_triplets(37, 23, &trips);
        let x = Tensor::from_vec((0..23 * 5).map(|i| (i as f64 * 0.71).cos()).collect(), &[23, 5]);
        let whole = a.spmm(&x);
        for k in [1, 2, 3, 7, 36, 37, 100] {
            let shards = SparseShards::split(&a, k);
            assert_eq!(shards.nnz(), a.nnz());
            assert_eq!(shards.to_matrix(), a, "split/reassemble round trip at k={k}");
            let sharded = shards.spmm(&x);
            assert_eq!(sharded.shape(), whole.shape());
            for (i, (&s, &w)) in sharded.data().iter().zip(whole.data().iter()).enumerate() {
                assert_eq!(s.to_bits(), w.to_bits(), "k={k} elem {i}: {s} != {w}");
            }
        }
    }

    #[test]
    fn sharded_symmetric_operand_drives_the_tape() {
        // A symmetric 5x5 path graph, sharded 3 ways: tape forward and
        // gradient must match the whole-matrix operand bit for bit.
        let edges: Vec<(usize, usize, f64)> =
            (0..4).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]).collect();
        let a = SparseMatrix::from_triplets(5, 5, &edges);
        let whole_op = SparseOperand::symmetric(a.clone());
        let shard_op = SparseOperand::symmetric_sharded(a, 3);
        assert_eq!(shard_op.forward().nnz(), whole_op.forward().nnz());
        let x0 = Tensor::from_vec((0..10).map(|i| (i as f64 - 4.5) * 0.3).collect(), &[5, 2]);
        let (tape_w, tape_s) = (Tape::new(), Tape::new());
        let (xw, xs) = (tape_w.leaf(x0.clone()), tape_s.leaf(x0));
        let (yw, ys) = (spmm(&whole_op, xw), spmm(&shard_op, xs));
        assert_eq!(yw.value().to_vec(), ys.value().to_vec());
        let gw = tape_w.grad(yw.mul(yw).sum(), &[xw]).remove(0);
        let gs = tape_s.grad(ys.mul(ys).sum(), &[xs]).remove(0);
        for (a, b) in gw.to_vec().iter().zip(gs.to_vec()) {
            assert_eq!(a.to_bits(), b.to_bits(), "sharded gradient drifted");
        }
    }

    #[test]
    fn tape_spmm_forward_and_gradient() {
        let op = SparseOperand::new(sample());
        let x0 = Tensor::from_vec(vec![0.3, -1.1, 0.7, 2.0, -0.2, 0.9], &[3, 2]);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.constant(Tensor::from_vec((1..=8).map(|i| i as f64).collect(), &[4, 2]));
        let loss = spmm(&op, x).mul(w).sum();
        assert_eq!(
            spmm(&op, x).value().to_vec(),
            op.matrix().to_dense().matmul(&x0).to_vec(),
            "tape forward must equal the raw kernel"
        );
        let g = tape.grad(loss, &[x]).remove(0);
        let dense = op.matrix().to_dense();
        let f = |t: &Tensor| {
            dense.matmul(t).to_vec().iter().zip(1..=8).map(|(&y, wi)| y * wi as f64).sum()
        };
        ndiff::assert_grad_close(f, &x0, &g, 1e-6);
    }

    #[test]
    fn tape_spmm_hvp_is_exact() {
        // L = ‖A·x‖² has constant Hessian 2AᵀA: the double-backward through
        // two stacked Spmm nodes must reproduce it exactly.
        let op = SparseOperand::new(sample());
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]));
        let loss = {
            let y = spmm(&op, x);
            y.mul(y).sum()
        };
        let v = Tensor::from_vec(vec![1.0, 2.0, -1.0], &[3]);
        let hv = crate::hvp::hvp_exact(&tape, loss, x, &v);
        let ad = op.matrix().to_dense();
        let expect = ad.transpose().matmul(&ad.matmul(&v.reshape(&[3, 1]))).map(|z| 2.0 * z);
        assert!(hv.reshape(&[3, 1]).max_abs_diff(&expect) < 1e-12, "hvp {:?}", hv.to_vec());
    }

    #[test]
    fn f32_spmm_tracks_f64_within_tolerance() {
        let a = sample();
        let af = a.to_f32();
        assert_eq!(af.nnz(), a.nnz());
        assert!(af.resident_bytes() < a.resident_bytes());
        // d = 10 exercises both the 8-wide block and the scalar tail.
        let d = 10;
        let x64 = Tensor::from_vec((0..3 * d).map(|i| (i as f64 * 0.37).sin()).collect(), &[3, d]);
        let x32: Vec<f32> = x64.data().iter().map(|&v| v as f32).collect();
        let y64 = a.spmm(&x64);
        let y32 = af.spmm(&x32, d);
        assert_eq!(y32.len(), y64.numel());
        for (i, (&f, &e)) in y32.iter().zip(y64.data().iter()).enumerate() {
            assert!((f as f64 - e).abs() < 1e-5, "[{i}] f32 {f} vs f64 {e}");
        }
    }

    #[test]
    fn f32_spmm_handles_d1_and_empty_rows() {
        let a = sample().to_f32();
        let y = a.spmm(&[1.0, -2.0, 3.0], 1);
        assert_eq!(y, vec![-3.0, 9.0, 0.0, 11.5]);
    }

    // Thread-count determinism is exercised in `tests/sparse_backend.rs`,
    // which owns its process and can reconfigure the global pool safely.
}
