//! Sparse CSR matrices and the `Spmm` tape operation.
//!
//! Dense graph convolutions materialize O(n²) adjacency tensors, which caps
//! the reproduction at toy graph sizes. This module stores graph operators in
//! compressed sparse row form and multiplies them against dense tensors in
//! O(nnz·d): the SpMM kernel family behind the `GraphOps` backend API of
//! `msopds-recsys`.
//!
//! ## Differentiation
//!
//! A [`SparseMatrix`] is a *constant* of the computation — gradients flow
//! through the dense operand only. The tape op records `Y = A·X` (or `Aᵀ·X`)
//! and its VJP is another `Spmm` node, `∂L/∂X = Aᵀ·(∂L/∂Y)`, so gradients of
//! gradients — and therefore the exact Hessian-vector products of
//! Algorithm 1 — work through sparse products unchanged. To avoid
//! re-transposing on every backward pass, ops carry a [`SparseOperand`]
//! holding both `A` and `Aᵀ` (a single shared buffer when `A` is symmetric,
//! the common case for undirected adjacency).
//!
//! ## Determinism
//!
//! The kernel is parallelized over row blocks on the worker pool
//! (`crate::pool`): every output row is produced by exactly one chunk, and
//! each row accumulates its neighbors sequentially in CSR order. Results are
//! therefore bit-identical at any lane count, matching the guarantee of the
//! dense kernels.

use std::sync::Arc;

use crate::pool::{self, SendMutPtr};
use crate::tape::Op;
use crate::tensor::Tensor;
use crate::var::Var;

/// An immutable CSR sparse matrix with `f64` values.
///
/// Rows hold their column indices in ascending order with no duplicates —
/// the canonical form produced by [`SparseMatrix::from_triplets`] (which
/// sorts and sums duplicates).
#[derive(Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries; length `rows+1`.
    row_ptr: Vec<usize>,
    /// Column index per stored entry.
    col_idx: Vec<u32>,
    /// Value per stored entry.
    vals: Vec<f64>,
}

impl std::fmt::Debug for SparseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz())
            .finish()
    }
}

impl SparseMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong `row_ptr` length,
    /// non-monotone offsets, column out of range, or unsorted/duplicate
    /// columns within a row).
    pub fn from_csr(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 offsets");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr must end at nnz");
        assert_eq!(col_idx.len(), vals.len(), "one value per stored entry");
        for i in 0..rows {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be non-decreasing");
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for pair in row.windows(2) {
                assert!(pair[0] < pair[1], "row {i} columns must be strictly ascending");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "row {i} column {last} out of range");
            }
        }
        Self { rows, cols, row_ptr, col_idx, vals }
    }

    /// Builds from `(row, col, value)` triplets in any order; duplicate
    /// coordinates are summed, exact zeros are kept (a stored zero still
    /// defines structure).
    ///
    /// # Panics
    /// Panics if a coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &entries {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
        }
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        for &(r, c, v) in &entries {
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr[r + 1] > row_ptr[r]) {
                if last_c as usize == c {
                    *vals.last_mut().unwrap() += v;
                    continue;
                }
            }
            // Entries land in row order, so all rows after the previous
            // entry's row and up to `r` close at the current length.
            col_idx.push(c as u32);
            vals.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Close empty rows: propagate the running offsets forward.
        for i in 1..=rows {
            row_ptr[i] = row_ptr[i].max(row_ptr[i - 1]);
        }
        Self { rows, cols, row_ptr, col_idx, vals }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Resident bytes of the CSR arrays (the sparse side of the memory-model
    /// comparison in `BENCH_sparse.json`).
    pub fn resident_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// The transpose as a new CSR matrix (counting sort over columns).
    pub fn transpose(&self) -> SparseMatrix {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = r as u32;
                vals[slot] = self.vals[k];
            }
        }
        SparseMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, vals }
    }

    /// True when the matrix equals its transpose (structure and values).
    pub fn is_symmetric(&self) -> bool {
        self.rows == self.cols && *self == self.transpose()
    }

    /// Densifies into a `[rows, cols]` tensor (tests and small baselines).
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0; self.rows * self.cols];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                data[r * self.cols + self.col_idx[k] as usize] = self.vals[k];
            }
        }
        Tensor::from_vec(data, &[self.rows, self.cols])
    }

    /// Sparse × dense product `A·X`: `[m, n]·[n, d] → [m, d]`, or the SpMV
    /// case `[m, n]·[n] → [m]` for a rank-1 operand.
    ///
    /// Row-partitioned across the kernel pool when `nnz·d` crosses the
    /// matmul threshold. Each output row is accumulated sequentially in CSR
    /// order by exactly one chunk, so results are bit-identical at any lane
    /// count.
    ///
    /// # Panics
    /// Panics when the operand's leading dimension disagrees with `cols`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        let (m, n) = (self.rows, self.cols);
        let (xr, d) = if x.rank() == 2 { (x.rows(), x.cols()) } else { (x.numel(), 1) };
        assert_eq!(n, xr, "spmm inner dims: {m}x{n} · {:?}", x.shape());
        let xd = x.data();
        let mut out = pool::take_zeroed(m * d);
        let row_band = |rows_out: &mut [f64], i0: usize| {
            for (ri, orow) in rows_out.chunks_mut(d).enumerate() {
                let i = i0 + ri;
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    let j = self.col_idx[k] as usize;
                    let v = self.vals[k];
                    let xrow = &xd[j * d..(j + 1) * d];
                    for (o, &xv) in orow.iter_mut().zip(xrow.iter()) {
                        *o += v * xv;
                    }
                }
            }
        };
        if !pool::should_parallelize(self.nnz() * d, pool::matmul_min()) {
            row_band(&mut out, 0);
        } else {
            // Same chunking policy as the dense matmul: ~4 chunks per lane
            // keeps work stealing effective under skewed row lengths.
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |r0, r1| {
                // Safety: row bands are disjoint and within `out`.
                let rows = unsafe { ptr.slice(r0 * d, r1 * d) };
                row_band(rows, r0);
            });
        }
        if x.rank() == 2 {
            Tensor::from_owned(out, [m, d], 2)
        } else {
            Tensor::from_owned(out, [m, 1], 1)
        }
    }
}

/// A CSR sparse matrix downcast to `f32` values: the fused lane kernel behind
/// the opt-in fast path ([`SparseMatrix::to_f32`]).
///
/// This type is *not* a tape citizen — it exists for precision-tolerant
/// inference-style products (serving, screening sweeps) where a documented
/// ≤1e-4-relative deviation buys halved memory traffic. The exact planner
/// path never touches it.
#[derive(Clone)]
pub struct SparseMatrixF32 {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl std::fmt::Debug for SparseMatrixF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMatrixF32")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.vals.len())
            .finish()
    }
}

impl SparseMatrix {
    /// Downcasts values to `f32` for the fast-path kernels. Structure is
    /// shared logic-for-logic with the `f64` matrix, so row iteration order —
    /// and thus accumulation order — is identical.
    pub fn to_f32(&self) -> SparseMatrixF32 {
        SparseMatrixF32 {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(|&v| v as f32).collect(),
        }
    }
}

impl SparseMatrixF32 {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Resident bytes of the CSR arrays (half the value payload of the `f64`
    /// matrix).
    pub fn resident_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f32>()
    }

    /// Fused sparse × dense product `A·X` over row-major `x` with `d` columns
    /// (`x.len() == cols·d`), returning a row-major `[rows, d]` buffer.
    ///
    /// The inner loop is a lane-unrolled axpy: for each stored entry the
    /// operand row streams through in contiguous 8-wide blocks, so the
    /// compiler can keep the `val` broadcast and the block in vector
    /// registers. Accumulation per output row follows CSR entry order — the
    /// same association order as [`SparseMatrix::spmm`], only in `f32`.
    ///
    /// # Panics
    /// Panics when `x.len()` is not `cols·d`.
    pub fn spmm(&self, x: &[f32], d: usize) -> Vec<f32> {
        assert_eq!(x.len(), self.cols * d, "spmm operand must be [cols, {d}] row-major");
        let mut out = vec![0.0f32; self.rows * d];
        for i in 0..self.rows {
            let orow = &mut out[i * d..(i + 1) * d];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                let v = self.vals[k];
                let xrow = &x[j * d..(j + 1) * d];
                // 8-wide blocks with a scalar tail: fixed-size chunks let the
                // autovectorizer emit one fma per lane without a remainder
                // check inside the hot loop.
                let mut oc = orow.chunks_exact_mut(8);
                let mut xc = xrow.chunks_exact(8);
                for (ob, xb) in (&mut oc).zip(&mut xc) {
                    for l in 0..8 {
                        ob[l] += v * xb[l];
                    }
                }
                for (o, &xv) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
                    *o += v * xv;
                }
            }
        }
        out
    }
}

/// A sparse matrix paired with its transpose, ready for tape recording.
///
/// The pairing makes the backward rule allocation-free: the VJP of
/// `Spmm(A, x)` is `Spmm(Aᵀ, g)`, recorded by flipping a flag on the same
/// shared operand — no transposition at backward time, no `Arc` cycles, and
/// double backward (HVP) flips the flag back.
#[derive(Debug)]
pub struct SparseOperand {
    fwd: Arc<SparseMatrix>,
    bwd: Arc<SparseMatrix>,
}

impl SparseOperand {
    /// Pairs `m` with its transpose.
    pub fn new(m: SparseMatrix) -> Arc<Self> {
        let bwd = Arc::new(m.transpose());
        Arc::new(Self { fwd: Arc::new(m), bwd })
    }

    /// Pairs a symmetric `m` with itself, sharing one buffer.
    ///
    /// # Panics
    /// Debug-panics when `m` is not actually symmetric.
    pub fn symmetric(m: SparseMatrix) -> Arc<Self> {
        debug_assert!(m.is_symmetric(), "SparseOperand::symmetric needs A = Aᵀ");
        let fwd = Arc::new(m);
        Arc::new(Self { fwd: Arc::clone(&fwd), bwd: fwd })
    }

    /// The forward-direction matrix.
    pub fn matrix(&self) -> &SparseMatrix {
        &self.fwd
    }

    /// The matrix applied for a given orientation of the op.
    pub(crate) fn side(&self, transposed: bool) -> &SparseMatrix {
        if transposed {
            &self.bwd
        } else {
            &self.fwd
        }
    }
}

/// Records `A·x` on `x`'s tape: the differentiable SpMM/SpMV entry point.
///
/// `A` is constant; the gradient w.r.t. `x` is `Aᵀ·g`, itself a tape op, so
/// higher-order derivatives through the product are exact.
pub fn spmm<'t>(a: &Arc<SparseOperand>, x: Var<'t>) -> Var<'t> {
    spmm_oriented(a, false, x)
}

/// `spmm` with an explicit orientation (used by the backward pass).
pub(crate) fn spmm_oriented<'t>(a: &Arc<SparseOperand>, transposed: bool, x: Var<'t>) -> Var<'t> {
    x.tape().apply(Op::Spmm(Arc::clone(a), transposed, x.id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndiff;
    use crate::tape::Tape;

    /// A fixed 4x3 matrix with an empty row (row 2) and a duplicate triplet.
    fn sample() -> SparseMatrix {
        SparseMatrix::from_triplets(
            4,
            3,
            &[(0, 1, 2.0), (0, 0, 1.0), (1, 2, 3.0), (3, 0, -1.0), (3, 0, 0.5), (3, 2, 4.0)],
        )
    }

    #[test]
    fn triplets_sort_and_sum_duplicates() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        let d = a.to_dense();
        assert_eq!(d.at(0, 0), 1.0);
        assert_eq!(d.at(0, 1), 2.0);
        assert_eq!(d.at(1, 2), 3.0);
        assert_eq!(d.at(2, 0), 0.0); // empty row
        assert_eq!(d.at(3, 0), -0.5); // summed duplicate
        assert_eq!(d.at(3, 2), 4.0);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.to_dense().to_vec(), a.to_dense().transpose().to_vec());
        // Round trip.
        assert_eq!(t.transpose().to_dense().to_vec(), a.to_dense().to_vec());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = sample();
        let x = Tensor::from_vec((0..6).map(|i| i as f64 * 0.5 - 1.0).collect(), &[3, 2]);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        assert_eq!(sparse.shape(), &[4, 2]);
        assert_eq!(sparse.to_vec(), dense.to_vec());
    }

    #[test]
    fn spmv_rank1_roundtrip() {
        let a = sample();
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        let y = a.spmm(&x);
        assert_eq!(y.shape(), &[4]);
        assert_eq!(y.to_vec(), vec![1.0 - 4.0, 9.0, 0.0, -0.5 + 12.0]);
    }

    #[test]
    fn from_csr_validates() {
        let a = SparseMatrix::from_csr(2, 2, vec![0, 1, 2], vec![1, 0], vec![5.0, 7.0]);
        assert_eq!(a.to_dense().to_vec(), vec![0.0, 5.0, 7.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_csr_rejects_unsorted_rows() {
        let _ = SparseMatrix::from_csr(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn symmetric_operand_shares_buffers() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let op = SparseOperand::symmetric(a);
        assert!(Arc::ptr_eq(&op.fwd, &op.bwd));
    }

    #[test]
    fn tape_spmm_forward_and_gradient() {
        let op = SparseOperand::new(sample());
        let x0 = Tensor::from_vec(vec![0.3, -1.1, 0.7, 2.0, -0.2, 0.9], &[3, 2]);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.constant(Tensor::from_vec((1..=8).map(|i| i as f64).collect(), &[4, 2]));
        let loss = spmm(&op, x).mul(w).sum();
        assert_eq!(
            spmm(&op, x).value().to_vec(),
            op.matrix().to_dense().matmul(&x0).to_vec(),
            "tape forward must equal the raw kernel"
        );
        let g = tape.grad(loss, &[x]).remove(0);
        let dense = op.matrix().to_dense();
        let f = |t: &Tensor| {
            dense.matmul(t).to_vec().iter().zip(1..=8).map(|(&y, wi)| y * wi as f64).sum()
        };
        ndiff::assert_grad_close(f, &x0, &g, 1e-6);
    }

    #[test]
    fn tape_spmm_hvp_is_exact() {
        // L = ‖A·x‖² has constant Hessian 2AᵀA: the double-backward through
        // two stacked Spmm nodes must reproduce it exactly.
        let op = SparseOperand::new(sample());
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]));
        let loss = {
            let y = spmm(&op, x);
            y.mul(y).sum()
        };
        let v = Tensor::from_vec(vec![1.0, 2.0, -1.0], &[3]);
        let hv = crate::hvp::hvp_exact(&tape, loss, x, &v);
        let ad = op.matrix().to_dense();
        let expect = ad.transpose().matmul(&ad.matmul(&v.reshape(&[3, 1]))).map(|z| 2.0 * z);
        assert!(hv.reshape(&[3, 1]).max_abs_diff(&expect) < 1e-12, "hvp {:?}", hv.to_vec());
    }

    #[test]
    fn f32_spmm_tracks_f64_within_tolerance() {
        let a = sample();
        let af = a.to_f32();
        assert_eq!(af.nnz(), a.nnz());
        assert!(af.resident_bytes() < a.resident_bytes());
        // d = 10 exercises both the 8-wide block and the scalar tail.
        let d = 10;
        let x64 = Tensor::from_vec((0..3 * d).map(|i| (i as f64 * 0.37).sin()).collect(), &[3, d]);
        let x32: Vec<f32> = x64.data().iter().map(|&v| v as f32).collect();
        let y64 = a.spmm(&x64);
        let y32 = af.spmm(&x32, d);
        assert_eq!(y32.len(), y64.numel());
        for (i, (&f, &e)) in y32.iter().zip(y64.data().iter()).enumerate() {
            assert!((f as f64 - e).abs() < 1e-5, "[{i}] f32 {f} vs f64 {e}");
        }
    }

    #[test]
    fn f32_spmm_handles_d1_and_empty_rows() {
        let a = sample().to_f32();
        let y = a.spmm(&[1.0, -2.0, 3.0], 1);
        assert_eq!(y, vec![-3.0, 9.0, 0.0, 11.5]);
    }

    // Thread-count determinism is exercised in `tests/sparse_backend.rs`,
    // which owns its process and can reconfigure the global pool safely.
}
