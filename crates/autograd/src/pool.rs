//! Shared kernel thread pool and tensor buffer recycling.
//!
//! Two allocation/scheduling services used by the tensor kernels:
//!
//! 1. **A process-wide worker pool** ([`configure_threads`], [`run_chunks`])
//!    that large kernels (matmul, transpose, elementwise maps, row
//!    gathers/reductions) partition work onto. The pool is deliberately
//!    *deterministic*: every output element is computed by exactly one chunk
//!    with the same inner loop order as the sequential kernel, so results are
//!    bit-identical for any thread count. Chunks are claimed from a shared
//!    atomic counter (work stealing), so load balances even when chunk costs
//!    vary.
//!
//! 2. **A thread-local buffer pool** for `Vec<f64>` tensor storage. The
//!    unrolled PDS training loop and the CG solve allocate thousands of
//!    same-shaped gradient buffers per planning call; [`Tape::reset`] and the
//!    tape drop path return exclusive buffers here so the next iteration
//!    reuses them instead of hitting the allocator.
//!
//! Callers above this crate set the pool size through their configs
//! (`GameConfig::kernel_threads`, `MsoConfig::threads`, the `repro` binary's
//! `--threads` flag / `MSOPDS_THREADS`); cell-level parallelism in the
//! experiment harness and kernel-level lanes share one budget so the process
//! never oversubscribes.
//!
//! [`Tape::reset`]: crate::Tape::reset

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use msopds_telemetry as telemetry;

/// Parallel jobs dispatched to the worker pool (sequential fallbacks included).
static POOL_JOBS: telemetry::Counter = telemetry::Counter::new("autograd.pool.jobs");
/// Work chunks executed across all [`run_chunks`] calls.
static POOL_CHUNKS: telemetry::Counter = telemetry::Counter::new("autograd.pool.chunks");
/// Buffer requests served from the thread-local recycle pool.
static BUFFER_HITS: telemetry::Counter = telemetry::Counter::new("autograd.buffer_pool.hits");
/// Buffer requests that fell through to a fresh allocation.
static BUFFER_MISSES: telemetry::Counter = telemetry::Counter::new("autograd.buffer_pool.misses");

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Erased pointer to the chunk closure of an in-flight [`run_chunks`] call.
///
/// Safety: workers only dereference after claiming a chunk index below
/// `n_chunks`, and the caller blocks until every claimed chunk has completed,
/// so the pointee outlives every dereference. Stale queue entries observed
/// after completion see an exhausted counter and never dereference.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}

struct JobStatus {
    completed: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

#[derive(Clone)]
struct Job {
    task: TaskPtr,
    next_chunk: Arc<AtomicUsize>,
    n_chunks: usize,
    status: Arc<JobStatus>,
}

struct PoolState {
    tx: Option<crossbeam::channel::Sender<Job>>,
    workers: usize,
    configured: bool,
}

static POOL: OnceLock<Mutex<PoolState>> = OnceLock::new();
/// Cached lane count so hot kernels can check parallelism without locking.
static LANES: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static Mutex<PoolState> {
    POOL.get_or_init(|| Mutex::new(PoolState { tx: None, workers: 0, configured: false }))
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn configure_locked(st: &mut PoolState, threads: usize) {
    let threads = if threads == 0 { default_threads() } else { threads };
    let workers = threads - 1;
    if st.configured && st.workers == workers {
        return;
    }
    // Dropping the old sender disconnects idle workers; busy ones finish
    // their current job first (the caller of that job participates, so it
    // completes either way).
    st.tx = None;
    if workers > 0 {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        for _ in 0..workers {
            let rx = rx.clone();
            std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    run_job(&job);
                }
            });
        }
        st.tx = Some(tx);
    }
    st.workers = workers;
    st.configured = true;
    LANES.store(workers + 1, Ordering::SeqCst);
}

/// Sets the kernel pool to `threads` total lanes (the calling thread counts
/// as one lane, so `threads - 1` workers are kept). `0` means auto-detect
/// from `available_parallelism`. `1` disables kernel parallelism entirely.
///
/// Reconfiguring to the current size is a cheap no-op, so per-call sites
/// (games, solves) can set it unconditionally.
pub fn configure_threads(threads: usize) {
    configure_locked(&mut pool().lock().unwrap(), threads);
}

/// Number of parallel lanes kernels may use (worker threads + the caller).
pub fn lanes() -> usize {
    let lanes = LANES.load(Ordering::SeqCst);
    if lanes > 0 {
        return lanes;
    }
    configure_threads(0);
    LANES.load(Ordering::SeqCst)
}

fn run_job(job: &Job) {
    loop {
        let c = job.next_chunk.fetch_add(1, Ordering::SeqCst);
        if c >= job.n_chunks {
            break;
        }
        // Safety: see `TaskPtr`. `c < n_chunks` and this chunk's completion
        // has not been counted yet, so the caller is still blocked in
        // `run_chunks` and the closure is alive.
        let task = unsafe { &*job.task.0 };
        if catch_unwind(AssertUnwindSafe(|| task(c))).is_err() {
            job.status.panicked.store(true, Ordering::SeqCst);
        }
        let mut done = job.status.completed.lock().unwrap();
        *done += 1;
        if *done == job.n_chunks {
            job.status.all_done.notify_all();
        }
    }
}

/// Runs `task(0..n_chunks)` across the pool, the calling thread included.
///
/// Falls back to a plain sequential loop when the pool has one lane or there
/// is only one chunk. Blocks until every chunk has completed; panics if any
/// chunk panicked.
pub fn run_chunks(n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    POOL_JOBS.incr();
    POOL_CHUNKS.add(n_chunks as u64);
    let tx = if n_chunks == 1 || lanes() <= 1 { None } else { pool().lock().unwrap().tx.clone() };
    let Some(tx) = tx else {
        for c in 0..n_chunks {
            task(c);
        }
        return;
    };

    let status = Arc::new(JobStatus {
        completed: Mutex::new(0),
        all_done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    // Safety: the fat pointer's lifetime is erased so it can cross the
    // channel, but it is only dereferenced while a chunk claim succeeds, and
    // this function does not return until all chunks are done — so the
    // referent outlives every dereference.
    let task_ptr = unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
            task,
        )
    };
    let job = Job {
        task: TaskPtr(task_ptr),
        next_chunk: Arc::new(AtomicUsize::new(0)),
        n_chunks,
        status: Arc::clone(&status),
    };
    // One wake-up per worker that could usefully claim a chunk; the send only
    // fails if the pool was just reconfigured, in which case the caller
    // simply processes every chunk itself.
    let workers = lanes() - 1;
    for _ in 0..workers.min(n_chunks - 1) {
        let _ = tx.send(job.clone());
    }
    run_job(&job);
    let mut done = status.completed.lock().unwrap();
    while *done < n_chunks {
        done = status.all_done.wait(done).unwrap();
    }
    drop(done);
    if status.panicked.load(Ordering::SeqCst) {
        panic!("a parallel kernel chunk panicked");
    }
}

/// Splits `len` items into contiguous ranges of at most `chunk` and runs
/// `body(start, end)` for each across the pool.
pub fn for_each_range(len: usize, chunk: usize, body: impl Fn(usize, usize) + Sync) {
    debug_assert!(chunk > 0);
    let n_chunks = len.div_ceil(chunk.max(1));
    run_chunks(n_chunks, &|c| {
        let start = c * chunk;
        let end = (start + chunk).min(len);
        body(start, end);
    });
}

/// Send+Sync wrapper for a mutable output pointer shared across chunks.
///
/// Soundness contract: chunks must write disjoint ranges of the pointee, and
/// the owning call must not return until [`run_chunks`] does.
pub(crate) struct SendMutPtr(pub *mut f64);

unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// The output sub-slice `[start, end)`. Caller asserts range disjointness.
    #[allow(clippy::mut_from_ref)] // disjointness is the caller's contract
    pub(crate) unsafe fn slice(&self, start: usize, end: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.add(start), end - start)
    }
}

// ---------------------------------------------------------------------------
// Parallelism thresholds
// ---------------------------------------------------------------------------

static ELEMWISE_MIN: AtomicUsize = AtomicUsize::new(DEFAULT_ELEMWISE_MIN);
static COPY_MIN: AtomicUsize = AtomicUsize::new(DEFAULT_COPY_MIN);
static MATMUL_MIN: AtomicUsize = AtomicUsize::new(DEFAULT_MATMUL_MIN);

/// Default minimum element count before elementwise kernels go parallel.
pub const DEFAULT_ELEMWISE_MIN: usize = 16 * 1024;
/// Default minimum element count before copy/shuffle kernels go parallel.
pub const DEFAULT_COPY_MIN: usize = 64 * 1024;
/// Default minimum `m·k·n` product before matmul goes parallel.
pub const DEFAULT_MATMUL_MIN: usize = 256 * 1024;

/// Overrides the size thresholds below which kernels stay sequential.
///
/// Exposed for tuning and for tests that want to exercise the parallel code
/// paths on small tensors. Pass the `DEFAULT_*` constants to restore.
pub fn set_parallel_thresholds(elementwise: usize, copy: usize, matmul: usize) {
    ELEMWISE_MIN.store(elementwise.max(1), Ordering::SeqCst);
    COPY_MIN.store(copy.max(1), Ordering::SeqCst);
    MATMUL_MIN.store(matmul.max(1), Ordering::SeqCst);
}

pub(crate) fn elementwise_min() -> usize {
    ELEMWISE_MIN.load(Ordering::SeqCst)
}

pub(crate) fn copy_min() -> usize {
    COPY_MIN.load(Ordering::SeqCst)
}

pub(crate) fn matmul_min() -> usize {
    MATMUL_MIN.load(Ordering::SeqCst)
}

/// True when a kernel over `work` units (against threshold `min`) should use
/// the pool.
pub(crate) fn should_parallelize(work: usize, min: usize) -> bool {
    work >= min && lanes() > 1
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

/// Upper bound on recycled buffers kept per exact length.
const MAX_PER_BUCKET: usize = 16;
/// Upper bound on total recycled elements held per thread (128 MiB of f64).
const MAX_HELD_ELEMS: usize = 1 << 24;

#[derive(Default)]
struct BufferPool {
    buckets: HashMap<usize, Vec<Vec<f64>>>,
    held_elems: usize,
}

thread_local! {
    static BUFFERS: RefCell<BufferPool> = RefCell::new(BufferPool::default());
}

/// A length-`len` buffer with unspecified contents; the caller must overwrite
/// every element. Reuses a recycled buffer of the exact length when one is
/// available.
pub(crate) fn take_any(len: usize) -> Vec<f64> {
    if len == 0 {
        return Vec::new();
    }
    BUFFERS
        .with(|b| {
            let mut pool = b.borrow_mut();
            let v = pool.buckets.get_mut(&len).and_then(Vec::pop);
            if v.is_some() {
                pool.held_elems -= len;
            }
            v
        })
        .inspect(|_| BUFFER_HITS.incr())
        .unwrap_or_else(|| {
            BUFFER_MISSES.incr();
            vec![0.0; len]
        })
}

/// A zero-filled length-`len` buffer, recycled when possible.
pub(crate) fn take_zeroed(len: usize) -> Vec<f64> {
    let mut v = take_any(len);
    v.fill(0.0);
    v
}

/// Returns a tensor buffer to the thread's pool for reuse.
pub(crate) fn recycle(v: Vec<f64>) {
    let len = v.len();
    if len == 0 {
        return;
    }
    BUFFERS.with(|b| {
        let mut pool = b.borrow_mut();
        if pool.held_elems + len > MAX_HELD_ELEMS {
            return;
        }
        let bucket = pool.buckets.entry(len).or_default();
        if bucket.len() < MAX_PER_BUCKET {
            bucket.push(v);
            pool.held_elems += len;
        }
    });
}

/// `(buffers, elements)` currently held by this thread's buffer pool.
pub fn buffer_pool_stats() -> (usize, usize) {
    BUFFERS.with(|b| {
        let pool = b.borrow();
        (pool.buckets.values().map(Vec::len).sum(), pool.held_elems)
    })
}

/// Drops every buffer held by this thread's pool.
pub fn clear_buffer_pool() {
    BUFFERS.with(|b| *b.borrow_mut() = BufferPool::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pool configuration is process-global; serialize tests that change it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn chunks_cover_range_exactly_once() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure_threads(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        for_each_range(hits.len(), 7, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn sequential_when_single_lane() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure_threads(1);
        let sum = AtomicUsize::new(0);
        run_chunks(10, &|c| {
            sum.fetch_add(c, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 45);
        configure_threads(4);
    }

    #[test]
    fn reconfigure_is_idempotent() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure_threads(3);
        configure_threads(3);
        assert_eq!(lanes(), 3);
        configure_threads(4);
    }

    #[test]
    fn buffers_recycle_by_exact_length() {
        clear_buffer_pool();
        recycle(vec![7.0; 64]);
        let (bufs, elems) = buffer_pool_stats();
        assert_eq!((bufs, elems), (1, 64));
        let v = take_zeroed(64);
        assert_eq!(v, vec![0.0; 64]);
        assert_eq!(buffer_pool_stats(), (0, 0));
        // A different length misses the bucket.
        recycle(vec![1.0; 64]);
        let w = take_any(32);
        assert_eq!(w.len(), 32);
        assert_eq!(buffer_pool_stats().0, 1);
        clear_buffer_pool();
    }

    #[test]
    #[should_panic(expected = "parallel kernel chunk panicked")]
    fn worker_panic_propagates() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure_threads(4);
        run_chunks(8, &|c| {
            if c == 3 {
                panic!("boom");
            }
        });
    }
}
