//! The autodiff tape: a growing arena of operation nodes.
//!
//! Every differentiable computation in the workspace is recorded as a node on
//! a [`Tape`]. Backward passes (see [`crate::backward`]) emit their
//! vector-Jacobian products as *new tape nodes built from the same op set*,
//! which is what makes gradients themselves differentiable — the property
//! Algorithm 1 of the MSOPDS paper relies on for its second-order
//! vector-Jacobian products (steps 9–10).
//!
//! The tape is single-threaded by design (`RefCell` inside); experiment
//! parallelism happens at the scenario level, one tape per thread.

use std::cell::RefCell;
use std::sync::Arc;

use msopds_telemetry as telemetry;

use crate::tensor::Tensor;

/// Operations recorded across all tapes (forward and backward-emitted nodes).
static TAPE_OPS: telemetry::Counter = telemetry::Counter::new("autograd.tape.ops");

/// SELU scale constant λ (Klambauer et al., 2017).
pub const SELU_LAMBDA: f64 = 1.050_700_987_355_480_5;
/// SELU α constant (Klambauer et al., 2017).
pub const SELU_ALPHA: f64 = 1.673_263_242_354_377_2;

/// Identifier of a node on a tape.
pub type NodeId = usize;

/// A recorded operation. Fields hold the input node ids plus any constant
/// attributes (scalars, index lists, shape parameters).
#[derive(Clone, Debug)]
#[allow(missing_docs)] // arithmetic variants are self-describing
pub enum Op {
    /// An input tensor. `trainable` is advisory metadata used by optimizers.
    Leaf {
        trainable: bool,
    },
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    Neg(NodeId),
    AddScalar(NodeId, f64),
    MulScalar(NodeId, f64),
    PowScalar(NodeId, f64),
    Matmul(NodeId, NodeId),
    Transpose(NodeId),
    Reshape(NodeId, Vec<usize>),
    /// Sum of all elements, producing a scalar.
    Sum(NodeId),
    /// Row sums: `[m, n] -> [m]`.
    SumRows(NodeId),
    /// Column sums: `[m, n] -> [n]`.
    SumCols(NodeId),
    /// Scalar broadcast to an arbitrary shape.
    ExpandScalar(NodeId, Vec<usize>),
    /// `[m] -> [m, n]`, copying element `i` across row `i`.
    BroadcastCols(NodeId, usize),
    /// `[n] -> [m, n]`, copying the vector into every row.
    BroadcastRows(NodeId, usize),
    /// Row gather: `[m, n] -> [k, n]` for `k` indices.
    GatherRows(NodeId, Arc<Vec<usize>>),
    /// Row scatter-add: `[k, n] -> [m, n]`; duplicate indices accumulate.
    ScatterAddRows(NodeId, Arc<Vec<usize>>, usize),
    /// Element gather on a vector: `[n] -> [k]`.
    GatherElems(NodeId, Arc<Vec<usize>>),
    /// Element scatter-add on a vector: `[k] -> [n]`.
    ScatterAddElems(NodeId, Arc<Vec<usize>>, usize),
    /// Column-wise concatenation of two matrices with equal row counts.
    ConcatCols(NodeId, NodeId),
    /// Column slice `[from, to)` of a matrix.
    SliceCols(NodeId, usize, usize),
    /// Embeds a matrix as columns `[from, from+cols)` of a wider zero matrix.
    PadCols(NodeId, usize, usize),
    /// Sparse × dense product `A·x` (or `Aᵀ·x` when the flag is set). The
    /// sparse operand is a constant; only the dense input differentiates.
    Spmm(Arc<crate::sparse::SparseOperand>, bool, NodeId),
    Exp(NodeId),
    Ln(NodeId),
    Sqrt(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    /// Scaled exponential linear unit, used by the CA loss (eq. 5).
    Selu(NodeId),
}

impl Op {
    /// Input node ids of this operation (empty for leaves).
    pub fn inputs(&self) -> Inputs {
        use Op::*;
        match self {
            Leaf { .. } => Inputs::none(),
            Add(a, b) | Sub(a, b) | Mul(a, b) | Div(a, b) | Matmul(a, b) | ConcatCols(a, b) => {
                Inputs::two(*a, *b)
            }
            Neg(a)
            | AddScalar(a, _)
            | MulScalar(a, _)
            | PowScalar(a, _)
            | Transpose(a)
            | Reshape(a, _)
            | Sum(a)
            | SumRows(a)
            | SumCols(a)
            | ExpandScalar(a, _)
            | BroadcastCols(a, _)
            | BroadcastRows(a, _)
            | GatherRows(a, _)
            | ScatterAddRows(a, _, _)
            | GatherElems(a, _)
            | ScatterAddElems(a, _, _)
            | SliceCols(a, _, _)
            | PadCols(a, _, _)
            | Spmm(_, _, a)
            | Exp(a)
            | Ln(a)
            | Sqrt(a)
            | Sigmoid(a)
            | Tanh(a)
            | Relu(a)
            | Selu(a) => Inputs::one(*a),
        }
    }
}

/// Tiny fixed-capacity input list (ops have at most two inputs).
#[derive(Clone, Copy, Debug)]
pub struct Inputs {
    items: [NodeId; 2],
    len: u8,
}

impl Inputs {
    fn none() -> Self {
        Self { items: [0, 0], len: 0 }
    }
    fn one(a: NodeId) -> Self {
        Self { items: [a, 0], len: 1 }
    }
    fn two(a: NodeId, b: NodeId) -> Self {
        Self { items: [a, b], len: 2 }
    }
    /// Iterates over the stored ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.items[..self.len as usize].iter().copied()
    }
    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.len as usize
    }
    /// True when there are no inputs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

pub(crate) struct Node {
    pub op: Op,
    pub value: Tensor,
}

/// Size statistics of a tape (see [`Tape::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TapeStats {
    /// Total recorded nodes.
    pub nodes: usize,
    /// Leaf nodes (inputs/constants).
    pub leaves: usize,
    /// Matrix-multiplication nodes (the dominant cost).
    pub matmuls: usize,
    /// Total stored tensor elements across all nodes.
    pub elements: usize,
}

impl TapeStats {
    /// Approximate resident bytes of the stored values.
    pub fn approx_bytes(&self) -> usize {
        self.elements * std::mem::size_of::<f64>()
    }
}

/// A reverse-mode autodiff tape.
///
/// Create leaves with [`Tape::leaf`] / [`Tape::constant`], build computations
/// through [`crate::Var`] methods, then differentiate with
/// [`Tape::grad`] or [`Tape::grad_vars`].
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all nodes, returning uniquely-owned value buffers to the
    /// thread-local pool (see [`crate::pool`]) so the next forward/backward
    /// pass reuses them instead of reallocating. Any outstanding
    /// [`crate::Var`] from this tape becomes invalid; callers must re-create
    /// leaves afterwards.
    pub fn reset(&self) {
        for node in self.nodes.borrow_mut().drain(..) {
            node.value.reclaim();
        }
    }

    /// Registers a trainable leaf holding `value`.
    pub fn leaf(&self, value: Tensor) -> crate::Var<'_> {
        self.push(Op::Leaf { trainable: true }, value)
    }

    /// Registers a non-trainable (constant) leaf holding `value`.
    pub fn constant(&self, value: Tensor) -> crate::Var<'_> {
        self.push(Op::Leaf { trainable: false }, value)
    }

    /// Convenience scalar constant.
    pub fn scalar(&self, v: f64) -> crate::Var<'_> {
        self.constant(Tensor::scalar(v))
    }

    /// The stored value of node `id`.
    pub fn value(&self, id: NodeId) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    /// Reconstructs a [`crate::Var`] handle for an existing node id.
    ///
    /// # Panics
    /// Panics if `id` does not name a recorded node.
    pub fn var(&self, id: NodeId) -> crate::Var<'_> {
        assert!(id < self.len(), "node id {id} out of range (tape has {} nodes)", self.len());
        crate::Var { tape: self, id }
    }

    pub(crate) fn op(&self, id: NodeId) -> Op {
        self.nodes.borrow()[id].op.clone()
    }

    pub(crate) fn push(&self, op: Op, value: Tensor) -> crate::Var<'_> {
        TAPE_OPS.incr();
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node { op, value });
        crate::Var { tape: self, id }
    }

    /// Memory/size statistics of the recorded computation, used to observe
    /// the Theorem 1 cost model (backward cost ∝ recorded ops).
    pub fn stats(&self) -> TapeStats {
        let nodes = self.nodes.borrow();
        let mut stats = TapeStats { nodes: nodes.len(), ..TapeStats::default() };
        for node in nodes.iter() {
            stats.elements += node.value.numel();
            if matches!(node.op, Op::Leaf { .. }) {
                stats.leaves += 1;
            }
            if matches!(node.op, Op::Matmul(_, _)) {
                stats.matmuls += 1;
            }
        }
        stats
    }

    /// Records `op`, computing its value from the stored inputs.
    pub(crate) fn apply(&self, op: Op) -> crate::Var<'_> {
        let value = {
            let nodes = self.nodes.borrow();
            eval(&op, &nodes)
        };
        self.push(op, value)
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Same buffer recycling as `reset`: a dropped tape's uniquely-owned
        // values feed the next tape on this thread.
        for node in self.nodes.get_mut().drain(..) {
            node.value.reclaim();
        }
    }
}

/// Computes the forward value of `op` given the current node arena.
///
/// Structural and reduction ops delegate to the (pooled, possibly parallel)
/// kernels on [`Tensor`]; this function only routes inputs.
fn eval(op: &Op, nodes: &[Node]) -> Tensor {
    use Op::*;
    let v = |id: NodeId| &nodes[id].value;
    match op {
        Leaf { .. } => unreachable!("leaves are pushed with explicit values"),
        Add(a, b) => v(*a).zip(v(*b), |x, y| x + y),
        Sub(a, b) => v(*a).zip(v(*b), |x, y| x - y),
        Mul(a, b) => v(*a).zip(v(*b), |x, y| x * y),
        Div(a, b) => v(*a).zip(v(*b), |x, y| x / y),
        Neg(a) => v(*a).map(|x| -x),
        AddScalar(a, c) => v(*a).map(|x| x + c),
        MulScalar(a, c) => v(*a).map(|x| x * c),
        PowScalar(a, p) => v(*a).map(|x| x.powf(*p)),
        Matmul(a, b) => v(*a).matmul(v(*b)),
        Transpose(a) => v(*a).transpose(),
        Reshape(a, shape) => v(*a).reshape(shape),
        Sum(a) => Tensor::scalar(v(*a).sum()),
        SumRows(a) => v(*a).sum_rows(),
        SumCols(a) => v(*a).sum_cols(),
        ExpandScalar(a, shape) => {
            let s = v(*a);
            assert_eq!(s.numel(), 1, "ExpandScalar needs a scalar, got {:?}", s.shape());
            Tensor::full(shape, s.item())
        }
        BroadcastCols(a, n) => v(*a).broadcast_cols(*n),
        BroadcastRows(a, m) => v(*a).broadcast_rows(*m),
        GatherRows(a, idx) => v(*a).gather_rows(idx),
        ScatterAddRows(a, idx, m) => v(*a).scatter_add_rows(idx, *m),
        GatherElems(a, idx) => v(*a).gather_elems(idx),
        ScatterAddElems(a, idx, n) => v(*a).scatter_add_elems(idx, *n),
        Spmm(m, transposed, a) => m.side(*transposed).spmm(v(*a)),
        ConcatCols(a, b) => v(*a).concat_cols(v(*b)),
        SliceCols(a, from, to) => v(*a).slice_cols(*from, *to),
        PadCols(a, from, total) => v(*a).pad_cols(*from, *total),
        Exp(a) => v(*a).map(f64::exp),
        Ln(a) => v(*a).map(f64::ln),
        Sqrt(a) => v(*a).map(f64::sqrt),
        Sigmoid(a) => v(*a).map(|x| 1.0 / (1.0 + (-x).exp())),
        Tanh(a) => v(*a).map(f64::tanh),
        Relu(a) => v(*a).map(|x| x.max(0.0)),
        Selu(a) => v(*a).map(|x| {
            if x > 0.0 {
                SELU_LAMBDA * x
            } else {
                SELU_LAMBDA * SELU_ALPHA * (x.exp() - 1.0)
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(2.0));
        assert_eq!(tape.value(a.id()).item(), 2.0);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn reset_clears() {
        let tape = Tape::new();
        tape.leaf(Tensor::scalar(1.0));
        tape.reset();
        assert!(tape.is_empty());
    }

    #[test]
    fn stats_count_nodes_and_elements() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]));
        let _ = a.matmul(b).sum();
        let stats = tape.stats();
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.leaves, 2);
        assert_eq!(stats.matmuls, 1);
        assert_eq!(stats.elements, 4 + 4 + 4 + 1);
        assert_eq!(stats.approx_bytes(), 13 * 8);
    }

    #[test]
    fn backward_grows_tape_linearly_in_forward_size() {
        // Theorem 1's O(|θ|) reverse-mode claim, observed: the backward pass
        // adds at most a constant factor of the forward node count.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[8]));
        let mut y = x;
        for _ in 0..20 {
            y = y.sigmoid().add_scalar(0.1);
        }
        let loss = y.sum();
        let before = tape.len();
        let _ = tape.grad(loss, &[x]);
        let after = tape.len();
        assert!(after - before < 8 * before, "backward blow-up: {before} -> {after}");
    }

    #[test]
    fn selu_constants_match_reference() {
        // Values cross-checked against the SELU paper / PyTorch defaults.
        assert!((SELU_LAMBDA - 1.0507).abs() < 1e-4);
        assert!((SELU_ALPHA - 1.6733).abs() < 1e-4);
    }
}
