//! # msopds-autograd
//!
//! Tape-based reverse-mode automatic differentiation over dense `f64`
//! tensors, with **higher-order** support: backward passes emit their
//! vector-Jacobian products as ordinary tape operations, so gradients are
//! themselves differentiable. This is the numerical substrate replacing
//! PyTorch for the MSOPDS reproduction — Algorithm 1 of the paper needs
//! first-order gradients through an *unrolled* surrogate training loop and
//! second-order vector-Jacobian products for its conjugate-gradient
//! Stackelberg solve, both of which this crate provides exactly.
//!
//! ## Quick tour
//!
//! ```
//! use msopds_autograd::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
//! let loss = x.square().sum();          // L = Σ x²
//! let g = tape.grad(loss, &[x]);        // ∂L/∂x = 2x
//! assert_eq!(g[0].to_vec(), vec![2.0, 4.0, 6.0]);
//! ```
//!
//! Second order, via double backward:
//!
//! ```
//! use msopds_autograd::{Tape, Tensor, hvp::hvp_exact};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, -1.0], &[2]));
//! let loss = x.pow_scalar(4.0).sum();   // L = Σ x⁴, H = diag(12x²)
//! let hv = hvp_exact(&tape, loss, x, &Tensor::ones(&[2]));
//! assert!((hv.get(0) - 12.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod backward;
pub mod cg;
pub mod functional;
pub mod hvp;
pub mod ndiff;
pub mod optim;
pub mod pool;
pub mod sparse;
pub mod tape;
pub mod tensor;
mod var;

pub use cg::{conjugate_gradient, conjugate_gradient_multi, CgSolution, SolveOutcome, SolveStatus};
pub use hvp::HvpMode;
pub use sparse::{spmm, SparseMatrix, SparseMatrixF32, SparseOperand, SparseShards, SparseSide};
pub use tape::{NodeId, Op, Tape, TapeStats};
pub use tensor::Tensor;
pub use var::Var;
