//! Dense row-major `f64` tensors.
//!
//! The tensor type underlying the autodiff tape. Tensors are immutable once
//! built (data behind an [`Arc`]), which makes storing them in tape nodes and
//! cloning them across the optimizer cheap. All shape errors panic with a
//! descriptive message: in this workspace tensor shapes are static properties
//! of model architecture, so a mismatch is always a programming error, never
//! recoverable input error.

use std::fmt;
use std::sync::Arc;

use crate::pool::{self, SendMutPtr};

/// A dense row-major tensor of `f64` values.
///
/// Rank 0 is represented as shape `[1]` (a scalar), rank 1 as `[n]`, rank 2 as
/// `[rows, cols]`. Higher ranks are not needed by any model in this workspace.
#[derive(Clone)]
pub struct Tensor {
    shape: [usize; 2],
    rank: u8,
    data: Arc<Vec<f64>>,
}

impl Tensor {
    /// Builds a tensor from a flat vector and an explicit shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`, or if the
    /// shape has more than two dimensions.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> Self {
        let (s, rank) = normalize_shape(shape);
        let numel: usize = s[0] * s[1];
        assert_eq!(
            data.len(),
            numel,
            "tensor data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { shape: s, rank, data: Arc::new(data) }
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(v: f64) -> Self {
        Self { shape: [1, 1], rank: 0, data: Arc::new(vec![v]) }
    }

    /// A tensor filled with `v`.
    pub fn full(shape: &[usize], v: f64) -> Self {
        let (s, rank) = normalize_shape(shape);
        let mut data = pool::take_any(s[0] * s[1]);
        data.fill(v);
        Self { shape: s, rank, data: Arc::new(data) }
    }

    /// Internal constructor for kernel outputs with a pre-normalized shape.
    pub(crate) fn from_owned(data: Vec<f64>, shape: [usize; 2], rank: u8) -> Self {
        debug_assert_eq!(data.len(), shape[0] * shape[1]);
        Self { shape, rank, data: Arc::new(data) }
    }

    /// Returns this tensor's buffer to the thread-local pool if no other
    /// handle (clone, reshape alias) still references it.
    pub(crate) fn reclaim(self) {
        if let Ok(v) = Arc::try_unwrap(self.data) {
            pool::recycle(v);
        }
    }

    /// A zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor with entries drawn i.i.d. from `N(0, std^2)` using `rng`.
    pub fn randn<R: rand::Rng>(shape: &[usize], std: f64, rng: &mut R) -> Self {
        let (s, rank) = normalize_shape(shape);
        let n = s[0] * s[1];
        // Box-Muller transform; avoids a rand_distr dependency in this crate.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { shape: s, rank, data: Arc::new(data) }
    }

    /// The logical shape (`[]`-like scalars report `[1]`).
    pub fn shape(&self) -> &[usize] {
        match self.rank {
            0 | 1 => &self.shape[..1],
            _ => &self.shape[..2],
        }
    }

    /// Number of rows when interpreted as a matrix (rank-1 tensors are `[n]`
    /// row counts of `n`; scalars are 1).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns when interpreted as a matrix (1 for rank ≤ 1).
    pub fn cols(&self) -> usize {
        self.shape[1]
    }

    /// The tensor rank: 0, 1, or 2.
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The flat element slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor {:?}", self.shape());
        self.data[0]
    }

    /// Element at `(row, col)` of a rank-2 tensor.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.shape[0] && col < self.shape[1]);
        self.data[row * self.shape[1] + col]
    }

    /// Element `i` of the flat buffer.
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    ///
    /// Large tensors are processed in parallel chunks; every element is
    /// computed by exactly one chunk, so the result is bit-identical to the
    /// sequential evaluation for any thread count.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Tensor {
        let len = self.data.len();
        let mut out = pool::take_any(len);
        if !pool::should_parallelize(len, pool::elementwise_min()) {
            for (o, &x) in out.iter_mut().zip(self.data.iter()) {
                *o = f(x);
            }
        } else {
            let src = &self.data[..];
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(len, pool::elementwise_min(), |s, e| {
                // Safety: ranges are disjoint and within `out`.
                let dst = unsafe { ptr.slice(s, e) };
                for (o, &x) in dst.iter_mut().zip(&src[s..e]) {
                    *o = f(x);
                }
            });
        }
        Tensor::from_owned(out, self.shape, self.rank)
    }

    /// Elementwise combination with another tensor of identical shape.
    ///
    /// Parallel for large tensors with bit-identical results (see
    /// [`Tensor::map`]).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64 + Sync) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let len = self.data.len();
        let mut out = pool::take_any(len);
        if !pool::should_parallelize(len, pool::elementwise_min()) {
            for ((o, &a), &b) in out.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
                *o = f(a, b);
            }
        } else {
            let (lhs, rhs) = (&self.data[..], &other.data[..]);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(len, pool::elementwise_min(), |s, e| {
                // Safety: ranges are disjoint and within `out`.
                let dst = unsafe { ptr.slice(s, e) };
                for ((o, &a), &b) in dst.iter_mut().zip(&lhs[s..e]).zip(&rhs[s..e]) {
                    *o = f(a, b);
                }
            });
        }
        Tensor::from_owned(out, self.shape, self.rank)
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// Row-partitioned across the kernel pool when `m·k·n` crosses the matmul
    /// threshold. Each output row is produced by one chunk with the same ikj
    /// inner order as the sequential kernel, so results are bit-identical for
    /// any thread count.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree or either operand is not rank 2.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank, 2, "matmul lhs must be rank 2, got {:?}", self.shape());
        assert_eq!(other.rank, 2, "matmul rhs must be rank 2, got {:?}", other.shape());
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} x {:?}", self.shape(), other.shape());
        let a = &self.data[..];
        let b = &other.data[..];
        let mut out = pool::take_zeroed(m * n);
        // ikj loop order: streams through b rows, autovectorizes well. The
        // zero-skip matters here: unrolled-SGD tapes multiply by sparse
        // selector matrices.
        let row_band = |rows: &mut [f64], i0: usize| {
            for (ri, orow) in rows.chunks_mut(n).enumerate() {
                let i = i0 + ri;
                let arow = &a[i * k..(i + 1) * k];
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        };
        if !pool::should_parallelize(m * k * n, pool::matmul_min()) {
            row_band(&mut out, 0);
        } else {
            // ~4 chunks per lane keeps the work-stealing queue busy even when
            // the zero-skip makes row costs uneven.
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |r0, r1| {
                // Safety: row bands are disjoint and within `out`.
                let rows = unsafe { ptr.slice(r0 * n, r1 * n) };
                row_band(rows, r0);
            });
        }
        Tensor::from_owned(out, [m, n], 2)
    }

    /// Matrix transpose of a rank-2 tensor.
    ///
    /// Cache-blocked into square tiles; large matrices split the row-tile
    /// bands across the kernel pool (a pure permutation, so parallel output
    /// is trivially identical to sequential).
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank, 2, "transpose needs rank 2, got {:?}", self.shape());
        let (m, n) = (self.shape[0], self.shape[1]);
        const TILE: usize = 64;
        let src = &self.data[..];
        let mut out = pool::take_any(m * n);
        let band = |dst_all: &SendMutPtr, i0: usize, i1: usize| {
            for it in (i0..i1).step_by(TILE) {
                for jt in (0..n).step_by(TILE) {
                    for i in it..(it + TILE).min(i1) {
                        for j in jt..(jt + TILE).min(n) {
                            // Safety: each (i, j) writes out[j*m + i] exactly
                            // once; bands partition i.
                            unsafe { *dst_all.0.add(j * m + i) = src[i * n + j] };
                        }
                    }
                }
            }
        };
        let ptr = SendMutPtr(out.as_mut_ptr());
        if !pool::should_parallelize(m * n, pool::copy_min()) {
            band(&ptr, 0, m);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(TILE);
            pool::for_each_range(m, rows_per_chunk, |i0, i1| band(&ptr, i0, i1));
        }
        Tensor::from_owned(out, [n, m], 2)
    }

    /// Row sums of a rank-2 tensor: `[m, n] -> [m]`.
    ///
    /// Parallel over row chunks; each output element sums one row in
    /// sequential order, so results are bit-identical for any thread count.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank, 2, "sum_rows needs rank 2, got {:?}", self.shape());
        let (m, n) = (self.shape[0], self.shape[1]);
        let src = &self.data[..];
        let mut out = pool::take_any(m);
        let band = |dst: &mut [f64], i0: usize| {
            for (ri, o) in dst.iter_mut().enumerate() {
                let i = i0 + ri;
                *o = src[i * n..(i + 1) * n].iter().sum();
            }
        };
        if !pool::should_parallelize(m * n, pool::elementwise_min()) {
            band(&mut out, 0);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |i0, i1| {
                // Safety: row ranges are disjoint and within `out`.
                band(unsafe { ptr.slice(i0, i1) }, i0);
            });
        }
        Tensor::from_owned(out, [m, 1], 1)
    }

    /// Column sums of a rank-2 tensor: `[m, n] -> [n]`.
    ///
    /// Parallel over column chunks; each output column accumulates rows
    /// `0..m` in sequential order, so results are bit-identical for any
    /// thread count.
    pub fn sum_cols(&self) -> Tensor {
        assert_eq!(self.rank, 2, "sum_cols needs rank 2, got {:?}", self.shape());
        let (m, n) = (self.shape[0], self.shape[1]);
        let src = &self.data[..];
        let mut out = pool::take_zeroed(n);
        let cols = |dst: &mut [f64], j0: usize| {
            for i in 0..m {
                let row = &src[i * n + j0..i * n + j0 + dst.len()];
                for (o, &x) in dst.iter_mut().zip(row) {
                    *o += x;
                }
            }
        };
        if !pool::should_parallelize(m * n, pool::elementwise_min()) {
            cols(&mut out, 0);
        } else {
            let cols_per_chunk = n.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(n, cols_per_chunk, |j0, j1| {
                // Safety: column ranges are disjoint and within `out`.
                cols(unsafe { ptr.slice(j0, j1) }, j0);
            });
        }
        Tensor::from_owned(out, [n, 1], 1)
    }

    /// Tiles a rank ≤ 1 tensor `[m]` into `[m, n]`, copying element `i`
    /// across row `i`.
    pub fn broadcast_cols(&self, n: usize) -> Tensor {
        assert!(self.rank <= 1, "broadcast_cols needs rank ≤ 1, got {:?}", self.shape());
        let m = self.data.len();
        let src = &self.data[..];
        let mut out = pool::take_any(m * n);
        let band = |dst: &mut [f64], i0: usize| {
            for (ri, row) in dst.chunks_mut(n).enumerate() {
                row.fill(src[i0 + ri]);
            }
        };
        if !pool::should_parallelize(m * n, pool::copy_min()) {
            band(&mut out, 0);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |i0, i1| {
                // Safety: row bands are disjoint and within `out`.
                band(unsafe { ptr.slice(i0 * n, i1 * n) }, i0);
            });
        }
        Tensor::from_owned(out, [m, n], 2)
    }

    /// Tiles a rank ≤ 1 tensor `[n]` into `[m, n]`, copying the vector into
    /// every row.
    pub fn broadcast_rows(&self, m: usize) -> Tensor {
        assert!(self.rank <= 1, "broadcast_rows needs rank ≤ 1, got {:?}", self.shape());
        let n = self.data.len();
        let src = &self.data[..];
        let mut out = pool::take_any(m * n);
        let band = |dst: &mut [f64]| {
            for row in dst.chunks_mut(n) {
                row.copy_from_slice(src);
            }
        };
        if !pool::should_parallelize(m * n, pool::copy_min()) {
            band(&mut out);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |i0, i1| {
                // Safety: row bands are disjoint and within `out`.
                band(unsafe { ptr.slice(i0 * n, i1 * n) });
            });
        }
        Tensor::from_owned(out, [m, n], 2)
    }

    /// Gathers rows `idx` of a rank-2 tensor: `[m, n] -> [k, n]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        assert_eq!(self.rank, 2, "gather_rows needs rank 2, got {:?}", self.shape());
        let (m, n) = (self.shape[0], self.shape[1]);
        let src = &self.data[..];
        let mut out = pool::take_any(idx.len() * n);
        let band = |dst: &mut [f64], k0: usize| {
            for (ri, row) in dst.chunks_mut(n).enumerate() {
                let i = idx[k0 + ri];
                assert!(i < m, "gather_rows index {i} out of bounds for {m} rows");
                row.copy_from_slice(&src[i * n..(i + 1) * n]);
            }
        };
        if !pool::should_parallelize(idx.len() * n, pool::copy_min()) {
            band(&mut out, 0);
        } else {
            let rows_per_chunk = idx.len().div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(idx.len(), rows_per_chunk, |k0, k1| {
                // Safety: row bands are disjoint and within `out`.
                band(unsafe { ptr.slice(k0 * n, k1 * n) }, k0);
            });
        }
        Tensor::from_owned(out, [idx.len(), n], 2)
    }

    /// Scatter-adds the rows of this `[k, n]` tensor into an `[m, n]` zero
    /// tensor at row positions `idx`; duplicate indices accumulate.
    ///
    /// Sequential: duplicate target rows would race under a row partition of
    /// the input, and building the inverse index costs more than the scatter
    /// at the sizes this workspace hits.
    pub fn scatter_add_rows(&self, idx: &[usize], m: usize) -> Tensor {
        assert_eq!(self.rank, 2, "scatter_add_rows needs rank 2, got {:?}", self.shape());
        assert_eq!(self.shape[0], idx.len(), "scatter_add_rows row/index count mismatch");
        let n = self.shape[1];
        let mut out = pool::take_zeroed(m * n);
        for (k, &i) in idx.iter().enumerate() {
            assert!(i < m, "scatter_add_rows index {i} out of bounds for {m} rows");
            let src = &self.data[k * n..(k + 1) * n];
            for (o, &x) in out[i * n..(i + 1) * n].iter_mut().zip(src) {
                *o += x;
            }
        }
        Tensor::from_owned(out, [m, n], 2)
    }

    /// Gathers elements `idx` of a rank ≤ 1 tensor: `[n] -> [k]`.
    pub fn gather_elems(&self, idx: &[usize]) -> Tensor {
        assert!(self.rank <= 1, "gather_elems needs rank ≤ 1, got {:?}", self.shape());
        let mut out = pool::take_any(idx.len());
        for (o, &i) in out.iter_mut().zip(idx) {
            *o = self.data[i];
        }
        Tensor::from_owned(out, [idx.len(), 1], 1)
    }

    /// Scatter-adds this `[k]` tensor into an `[n]` zero tensor at `idx`
    /// (duplicates accumulate). Sequential; see [`Tensor::scatter_add_rows`].
    pub fn scatter_add_elems(&self, idx: &[usize], n: usize) -> Tensor {
        assert_eq!(self.data.len(), idx.len(), "scatter_add_elems length mismatch");
        let mut out = pool::take_zeroed(n);
        for (k, &i) in idx.iter().enumerate() {
            assert!(i < n, "scatter_add_elems index {i} out of bounds for length {n}");
            out[i] += self.data[k];
        }
        Tensor::from_owned(out, [n, 1], 1)
    }

    /// Column-wise concatenation with another matrix of equal row count.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank, 2, "concat_cols lhs needs rank 2, got {:?}", self.shape());
        assert_eq!(other.rank, 2, "concat_cols rhs needs rank 2, got {:?}", other.shape());
        assert_eq!(self.shape[0], other.shape[0], "concat_cols row mismatch");
        let (m, na, nb) = (self.shape[0], self.shape[1], other.shape[1]);
        let (w, a, b) = (na + nb, &self.data[..], &other.data[..]);
        let mut out = pool::take_any(m * w);
        let band = |dst: &mut [f64], i0: usize| {
            for (ri, row) in dst.chunks_mut(w).enumerate() {
                let i = i0 + ri;
                row[..na].copy_from_slice(&a[i * na..(i + 1) * na]);
                row[na..].copy_from_slice(&b[i * nb..(i + 1) * nb]);
            }
        };
        if !pool::should_parallelize(m * w, pool::copy_min()) {
            band(&mut out, 0);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |i0, i1| {
                // Safety: row bands are disjoint and within `out`.
                band(unsafe { ptr.slice(i0 * w, i1 * w) }, i0);
            });
        }
        Tensor::from_owned(out, [m, w], 2)
    }

    /// Column slice `[from, to)` of a rank-2 tensor.
    pub fn slice_cols(&self, from: usize, to: usize) -> Tensor {
        assert_eq!(self.rank, 2, "slice_cols needs rank 2, got {:?}", self.shape());
        assert!(
            from <= to && to <= self.shape[1],
            "slice_cols [{from},{to}) of {:?}",
            self.shape()
        );
        let (m, n, w) = (self.shape[0], self.shape[1], to - from);
        let src = &self.data[..];
        let mut out = pool::take_any(m * w);
        let band = |dst: &mut [f64], i0: usize| {
            for (ri, row) in dst.chunks_mut(w).enumerate() {
                let i = i0 + ri;
                row.copy_from_slice(&src[i * n + from..i * n + to]);
            }
        };
        if !pool::should_parallelize(m * w, pool::copy_min()) {
            band(&mut out, 0);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |i0, i1| {
                // Safety: row bands are disjoint and within `out`.
                band(unsafe { ptr.slice(i0 * w, i1 * w) }, i0);
            });
        }
        Tensor::from_owned(out, [m, w], 2)
    }

    /// Embeds this matrix as columns `[from, from+cols)` of a `total`-column
    /// zero matrix.
    pub fn pad_cols(&self, from: usize, total: usize) -> Tensor {
        assert_eq!(self.rank, 2, "pad_cols needs rank 2, got {:?}", self.shape());
        let (m, w) = (self.shape[0], self.shape[1]);
        assert!(from + w <= total, "pad_cols {from}+{w} > {total}");
        let src = &self.data[..];
        let mut out = pool::take_zeroed(m * total);
        let band = |dst: &mut [f64], i0: usize| {
            for (ri, row) in dst.chunks_mut(total).enumerate() {
                let i = i0 + ri;
                row[from..from + w].copy_from_slice(&src[i * w..(i + 1) * w]);
            }
        };
        if !pool::should_parallelize(m * total, pool::copy_min()) {
            band(&mut out, 0);
        } else {
            let rows_per_chunk = m.div_ceil(pool::lanes() * 4).max(1);
            let ptr = SendMutPtr(out.as_mut_ptr());
            pool::for_each_range(m, rows_per_chunk, |i0, i1| {
                // Safety: row bands are disjoint and within `out`.
                band(unsafe { ptr.slice(i0 * total, i1 * total) }, i0);
            });
        }
        Tensor::from_owned(out, [m, total], 2)
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let (s, rank) = normalize_shape(shape);
        assert_eq!(
            s[0] * s[1],
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape(),
            shape
        );
        Tensor { shape: s, rank, data: Arc::clone(&self.data) }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flat buffer.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Copies the flat buffer out as a `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.to_vec()
    }

    /// Serializes the flat buffer as little-endian IEEE-754 bytes (row-major),
    /// the on-disk representation used by model snapshots. Lossless: every
    /// bit pattern round-trips through [`Tensor::from_le_bytes`], including
    /// negative zero and NaN payloads.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 8);
        for &x in self.data.iter() {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Rebuilds a tensor from [`Tensor::to_le_bytes`] output and an explicit
    /// shape. Returns `None` when the byte count does not match the shape
    /// (callers turn this into their own typed error).
    pub fn from_le_bytes(bytes: &[u8], shape: &[usize]) -> Option<Self> {
        let (s, rank) = normalize_shape(shape);
        if bytes.len() != s[0] * s[1] * 8 {
            return None;
        }
        let data: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Some(Self { shape: s, rank, data: Arc::new(data) })
    }

    /// True when every element of `other` is bit-identical to this tensor's
    /// (distinguishes `-0.0` from `0.0` and compares NaNs by payload, unlike
    /// `==`). Shapes must also agree.
    pub fn bit_eq(&self, other: &Tensor) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(other.data.iter()).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape())?;
        if self.numel() <= 8 {
            write!(f, " {:?}", &self.data[..])
        } else {
            write!(f, " [{:.4}, {:.4}, …]", self.data[0], self.data[1])
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

fn normalize_shape(shape: &[usize]) -> ([usize; 2], u8) {
    match shape.len() {
        0 => ([1, 1], 0),
        1 => ([shape[0], 1], 1),
        2 => ([shape[0], shape[1]], 2),
        n => panic!("tensors of rank {n} are not supported (shape {shape:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.item(), 3.5);
        assert_eq!(t.shape(), &[1]);
        assert_eq!(t.numel(), 1);
    }

    #[test]
    fn from_vec_shapes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        let v = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(v.shape(), &[2]);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 3]);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 4]);
        assert_eq!(c.at(0, 0), 2.0);
        assert_eq!(c.at(1, 3), 9.0);
        assert_eq!(c.at(2, 0), 8.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at(2, 1), a.at(1, 2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn map_zip() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = a.map(f64::abs);
        assert_eq!(b.to_vec(), vec![1.0, 2.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.to_vec(), vec![2.0, 0.0]);
    }

    #[test]
    fn randn_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[100, 100], 2.0, &mut rng);
        let mean = t.sum() / t.numel() as f64;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / t.numel() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshape(&[4]);
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.to_vec(), a.to_vec());
    }

    #[test]
    fn norm_and_diff() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = Tensor::from_vec(vec![3.0, 4.5], &[2]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }
}
