//! Dense row-major `f64` tensors.
//!
//! The tensor type underlying the autodiff tape. Tensors are immutable once
//! built (data behind an [`Arc`]), which makes storing them in tape nodes and
//! cloning them across the optimizer cheap. All shape errors panic with a
//! descriptive message: in this workspace tensor shapes are static properties
//! of model architecture, so a mismatch is always a programming error, never
//! recoverable input error.

use std::fmt;
use std::sync::Arc;

/// A dense row-major tensor of `f64` values.
///
/// Rank 0 is represented as shape `[1]` (a scalar), rank 1 as `[n]`, rank 2 as
/// `[rows, cols]`. Higher ranks are not needed by any model in this workspace.
#[derive(Clone)]
pub struct Tensor {
    shape: [usize; 2],
    rank: u8,
    data: Arc<Vec<f64>>,
}

impl Tensor {
    /// Builds a tensor from a flat vector and an explicit shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`, or if the
    /// shape has more than two dimensions.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> Self {
        let (s, rank) = normalize_shape(shape);
        let numel: usize = s[0] * s[1];
        assert_eq!(
            data.len(),
            numel,
            "tensor data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { shape: s, rank, data: Arc::new(data) }
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(v: f64) -> Self {
        Self { shape: [1, 1], rank: 0, data: Arc::new(vec![v]) }
    }

    /// A tensor filled with `v`.
    pub fn full(shape: &[usize], v: f64) -> Self {
        let (s, rank) = normalize_shape(shape);
        Self { shape: s, rank, data: Arc::new(vec![v; s[0] * s[1]]) }
    }

    /// A zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor with entries drawn i.i.d. from `N(0, std^2)` using `rng`.
    pub fn randn<R: rand::Rng>(shape: &[usize], std: f64, rng: &mut R) -> Self {
        let (s, rank) = normalize_shape(shape);
        let n = s[0] * s[1];
        // Box-Muller transform; avoids a rand_distr dependency in this crate.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { shape: s, rank, data: Arc::new(data) }
    }

    /// The logical shape (`[]`-like scalars report `[1]`).
    pub fn shape(&self) -> &[usize] {
        match self.rank {
            0 | 1 => &self.shape[..1],
            _ => &self.shape[..2],
        }
    }

    /// Number of rows when interpreted as a matrix (rank-1 tensors are `[n]`
    /// row counts of `n`; scalars are 1).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns when interpreted as a matrix (1 for rank ≤ 1).
    pub fn cols(&self) -> usize {
        self.shape[1]
    }

    /// The tensor rank: 0, 1, or 2.
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The flat element slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor {:?}", self.shape());
        self.data[0]
    }

    /// Element at `(row, col)` of a rank-2 tensor.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.shape[0] && col < self.shape[1]);
        self.data[row * self.shape[1] + col]
    }

    /// Element `i` of the flat buffer.
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape,
            rank: self.rank,
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    /// Elementwise combination with another tensor of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor {
            shape: self.shape,
            rank: self.rank,
            data: Arc::new(
                self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            ),
        }
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree or either operand is not rank 2.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank, 2, "matmul lhs must be rank 2, got {:?}", self.shape());
        assert_eq!(other.rank, 2, "matmul rhs must be rank 2, got {:?}", other.shape());
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} x {:?}", self.shape(), other.shape());
        let a = &self.data;
        let b = &other.data;
        let mut out = vec![0.0; m * n];
        // ikj loop order: streams through b rows, autovectorizes well.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor { shape: [m, n], rank: 2, data: Arc::new(out) }
    }

    /// Matrix transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank, 2, "transpose needs rank 2, got {:?}", self.shape());
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: [n, m], rank: 2, data: Arc::new(out) }
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let (s, rank) = normalize_shape(shape);
        assert_eq!(
            s[0] * s[1],
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape(),
            shape
        );
        Tensor { shape: s, rank, data: Arc::clone(&self.data) }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flat buffer.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Copies the flat buffer out as a `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.to_vec()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape())?;
        if self.numel() <= 8 {
            write!(f, " {:?}", &self.data[..])
        } else {
            write!(f, " [{:.4}, {:.4}, …]", self.data[0], self.data[1])
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

fn normalize_shape(shape: &[usize]) -> ([usize; 2], u8) {
    match shape.len() {
        0 => ([1, 1], 0),
        1 => ([shape[0], 1], 1),
        2 => ([shape[0], shape[1]], 2),
        n => panic!("tensors of rank {n} are not supported (shape {shape:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.item(), 3.5);
        assert_eq!(t.shape(), &[1]);
        assert_eq!(t.numel(), 1);
    }

    #[test]
    fn from_vec_shapes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        let v = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(v.shape(), &[2]);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 3]);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 4]);
        assert_eq!(c.at(0, 0), 2.0);
        assert_eq!(c.at(1, 3), 9.0);
        assert_eq!(c.at(2, 0), 8.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at(2, 1), a.at(1, 2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn map_zip() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = a.map(f64::abs);
        assert_eq!(b.to_vec(), vec![1.0, 2.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.to_vec(), vec![2.0, 0.0]);
    }

    #[test]
    fn randn_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[100, 100], 2.0, &mut rng);
        let mean = t.sum() / t.numel() as f64;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / t.numel() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshape(&[4]);
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.to_vec(), a.to_vec());
    }

    #[test]
    fn norm_and_diff() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = Tensor::from_vec(vec![3.0, 4.5], &[2]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }
}
