//! [`Var`]: a lightweight handle to a tape node with an ergonomic op API.

use std::sync::Arc;

use crate::tape::{NodeId, Op, Tape};
use crate::tensor::Tensor;

/// A differentiable variable: a copyable handle to a node on a [`Tape`].
///
/// All arithmetic on `Var`s records new nodes on the owning tape. Handles are
/// `Copy`; they stay valid until [`Tape::reset`] is called.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) id: NodeId,
}

#[allow(clippy::should_implement_trait)] // named methods chain better; operator impls are also provided
impl<'t> Var<'t> {
    /// The node id on the owning tape.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The owning tape.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// The current forward value.
    pub fn value(&self) -> Tensor {
        self.tape.value(self.id)
    }

    /// The shape of the forward value.
    pub fn shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }

    /// Scalar value of a one-element variable.
    pub fn item(&self) -> f64 {
        self.value().item()
    }

    // ---- binary elementwise -------------------------------------------------

    /// Elementwise addition.
    pub fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.apply(Op::Add(self.id, rhs.id))
    }
    /// Elementwise subtraction.
    pub fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.apply(Op::Sub(self.id, rhs.id))
    }
    /// Elementwise multiplication.
    pub fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.apply(Op::Mul(self.id, rhs.id))
    }
    /// Elementwise division.
    pub fn div(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.apply(Op::Div(self.id, rhs.id))
    }

    // ---- unary --------------------------------------------------------------

    /// Elementwise negation.
    pub fn neg(self) -> Var<'t> {
        self.tape.apply(Op::Neg(self.id))
    }
    /// Adds a scalar constant elementwise.
    pub fn add_scalar(self, c: f64) -> Var<'t> {
        self.tape.apply(Op::AddScalar(self.id, c))
    }
    /// Multiplies by a scalar constant elementwise.
    pub fn scale(self, c: f64) -> Var<'t> {
        self.tape.apply(Op::MulScalar(self.id, c))
    }
    /// Elementwise power with a constant exponent.
    pub fn pow_scalar(self, p: f64) -> Var<'t> {
        self.tape.apply(Op::PowScalar(self.id, p))
    }
    /// Elementwise square (recorded as `x * x` so second derivatives flow).
    pub fn square(self) -> Var<'t> {
        self.mul(self)
    }
    /// Elementwise exponential.
    pub fn exp(self) -> Var<'t> {
        self.tape.apply(Op::Exp(self.id))
    }
    /// Elementwise natural logarithm.
    pub fn ln(self) -> Var<'t> {
        self.tape.apply(Op::Ln(self.id))
    }
    /// Elementwise square root.
    pub fn sqrt(self) -> Var<'t> {
        self.tape.apply(Op::Sqrt(self.id))
    }
    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Var<'t> {
        self.tape.apply(Op::Sigmoid(self.id))
    }
    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'t> {
        self.tape.apply(Op::Tanh(self.id))
    }
    /// Rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        self.tape.apply(Op::Relu(self.id))
    }
    /// Scaled exponential linear unit (SELU), as used by the CA loss (eq. 5).
    pub fn selu(self) -> Var<'t> {
        self.tape.apply(Op::Selu(self.id))
    }

    // ---- linear algebra -----------------------------------------------------

    /// Matrix product (both operands rank 2).
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.apply(Op::Matmul(self.id, rhs.id))
    }
    /// Matrix transpose.
    pub fn t(self) -> Var<'t> {
        self.tape.apply(Op::Transpose(self.id))
    }
    /// Shape reinterpretation (element count preserved).
    pub fn reshape(self, shape: &[usize]) -> Var<'t> {
        self.tape.apply(Op::Reshape(self.id, shape.to_vec()))
    }

    // ---- reductions and broadcasts -------------------------------------------

    /// Sum of all elements, producing a scalar variable.
    pub fn sum(self) -> Var<'t> {
        self.tape.apply(Op::Sum(self.id))
    }
    /// Mean of all elements.
    pub fn mean(self) -> Var<'t> {
        let n = self.value().numel() as f64;
        self.sum().scale(1.0 / n)
    }
    /// Row sums of a matrix: `[m, n] -> [m]`.
    pub fn sum_rows(self) -> Var<'t> {
        self.tape.apply(Op::SumRows(self.id))
    }
    /// Column sums of a matrix: `[m, n] -> [n]`.
    pub fn sum_cols(self) -> Var<'t> {
        self.tape.apply(Op::SumCols(self.id))
    }
    /// Broadcasts a scalar to `shape`.
    pub fn expand(self, shape: &[usize]) -> Var<'t> {
        self.tape.apply(Op::ExpandScalar(self.id, shape.to_vec()))
    }
    /// Tiles a vector `[m]` into an `[m, n]` matrix column-wise.
    pub fn broadcast_cols(self, n: usize) -> Var<'t> {
        self.tape.apply(Op::BroadcastCols(self.id, n))
    }
    /// Tiles a vector `[n]` into an `[m, n]` matrix row-wise.
    pub fn broadcast_rows(self, m: usize) -> Var<'t> {
        self.tape.apply(Op::BroadcastRows(self.id, m))
    }

    // ---- gather / scatter -----------------------------------------------------

    /// Gathers rows `idx` of a matrix.
    pub fn gather_rows(self, idx: Arc<Vec<usize>>) -> Var<'t> {
        self.tape.apply(Op::GatherRows(self.id, idx))
    }
    /// Scatter-adds the rows of this `[k, n]` matrix into an `[m, n]` zero
    /// matrix at row positions `idx` (duplicates accumulate).
    pub fn scatter_add_rows(self, idx: Arc<Vec<usize>>, m: usize) -> Var<'t> {
        self.tape.apply(Op::ScatterAddRows(self.id, idx, m))
    }
    /// Gathers elements `idx` of a vector.
    pub fn gather_elems(self, idx: Arc<Vec<usize>>) -> Var<'t> {
        self.tape.apply(Op::GatherElems(self.id, idx))
    }
    /// Scatter-adds this `[k]` vector into an `[n]` zero vector at `idx`.
    pub fn scatter_add_elems(self, idx: Arc<Vec<usize>>, n: usize) -> Var<'t> {
        self.tape.apply(Op::ScatterAddElems(self.id, idx, n))
    }

    // ---- structural -----------------------------------------------------------

    /// Concatenates two matrices along columns.
    pub fn concat_cols(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.apply(Op::ConcatCols(self.id, rhs.id))
    }
    /// Column slice `[from, to)`.
    pub fn slice_cols(self, from: usize, to: usize) -> Var<'t> {
        self.tape.apply(Op::SliceCols(self.id, from, to))
    }
    /// Embeds this matrix as columns `[from, from+cols)` of a `total`-column
    /// zero matrix.
    pub fn pad_cols(self, from: usize, total: usize) -> Var<'t> {
        self.tape.apply(Op::PadCols(self.id, from, total))
    }

    // ---- composed helpers -------------------------------------------------------

    /// Inner product of two vectors, producing a scalar variable.
    pub fn dot(self, rhs: Var<'t>) -> Var<'t> {
        self.mul(rhs).sum()
    }

    /// Row-wise dot product of two `[m, n]` matrices, producing `[m]`.
    pub fn rowwise_dot(self, rhs: Var<'t>) -> Var<'t> {
        self.mul(rhs).sum_rows()
    }

    /// Detaches the current value into a constant leaf (gradient stops here).
    pub fn detach(self) -> Var<'t> {
        self.tape.constant(self.value())
    }
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(#{}, {:?})", self.id, self.value())
    }
}

impl<'t> std::ops::Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Self) -> Self::Output {
        Var::add(self, rhs)
    }
}
impl<'t> std::ops::Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Self) -> Self::Output {
        Var::sub(self, rhs)
    }
}
impl<'t> std::ops::Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Self) -> Self::Output {
        Var::mul(self, rhs)
    }
}
impl<'t> std::ops::Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Self) -> Self::Output {
        Var::div(self, rhs)
    }
}
impl<'t> std::ops::Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Self::Output {
        Var::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_forward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert_eq!((a + b).value().to_vec(), vec![4.0, 6.0]);
        assert_eq!((a - b).value().to_vec(), vec![-2.0, -2.0]);
        assert_eq!((a * b).value().to_vec(), vec![3.0, 8.0]);
        assert_eq!((a / b).value().to_vec(), vec![1.0 / 3.0, 0.5]);
        assert_eq!((-a).value().to_vec(), vec![-1.0, -2.0]);
    }

    #[test]
    fn reductions_and_broadcast() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        assert_eq!(m.sum().item(), 21.0);
        assert_eq!(m.sum_rows().value().to_vec(), vec![6.0, 15.0]);
        assert_eq!(m.sum_cols().value().to_vec(), vec![5.0, 7.0, 9.0]);
        assert!((m.mean().item() - 3.5).abs() < 1e-12);
        let v = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(v.broadcast_cols(3).value().to_vec(), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let w = tape.leaf(Tensor::from_vec(vec![7.0, 8.0], &[2]));
        assert_eq!(w.broadcast_rows(2).value().to_vec(), vec![7.0, 8.0, 7.0, 8.0]);
        let s = tape.scalar(2.5);
        assert_eq!(s.expand(&[2, 2]).value().to_vec(), vec![2.5; 4]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec((0..12).map(f64::from).collect::<Vec<_>>(), &[4, 3]));
        let idx = Arc::new(vec![2usize, 0, 2]);
        let g = m.gather_rows(Arc::clone(&idx));
        assert_eq!(g.value().to_vec(), vec![6.0, 7.0, 8.0, 0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
        let s = g.scatter_add_rows(idx, 4);
        // Row 2 was gathered twice, so it accumulates twice.
        assert_eq!(s.value().at(2, 0), 12.0);
        assert_eq!(s.value().at(0, 1), 1.0);
        assert_eq!(s.value().at(1, 0), 0.0);
    }

    #[test]
    fn concat_slice_pad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], &[2, 1]));
        let c = a.concat_cols(b);
        assert_eq!(c.value().shape(), &[2, 3]);
        assert_eq!(c.value().to_vec(), vec![1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        let s = c.slice_cols(1, 3);
        assert_eq!(s.value().to_vec(), vec![2.0, 5.0, 4.0, 6.0]);
        let p = b.pad_cols(1, 3);
        assert_eq!(p.value().to_vec(), vec![0.0, 5.0, 0.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn rowwise_dot_matches_manual() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        assert_eq!(a.rowwise_dot(b).value().to_vec(), vec![17.0, 53.0]);
    }

    #[test]
    fn activations_forward() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]));
        let r = x.relu().value().to_vec();
        assert_eq!(r, vec![0.0, 0.0, 2.0]);
        let s = x.sigmoid().value();
        assert!((s.get(1) - 0.5).abs() < 1e-12);
        let selu = x.selu().value();
        assert!(selu.get(0) < 0.0 && selu.get(2) > 2.0);
        // SELU(0) = 0.
        assert_eq!(selu.get(1), 0.0);
    }

    #[test]
    fn detach_stops_at_constant() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(3.0));
        let d = x.square().detach();
        assert_eq!(d.item(), 9.0);
        // The detached node is a leaf: gradient of d wrt x must be zero.
        let g = tape.grad(d, &[x]);
        assert_eq!(g[0].to_vec(), vec![0.0]);
    }
}
