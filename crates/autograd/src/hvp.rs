//! Hessian-vector and mixed second-derivative products.
//!
//! Two interchangeable mechanisms:
//!
//! * [`hvp_exact`] / [`mixed_vjp_exact`] — double backward through the tape.
//!   Because every VJP in [`crate::backward`] is recorded as ordinary tape
//!   ops, differentiating a gradient node is exact.
//! * [`HvpMode::FiniteDiff`] — central differences of a user-supplied gradient
//!   closure, used as an independent cross-check in tests and as a fallback
//!   for extremely deep unrolled tapes.

use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::tape::Tape;
use crate::tensor::Tensor;
use crate::var::Var;

/// Second-order products computed (exact double backward or mixed VJP).
static HVP_PRODUCTS: telemetry::Counter = telemetry::Counter::new("autograd.hvp.products");

/// Which Hessian-vector product mechanism to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HvpMode {
    /// Exact double backward through the recorded tape (default).
    #[default]
    Exact,
    /// Central finite differences of the first-order gradient.
    FiniteDiff,
}

/// Exact Hessian-vector product `(∂²L/∂x²)·v` via double backward.
///
/// `loss` must be a scalar node, `x` a leaf it depends on, and `v` a tensor
/// with the same shape as `x`'s value.
pub fn hvp_exact(tape: &Tape, loss: Var<'_>, x: Var<'_>, v: &Tensor) -> Tensor {
    let _span = telemetry::span("hvp");
    HVP_PRODUCTS.incr();
    let loss = rebind(tape, loss);
    let x = rebind(tape, x);
    let g = tape.grad_vars(loss, &[x])[0];
    let v_const = tape.constant(v.clone());
    let gv = g.mul(v_const).sum();
    tape.grad(gv, &[x]).remove(0)
}

/// Exact mixed product `vᵀ·(∂²L/∂y∂x)` via double backward: differentiates
/// `⟨∂L/∂x, v⟩` with respect to `y`.
pub fn mixed_vjp_exact(tape: &Tape, loss: Var<'_>, x: Var<'_>, y: Var<'_>, v: &Tensor) -> Tensor {
    let _span = telemetry::span("mixed_vjp");
    HVP_PRODUCTS.incr();
    let loss = rebind(tape, loss);
    let x = rebind(tape, x);
    let y = rebind(tape, y);
    let g = tape.grad_vars(loss, &[x])[0];
    let v_const = tape.constant(v.clone());
    let gv = g.mul(v_const).sum();
    tape.grad(gv, &[y]).remove(0)
}

/// Finite-difference Hessian-vector product from a gradient closure.
///
/// `grad_at` must return `∂L/∂x` evaluated at the given `x`. The product is
/// the central difference `(g(x+εv) − g(x−εv)) / 2ε` with `ε` scaled to the
/// magnitude of `v`.
pub fn hvp_finite_diff(
    mut grad_at: impl FnMut(&Tensor) -> Tensor,
    x: &Tensor,
    v: &Tensor,
) -> Tensor {
    let vnorm = v.norm();
    if vnorm == 0.0 {
        return Tensor::zeros(x.shape());
    }
    let eps = 1e-4 / vnorm.max(1e-12);
    let xp = x.zip(v, |a, b| a + eps * b);
    let xm = x.zip(v, |a, b| a - eps * b);
    let gp = grad_at(&xp);
    let gm = grad_at(&xm);
    gp.zip(&gm, |a, b| (a - b) / (2.0 * eps))
}

fn rebind<'t>(tape: &'t Tape, v: Var<'_>) -> Var<'t> {
    Var { tape, id: v.id() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hvp_quadratic_exact() {
        // L = ½ xᵀ A x with A = diag(2, 6) (via elementwise) → H·v = A·v.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, -1.0], &[2]));
        let a = tape.constant(Tensor::from_vec(vec![2.0, 6.0], &[2]));
        let loss = x.square().mul(a).sum().scale(0.5);
        let v = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let hv = hvp_exact(&tape, loss, x, &v);
        assert!((hv.get(0) - 2.0).abs() < 1e-10);
        assert!((hv.get(1) - 12.0).abs() < 1e-10);
    }

    #[test]
    fn hvp_nonquadratic_matches_finite_diff() {
        // L = sum(exp(x)·x²)
        let build = |xv: &Tensor| -> (Tape, Vec<f64>) {
            let tape = Tape::new();
            let x = tape.leaf(xv.clone());
            let loss = x.exp().mul(x.square()).sum();
            let g = tape.grad(loss, &[x]).remove(0);
            (tape, g.to_vec())
        };
        let x0 = Tensor::from_vec(vec![0.3, -0.7, 1.1], &[3]);
        let v = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);

        // Exact.
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = x.exp().mul(x.square()).sum();
        let hv = hvp_exact(&tape, loss, x, &v);

        // Finite difference of the gradient closure.
        let hv_fd = hvp_finite_diff(|xt| Tensor::from_vec(build(xt).1, xt.shape()), &x0, &v);
        assert!(
            hv.max_abs_diff(&hv_fd) < 1e-5,
            "exact {:?} vs fd {:?}",
            hv.to_vec(),
            hv_fd.to_vec()
        );
    }

    #[test]
    fn mixed_vjp_bilinear() {
        // L = xᵀ diag(c) y → ∂L/∂x = c∘y, and vᵀ ∂²L/∂y∂x = v∘c.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = tape.leaf(Tensor::from_vec(vec![-3.0, 4.0], &[2]));
        let c = tape.constant(Tensor::from_vec(vec![5.0, 7.0], &[2]));
        let loss = x.mul(c).mul(y).sum();
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let out = mixed_vjp_exact(&tape, loss, x, y, &v);
        assert!((out.get(0) - 5.0).abs() < 1e-10);
        assert!((out.get(1) + 7.0).abs() < 1e-10);
    }

    #[test]
    fn hvp_zero_vector_is_zero() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let loss = x.square().sum();
        let hv = hvp_exact(&tape, loss, x, &Tensor::zeros(&[2]));
        assert_eq!(hv.to_vec(), vec![0.0, 0.0]);
        let hv_fd = hvp_finite_diff(|_| Tensor::ones(&[2]), &x.value(), &Tensor::zeros(&[2]));
        assert_eq!(hv_fd.to_vec(), vec![0.0, 0.0]);
    }
}
