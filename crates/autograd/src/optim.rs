//! Optimizers over plain tensors.
//!
//! Models in this workspace hold their parameters as [`Tensor`]s and rebuild
//! tape leaves per epoch (the tape is reset between steps to bound memory).
//! These optimizers therefore operate on `(param, grad)` tensor pairs rather
//! than on tape nodes. The *differentiable* inner loop of PDS does not use
//! them — it updates parameter `Var`s directly so gradients flow through the
//! training trajectory.

use crate::tensor::Tensor;

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// L2 weight-decay coefficient (λ in eq. 1); 0 disables it.
    pub weight_decay: f64,
}

impl Sgd {
    /// A plain SGD optimizer without weight decay.
    pub fn new(lr: f64) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    /// Applies one update: `p ← p − lr·(g + wd·p)`.
    pub fn step(&self, param: &mut Tensor, grad: &Tensor) {
        let lr = self.lr;
        let wd = self.weight_decay;
        *param = param.zip(grad, |p, g| p - lr * (g + wd * p));
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with per-parameter moment state.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// L2 weight decay; 0 disables it.
    pub weight_decay: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// An Adam optimizer tracking `n_params` parameter tensors.
    pub fn new(lr: f64, n_params: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: vec![Vec::new(); n_params],
            v: vec![Vec::new(); n_params],
        }
    }

    /// Advances the shared timestep. Call once per optimization step, before
    /// the per-parameter [`Adam::step`] calls of that step.
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Applies the Adam update to parameter slot `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or [`Adam::tick`] has never been called.
    pub fn step(&mut self, i: usize, param: &mut Tensor, grad: &Tensor) {
        assert!(self.t > 0, "call Adam::tick() before step()");
        let n = param.numel();
        if self.m[i].is_empty() {
            self.m[i] = vec![0.0; n];
            self.v[i] = vec![0.0; n];
        }
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let gdata = grad.data();
        let pdata = param.data();
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let g = gdata[k] + self.weight_decay * pdata[k];
            self.m[i][k] = b1 * self.m[i][k] + (1.0 - b1) * g;
            self.v[i][k] = b2 * self.v[i][k] + (1.0 - b2) * g * g;
            let mhat = self.m[i][k] / bc1;
            let vhat = self.v[i][k] / bc2;
            out.push(pdata[k] - self.lr * mhat / (vhat.sqrt() + self.eps));
        }
        *param = Tensor::from_vec(out, param.shape());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_quadratic() {
        // minimize f(x) = (x-3)²
        let mut x = Tensor::scalar(0.0);
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = Tensor::scalar(2.0 * (x.item() - 3.0));
            opt.step(&mut x, &g);
        }
        assert!((x.item() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_weight_decay_shrinks() {
        let mut x = Tensor::scalar(10.0);
        let opt = Sgd { lr: 0.1, weight_decay: 1.0 };
        let zero = Tensor::scalar(0.0);
        for _ in 0..100 {
            opt.step(&mut x, &zero);
        }
        assert!(x.item() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut x = Tensor::scalar(0.0);
        let mut opt = Adam::new(0.3, 1);
        for _ in 0..300 {
            opt.tick();
            let g = Tensor::scalar(2.0 * (x.item() - 3.0));
            opt.step(0, &mut x, &g);
        }
        assert!((x.item() - 3.0).abs() < 1e-3, "x = {}", x.item());
    }

    #[test]
    #[should_panic(expected = "tick")]
    fn adam_requires_tick() {
        let mut x = Tensor::scalar(0.0);
        let mut opt = Adam::new(0.1, 1);
        opt.step(0, &mut x, &Tensor::scalar(1.0));
    }
}
