//! Numerical differentiation utilities for verifying analytic gradients.
//!
//! These are deliberately slow reference implementations used by unit and
//! property tests throughout the workspace (the "gradient = finite
//! difference" invariant of DESIGN.md §7).

use crate::tensor::Tensor;

/// Central-difference gradient of a scalar function of a tensor.
pub fn numeric_grad(mut f: impl FnMut(&Tensor) -> f64, x: &Tensor, eps: f64) -> Tensor {
    let base = x.to_vec();
    let mut out = Vec::with_capacity(base.len());
    for i in 0..base.len() {
        let mut plus = base.clone();
        let mut minus = base.clone();
        plus[i] += eps;
        minus[i] -= eps;
        let fp = f(&Tensor::from_vec(plus, x.shape()));
        let fm = f(&Tensor::from_vec(minus, x.shape()));
        out.push((fp - fm) / (2.0 * eps));
    }
    Tensor::from_vec(out, x.shape())
}

/// Asserts that `analytic` and the numeric gradient of `f` at `x` agree to a
/// mixed absolute/relative tolerance.
///
/// # Panics
/// Panics with a diagnostic message when any component disagrees.
pub fn assert_grad_close(f: impl FnMut(&Tensor) -> f64, x: &Tensor, analytic: &Tensor, tol: f64) {
    let numeric = numeric_grad(f, x, 1e-5);
    for i in 0..x.numel() {
        let (a, n) = (analytic.get(i), numeric.get(i));
        let denom = 1.0_f64.max(a.abs()).max(n.abs());
        assert!(
            ((a - n) / denom).abs() < tol,
            "gradient mismatch at index {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn numeric_grad_of_quadratic() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let g = numeric_grad(|t| t.data().iter().map(|v| v * v).sum(), &x, 1e-5);
        assert!((g.get(0) - 2.0).abs() < 1e-6);
        assert!((g.get(1) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn tape_grad_matches_numeric_on_composite() {
        // f(x) = sum(sigmoid(x)·x + exp(-x²))
        let f = |t: &Tensor| -> f64 {
            t.data().iter().map(|&v| v / (1.0 + (-v).exp()) + (-v * v).exp()).sum()
        };
        let x0 = Tensor::from_vec(vec![0.5, -1.2, 2.0], &[3]);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = x.sigmoid().mul(x).add(x.square().neg().exp()).sum();
        let g = tape.grad(loss, &[x]).remove(0);
        assert_grad_close(f, &x0, &g, 1e-5);
    }
}
