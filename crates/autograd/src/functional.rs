//! Composed differentiable functions built from primitive tape ops.

use crate::var::Var;

/// Mean-squared-error loss between a prediction vector and a target vector.
///
/// Both inputs must have identical shapes; the result is a scalar variable.
pub fn mse<'t>(pred: Var<'t>, target: Var<'t>) -> Var<'t> {
    pred.sub(target).square().mean()
}

/// Sum of squared elements — the `‖θ‖²` regularizer of eq. (1).
pub fn l2<'t>(x: Var<'t>) -> Var<'t> {
    x.square().sum()
}

/// Row-wise softmax of an `[m, n]` matrix.
///
/// The per-row maximum is subtracted as a *detached* constant for numerical
/// stability, which leaves gradients unchanged (softmax is shift-invariant).
pub fn softmax_rows(x: Var<'_>) -> Var<'_> {
    let v = x.value();
    let (m, n) = (v.rows(), v.cols());
    let mut maxes = vec![f64::NEG_INFINITY; m];
    for (i, mx) in maxes.iter_mut().enumerate() {
        for j in 0..n {
            *mx = mx.max(v.at(i, j));
        }
    }
    let max_const =
        x.tape().constant(crate::tensor::Tensor::from_vec(maxes, &[m])).broadcast_cols(n);
    let e = x.sub(max_const).exp();
    let denom = e.sum_rows().broadcast_cols(n);
    e.div(denom)
}

/// Softmax of a vector `[n]` (detached-max stabilized).
pub fn softmax_vec(x: Var<'_>) -> Var<'_> {
    let v = x.value();
    let max = v.data().iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let e = x.add_scalar(-max).exp();
    let denom = e.sum().expand(&[v.numel()]);
    e.div(denom)
}

/// Normalizes each row of an `[m, n]` matrix to unit L2 norm (plus `eps`).
pub fn normalize_rows(x: Var<'_>, eps: f64) -> Var<'_> {
    let n = x.value().cols();
    let norms = x.square().sum_rows().add_scalar(eps).sqrt();
    x.div(norms.broadcast_cols(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    #[test]
    fn mse_known_value() {
        let tape = Tape::new();
        let p = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let t = tape.constant(Tensor::from_vec(vec![3.0, 2.0], &[2]));
        assert!((mse(p, t).item() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]));
        let s = softmax_rows(x).value();
        for i in 0..2 {
            let row: f64 = (0..3).map(|j| s.at(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-12);
        }
        // Monotonicity within a row.
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
    }

    #[test]
    fn softmax_stability_large_logits() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]));
        let s = softmax_rows(x).value();
        assert!(s.all_finite());
        assert!((s.at(0, 0) + s.at(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_gradient_matches_analytic() {
        // For softmax s over a 2-vector and f = s₀, ∂f/∂x₀ = s₀(1-s₀).
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, -0.2], &[2]));
        let s = softmax_vec(x);
        let f = s.gather_elems(std::sync::Arc::new(vec![0])).sum();
        let g = tape.grad(f, &[x]);
        let sv = s.value();
        let expect = sv.get(0) * (1.0 - sv.get(0));
        assert!((g[0].get(0) - expect).abs() < 1e-9);
        assert!((g[0].get(1) + sv.get(0) * sv.get(1)).abs() < 1e-9);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]));
        let n = normalize_rows(x, 0.0).value();
        for i in 0..2 {
            let norm: f64 = (0..2).map(|j| n.at(i, j) * n.at(i, j)).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }
}
