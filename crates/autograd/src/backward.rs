//! Reverse-mode differentiation.
//!
//! [`Tape::grad_vars`] walks the tape from an output node backwards,
//! accumulating adjoints. Every vector-Jacobian product is *itself built from
//! tape operations*, so the returned gradients are ordinary differentiable
//! [`Var`]s: calling `grad_vars` on an expression built from them yields exact
//! second-order derivatives. This is the mechanism behind the Hessian-vector
//! products of Algorithm 1, step 9 (`ξ ∂²L^q/∂X̂^q² = ∂L^p/∂X̂^q`).
//!
//! Piecewise-linear activations (`relu`, and the switching mask of `selu`)
//! treat their activation pattern as a constant, which matches the
//! almost-everywhere derivative and is the standard convention.

use crate::tape::{Op, Tape, SELU_ALPHA, SELU_LAMBDA};
use crate::tensor::Tensor;
use crate::var::Var;

impl Tape {
    /// Differentiable gradients of `output` with respect to each `wrt` node.
    ///
    /// If `output` is not scalar the seed is a ones tensor, i.e. the gradient
    /// of `output.sum()`. Nodes unreachable from `output` get a zero gradient
    /// of the appropriate shape.
    pub fn grad_vars<'t>(&'t self, output: Var<'t>, wrt: &[Var<'t>]) -> Vec<Var<'t>> {
        let n = output.id + 1;
        let mut adj: Vec<Option<Var<'t>>> = vec![None; n];
        let out_shape = output.value().shape().to_vec();
        adj[output.id] = Some(self.constant(Tensor::ones(&out_shape)));

        for id in (0..n).rev() {
            let Some(g) = adj[id] else { continue };
            let op = self.op(id);
            let out = Var { tape: self, id };
            self.push_vjps(&op, out, g, &mut adj);
        }

        wrt.iter()
            .map(|v| {
                adj.get(v.id)
                    .copied()
                    .flatten()
                    .unwrap_or_else(|| self.constant(Tensor::zeros(v.value().shape())))
            })
            .collect()
    }

    /// Differentiable gradients of several outputs in **one** reverse scan.
    ///
    /// Returns `result[s][w]` = ∂outputs[s]/∂wrt[w]. Each seed gets its own
    /// adjoint array, so the seeds never mix: `result[s]` is bitwise identical
    /// to a separate [`Tape::grad_vars`] call on `outputs[s]` (the VJP nodes a
    /// seed creates depend only on *forward* node values, never on other
    /// adjoints, so interleaved construction changes node ids but not one
    /// numeric value). This matters for the multilevel planner, where the
    /// followers' losses share one poisoned-data-set build and therefore one
    /// tape: batching their backward passes walks that shared prefix once
    /// instead of once per follower, without introducing cross-follower terms.
    pub fn grad_vars_multi<'t>(
        &'t self,
        outputs: &[Var<'t>],
        wrt: &[Var<'t>],
    ) -> Vec<Vec<Var<'t>>> {
        let n = outputs.iter().map(|o| o.id + 1).max().unwrap_or(0);
        let mut adjs: Vec<Vec<Option<Var<'t>>>> = Vec::with_capacity(outputs.len());
        for output in outputs {
            let mut adj: Vec<Option<Var<'t>>> = vec![None; n];
            let out_shape = output.value().shape().to_vec();
            adj[output.id] = Some(self.constant(Tensor::ones(&out_shape)));
            adjs.push(adj);
        }

        for id in (0..n).rev() {
            if adjs.iter().all(|adj| adj[id].is_none()) {
                continue;
            }
            let op = self.op(id);
            let out = Var { tape: self, id };
            for adj in adjs.iter_mut() {
                if let Some(g) = adj[id] {
                    self.push_vjps(&op, out, g, adj);
                }
            }
        }

        adjs.into_iter()
            .map(|adj| {
                wrt.iter()
                    .map(|v| {
                        adj.get(v.id)
                            .copied()
                            .flatten()
                            .unwrap_or_else(|| self.constant(Tensor::zeros(v.value().shape())))
                    })
                    .collect()
            })
            .collect()
    }

    /// Gradient values of `output` w.r.t. each `wrt` node.
    ///
    /// Convenience wrapper around [`Tape::grad_vars`] that extracts tensors.
    pub fn grad(&self, output: Var<'_>, wrt: &[Var<'_>]) -> Vec<Tensor> {
        // Lifetimes: wrt vars all live on this tape.
        let wrt_here: Vec<Var<'_>> = wrt.iter().map(|v| Var { tape: self, id: v.id }).collect();
        let out = Var { tape: self, id: output.id };
        self.grad_vars(out, &wrt_here).into_iter().map(|v| v.value()).collect()
    }

    fn push_vjps<'t>(&'t self, op: &Op, out: Var<'t>, g: Var<'t>, adj: &mut [Option<Var<'t>>]) {
        use Op::*;
        let var = |id: usize| Var { tape: self, id };
        let mut acc = |id: usize, c: Var<'t>| {
            // Contributions always flow to earlier nodes, so `id` is in range.
            adj[id] = Some(match adj[id] {
                Some(existing) => existing.add(c),
                None => c,
            });
        };
        match op {
            Leaf { .. } => {}
            Add(a, b) => {
                acc(*a, g);
                acc(*b, g);
            }
            Sub(a, b) => {
                acc(*a, g);
                acc(*b, g.neg());
            }
            Mul(a, b) => {
                acc(*a, g.mul(var(*b)));
                acc(*b, g.mul(var(*a)));
            }
            Div(a, b) => {
                let bv = var(*b);
                acc(*a, g.div(bv));
                acc(*b, g.mul(out).div(bv).neg());
            }
            Neg(a) => acc(*a, g.neg()),
            AddScalar(a, _) => acc(*a, g),
            MulScalar(a, c) => acc(*a, g.scale(*c)),
            PowScalar(a, p) => {
                let av = var(*a);
                acc(*a, g.mul(av.pow_scalar(p - 1.0)).scale(*p));
            }
            Matmul(a, b) => {
                let (av, bv) = (var(*a), var(*b));
                acc(*a, g.matmul(bv.t()));
                acc(*b, av.t().matmul(g));
            }
            Transpose(a) => acc(*a, g.t()),
            Reshape(a, _) => {
                let shape = self.value(*a).shape().to_vec();
                acc(*a, g.reshape(&shape));
            }
            Sum(a) => {
                let shape = self.value(*a).shape().to_vec();
                acc(*a, g.expand(&shape));
            }
            SumRows(a) => {
                let n = self.value(*a).cols();
                acc(*a, g.broadcast_cols(n));
            }
            SumCols(a) => {
                let m = self.value(*a).rows();
                acc(*a, g.broadcast_rows(m));
            }
            ExpandScalar(a, _) => acc(*a, g.sum()),
            BroadcastCols(a, _) => acc(*a, g.sum_rows()),
            BroadcastRows(a, _) => acc(*a, g.sum_cols()),
            GatherRows(a, idx) => {
                let m = self.value(*a).rows();
                acc(*a, g.scatter_add_rows(idx.clone(), m));
            }
            ScatterAddRows(a, idx, _) => acc(*a, g.gather_rows(idx.clone())),
            GatherElems(a, idx) => {
                let n = self.value(*a).numel();
                acc(*a, g.scatter_add_elems(idx.clone(), n));
            }
            ScatterAddElems(a, idx, _) => acc(*a, g.gather_elems(idx.clone())),
            Spmm(m, transposed, a) => {
                // ∂(A·x)/∂x applied to g is Aᵀ·g — another Spmm node, so the
                // gradient stays differentiable (HVPs flip the flag back).
                acc(*a, crate::sparse::spmm_oriented(m, !transposed, g));
            }
            ConcatCols(a, b) => {
                let na = self.value(*a).cols();
                let nb = self.value(*b).cols();
                acc(*a, g.slice_cols(0, na));
                acc(*b, g.slice_cols(na, na + nb));
            }
            SliceCols(a, from, _) => {
                let total = self.value(*a).cols();
                acc(*a, g.pad_cols(*from, total));
            }
            PadCols(a, from, _) => {
                let w = self.value(*a).cols();
                acc(*a, g.slice_cols(*from, from + w));
            }
            Exp(a) => acc(*a, g.mul(out)),
            Ln(a) => acc(*a, g.div(var(*a))),
            Sqrt(a) => acc(*a, g.scale(0.5).div(out)),
            Sigmoid(a) => {
                // σ' = σ(1-σ)
                acc(*a, g.mul(out).mul(out.neg().add_scalar(1.0)));
            }
            Tanh(a) => {
                // tanh' = 1 - tanh²
                acc(*a, g.mul(out.square().neg().add_scalar(1.0)));
            }
            Relu(a) => {
                let mask = self.constant(self.value(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
                acc(*a, g.mul(mask));
            }
            Selu(a) => {
                // d/dx = λ for x > 0, λ·α·eˣ for x ≤ 0. The mask is the
                // (constant) activation pattern; the eˣ factor stays
                // differentiable so second-order terms through the negative
                // branch are exact.
                let av = var(*a);
                let mask = self.constant(self.value(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
                let inv_mask = mask.neg().add_scalar(1.0);
                let deriv = mask
                    .scale(SELU_LAMBDA)
                    .add(inv_mask.mul(av.exp()).scale(SELU_LAMBDA * SELU_ALPHA));
                acc(*a, g.mul(deriv));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    fn scalar_tape() -> Tape {
        Tape::new()
    }

    #[test]
    fn grad_of_square() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(3.0));
        let y = x.square();
        let g = tape.grad(y, &[x]);
        assert_eq!(g[0].item(), 6.0);
    }

    #[test]
    fn grad_flows_through_chain() {
        // d/dx [ (2x + 1)² ] = 2(2x+1)·2 = 8x + 4
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(1.5));
        let y = x.scale(2.0).add_scalar(1.0).square();
        let g = tape.grad(y, &[x]);
        assert!((g[0].item() - (8.0 * 1.5 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn grad_matmul() {
        // y = sum(A·B); dy/dA = 1·Bᵀ broadcast, dy/dB = Aᵀ·1
        let tape = scalar_tape();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let y = a.matmul(b).sum();
        let g = tape.grad(y, &[a, b]);
        assert_eq!(g[0].to_vec(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g[1].to_vec(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn grad_unreachable_is_zero() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(1.0));
        let z = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = x.square();
        let g = tape.grad(y, &[z]);
        assert_eq!(g[0].to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn second_order_square() {
        // y = x³, y' = 3x², y'' = 6x
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(2.0));
        let y = x.pow_scalar(3.0);
        let g = tape.grad_vars(y, &[x]);
        assert!((g[0].item() - 12.0).abs() < 1e-12);
        let gg = tape.grad(g[0], &[x]);
        assert!((gg[0].item() - 12.0).abs() < 1e-12, "y''(2) = 12, got {}", gg[0].item());
    }

    #[test]
    fn second_order_through_mul_chain() {
        // f = (x·y)², ∂f/∂x = 2xy², ∂²f/∂x∂y = 4xy
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(3.0));
        let y = tape.leaf(Tensor::scalar(5.0));
        let f = x.mul(y).square();
        let gx = tape.grad_vars(f, &[x])[0];
        assert!((gx.item() - 2.0 * 3.0 * 25.0).abs() < 1e-9);
        let gxy = tape.grad(gx, &[y]);
        assert!((gxy[0].item() - 4.0 * 15.0).abs() < 1e-9);
    }

    #[test]
    fn grad_gather_scatter() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
        let idx = std::sync::Arc::new(vec![0usize, 2, 2]);
        let y = x.gather_rows(idx).sum();
        let g = tape.grad(y, &[x]);
        // Row 0 gathered once, row 1 never, row 2 twice.
        assert_eq!(g[0].to_vec(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn grad_concat_routes_to_both() {
        let tape = scalar_tape();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2, 1]));
        let y = a
            .concat_cols(b)
            .mul(tape.constant(Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2])));
        let g = tape.grad(y.sum(), &[a, b]);
        assert_eq!(g[0].to_vec(), vec![10.0, 30.0]);
        assert_eq!(g[1].to_vec(), vec![20.0, 40.0]);
    }

    #[test]
    fn grad_selu_negative_branch_second_order() {
        // For x < 0: selu(x) = λα(eˣ-1); selu'(x) = λαeˣ; selu''(x) = λαeˣ.
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(-1.0));
        let y = x.selu();
        let g1 = tape.grad_vars(y, &[x])[0];
        let expect1 = SELU_LAMBDA * SELU_ALPHA * (-1.0f64).exp();
        assert!((g1.item() - expect1).abs() < 1e-12);
        let g2 = tape.grad(g1, &[x]);
        assert!((g2[0].item() - expect1).abs() < 1e-12);
    }

    #[test]
    fn grad_div_quotient_rule() {
        // f = a/b; ∂f/∂a = 1/b; ∂f/∂b = -a/b²
        let tape = scalar_tape();
        let a = tape.leaf(Tensor::scalar(6.0));
        let b = tape.leaf(Tensor::scalar(3.0));
        let f = a.div(b);
        let g = tape.grad(f, &[a, b]);
        assert!((g[0].item() - 1.0 / 3.0).abs() < 1e-12);
        assert!((g[1].item() + 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn grad_reshape_roundtrips() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let w = tape.constant(Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0], &[4]));
        let y = x.reshape(&[4]).mul(w).sum();
        let g = tape.grad(y, &[x]).remove(0);
        assert_eq!(g.shape(), &[2, 2]);
        assert_eq!(g.to_vec(), vec![1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn grad_pad_and_slice_are_adjoint() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        let w = tape.constant(Tensor::from_vec(vec![5.0, 7.0, 11.0, 13.0, 17.0, 19.0], &[2, 3]));
        let y = x.pad_cols(1, 3).mul(w).sum();
        let g = tape.grad(y, &[x]).remove(0);
        // Only the middle column of w touches x.
        assert_eq!(g.to_vec(), vec![7.0, 17.0]);
    }

    #[test]
    fn grad_broadcast_rows_sums_columns() {
        let tape = scalar_tape();
        let v = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let w = tape.constant(Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0, 2.0, 20.0], &[3, 2]));
        let y = v.broadcast_rows(3).mul(w).sum();
        let g = tape.grad(y, &[v]).remove(0);
        assert_eq!(g.to_vec(), vec![103.0, 1030.0]);
    }

    #[test]
    fn grad_pow_scalar_matches_numeric() {
        let tape = scalar_tape();
        let x0 = Tensor::from_vec(vec![0.7, 1.9], &[2]);
        let x = tape.leaf(x0.clone());
        let y = x.pow_scalar(2.5).sum();
        let g = tape.grad(y, &[x]).remove(0);
        let ng =
            crate::ndiff::numeric_grad(|t| t.data().iter().map(|v| v.powf(2.5)).sum(), &x0, 1e-6);
        assert!(g.max_abs_diff(&ng) < 1e-6);
    }

    #[test]
    fn grad_ln_exp_inverse_chain() {
        // d/dx ln(exp(x)) = 1 exactly, through both VJPs.
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, -1.2, 2.0], &[3]));
        let y = x.exp().ln().sum();
        let g = tape.grad(y, &[x]).remove(0);
        for i in 0..3 {
            assert!((g.get(i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grad_accumulates_across_shared_subexpression() {
        // y = x² + x³ shares x; adjoints must accumulate: y' = 2x + 3x².
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(2.0));
        let y = x.square().add(x.pow_scalar(3.0));
        let g = tape.grad(y, &[x]).remove(0);
        assert!((g.item() - (4.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    fn grad_nonscalar_output_uses_ones_seed() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let y = x.scale(2.0);
        let g = tape.grad(y, &[x]);
        assert_eq!(g[0].to_vec(), vec![2.0, 2.0, 2.0]);
    }

    // ---- multi-seed backward (ISSUE 6): one scan, N independent adjoints ----

    fn assert_bits_eq(a: &Tensor, b: &Tensor, label: &str) {
        assert_eq!(a.shape(), b.shape(), "{label}: shape");
        for (i, (x, y)) in a.to_vec().iter().zip(b.to_vec().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: [{i}] {x} vs {y}");
        }
    }

    #[test]
    fn grad_vars_multi_bitwise_matches_sequential() {
        // Two "follower losses" sharing a nonlinear subexpression (the shared
        // PDS-build analogue), each differentiated w.r.t. both leaves. The
        // batched scan must reproduce every sequential gradient bit for bit.
        let tape = scalar_tape();
        let a = tape.leaf(Tensor::from_vec(vec![0.3, -1.2, 0.9, 2.0], &[2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![1.1, 0.4, -0.7, 0.25], &[2, 2]));
        let shared = a.matmul(b).selu();
        let l0 = shared.square().sum();
        let l1 = shared.mul(a).sum().add(b.pow_scalar(3.0).sum());
        let wrt = [a, b];

        let multi = tape.grad_vars_multi(&[l0, l1], &wrt);
        assert_eq!(multi.len(), 2);
        for (s, (l, row)) in [l0, l1].iter().zip(multi.iter()).enumerate() {
            let seq = tape.grad_vars(*l, &wrt);
            for (w, (m, q)) in row.iter().zip(seq.iter()).enumerate() {
                assert_bits_eq(&m.value(), &q.value(), &format!("seed {s} wrt {w}"));
            }
        }
    }

    #[test]
    fn grad_vars_multi_gradients_stay_differentiable() {
        // The batched gradients must still be tape vars usable for HVPs:
        // f0 = x³ (f0'' = 6x), f1 = x⁴ (f1'' = 12x²) at x = 2.
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(2.0));
        let f0 = x.pow_scalar(3.0);
        let f1 = x.pow_scalar(4.0);
        let grads = tape.grad_vars_multi(&[f0, f1], &[x]);
        assert!((grads[0][0].item() - 12.0).abs() < 1e-12);
        assert!((grads[1][0].item() - 32.0).abs() < 1e-12);
        let h0 = tape.grad(grads[0][0], &[x]);
        let h1 = tape.grad(grads[1][0], &[x]);
        assert!((h0[0].item() - 12.0).abs() < 1e-12);
        assert!((h1[0].item() - 48.0).abs() < 1e-12);
    }

    #[test]
    fn grad_vars_multi_handles_unreachable_and_empty() {
        let tape = scalar_tape();
        let x = tape.leaf(Tensor::scalar(1.0));
        let z = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = x.square();
        let multi = tape.grad_vars_multi(&[y], &[x, z]);
        assert_eq!(multi[0][0].item(), 2.0);
        assert_eq!(multi[0][1].value().to_vec(), vec![0.0, 0.0]);
        assert!(tape.grad_vars_multi(&[], &[x]).is_empty());
    }
}
