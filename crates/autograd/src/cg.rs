//! Conjugate-gradient linear solver.
//!
//! Algorithm 1 step 9 solves `ξ · ∂²L^q/∂X̂^q² = ∂L^p/∂X̂^q` without ever
//! materializing the Hessian: each CG iteration consumes one Hessian-vector
//! product. This module provides the matrix-free solver; the HVP closures come
//! from [`crate::hvp`]. Damping (`damping·I` added to the operator) is the
//! standard regularization for the possibly indefinite Hessians encountered
//! mid-optimization.

use msopds_telemetry as telemetry;

/// Completed CG solves.
static CG_SOLVES: telemetry::Counter = telemetry::Counter::new("autograd.cg.solves");
/// Total CG iterations (= Hessian-vector products consumed) across all solves.
static CG_ITERATIONS: telemetry::Counter = telemetry::Counter::new("autograd.cg.iterations");
/// Final residual norm of the most recent solve.
static CG_LAST_RESIDUAL: telemetry::Gauge = telemetry::Gauge::new("autograd.cg.last_residual");

/// Outcome of a conjugate-gradient solve.
#[derive(Clone, Debug)]
pub struct CgSolution {
    /// The approximate solution `x` with `A·x ≈ b`.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A·x‖`.
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solves `A·x = b` by conjugate gradient, for `A` given implicitly by the
/// matrix-vector product `apply`.
///
/// `damping` is added to the diagonal (`A + damping·I`), keeping the solve
/// well-posed when `A` is only positive semi-definite. CG assumes a symmetric
/// operator; for the Stackelberg solve this is the Hessian `∂²L^q/∂X̂^q²`,
/// which is symmetric by construction.
pub fn conjugate_gradient(
    apply: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
    damping: f64,
) -> CgSolution {
    let _span = telemetry::span("cg");
    let sol = cg_loop(apply, b, max_iters, tol, damping);
    CG_SOLVES.incr();
    CG_ITERATIONS.add(sol.iterations as u64);
    CG_LAST_RESIDUAL.set(sol.residual);
    sol
}

fn cg_loop(
    mut apply: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
    damping: f64,
) -> CgSolution {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A·0
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let bnorm = rs_old.sqrt().max(1e-30);

    if rs_old.sqrt() <= tol * bnorm {
        return CgSolution { x, iterations: 0, residual: rs_old.sqrt(), converged: true };
    }

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut ap = apply(&p);
        if damping != 0.0 {
            for (a, &pi) in ap.iter_mut().zip(p.iter()) {
                *a += damping * pi;
            }
        }
        let p_ap = dot(&p, &ap);
        if p_ap.abs() < 1e-300 || !p_ap.is_finite() {
            // Breakdown: direction has (numerically) zero curvature.
            break;
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() <= tol * bnorm {
            return CgSolution { x, iterations, residual: rs_new.sqrt(), converged: true };
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    CgSolution { x, iterations, residual: rs_old.sqrt(), converged: false }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_apply(m: &[Vec<f64>]) -> impl FnMut(&[f64]) -> Vec<f64> + '_ {
        move |v: &[f64]| m.iter().map(|row| dot(row, v)).collect()
    }

    #[test]
    fn solves_identity() {
        let m = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[3.0, -4.0], 10, 1e-10, 0.0);
        assert!(sol.converged);
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
        assert!((sol.x[1] + 4.0).abs() < 1e-9);
    }

    #[test]
    fn solves_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
        let m = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 2.0], 10, 1e-12, 0.0);
        assert!(sol.converged);
        assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let m = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[0.0, 0.0], 10, 1e-10, 0.0);
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.x, vec![0.0, 0.0]);
    }

    #[test]
    fn damping_regularizes_singular() {
        // Singular A = [[1,0],[0,0]]; with damping the solve stays finite.
        let m = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 1.0], 50, 1e-10, 0.1);
        assert!(sol.x.iter().all(|v| v.is_finite()));
        // (A + 0.1 I) x = b → x = [1/1.1, 10]
        assert!((sol.x[0] - 1.0 / 1.1).abs() < 1e-6);
        assert!((sol.x[1] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn converges_on_random_spd() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 12;
        // A = MᵀM + I is SPD.
        let mm: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = (0..n).map(|k| mm[k][i] * mm[k][j]).sum::<f64>()
                    + if i == j { 1.0 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sol = conjugate_gradient(mat_apply(&a), &b, 200, 1e-10, 0.0);
        assert!(sol.converged, "residual {}", sol.residual);
        // Check A·x ≈ b directly.
        let ax = mat_apply(&a)(&sol.x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-7);
        }
    }
}
