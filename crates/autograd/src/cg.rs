//! Conjugate-gradient linear solver with numeric guardrails.
//!
//! Algorithm 1 step 9 solves `ξ · ∂²L^q/∂X̂^q² = ∂L^p/∂X̂^q` without ever
//! materializing the Hessian: each CG iteration consumes one Hessian-vector
//! product. This module provides the matrix-free solver; the HVP closures come
//! from [`crate::hvp`]. Damping (`damping·I` added to the operator) is the
//! standard regularization for the possibly indefinite Hessians encountered
//! mid-optimization.
//!
//! Influence-function-style solves are notoriously ill-conditioned (cf. Fang
//! et al., *Influence Function based Data Poisoning Attacks to Top-N
//! Recommender Systems*): mid-game Hessians can be indefinite, the
//! right-hand side can carry NaN from an upstream overflow, and plain CG
//! happily turns either into a silently non-finite `x`. The solver therefore
//! returns a typed [`SolveOutcome`] — NaN and divergence are *detected*, a
//! bounded escalating damped retry is attempted, and callers that still get
//! an unusable outcome receive a zero solution plus a status they can act on
//! (the MSO loop excludes that follower's correction rather than poisoning
//! the whole game).

use msopds_faultline as faultline;
use msopds_telemetry as telemetry;

/// Completed CG solves.
static CG_SOLVES: telemetry::Counter = telemetry::Counter::new("autograd.cg.solves");
/// Total CG iterations (= Hessian-vector products consumed) across all solves.
static CG_ITERATIONS: telemetry::Counter = telemetry::Counter::new("autograd.cg.iterations");
/// Final residual norm of the most recent solve.
static CG_LAST_RESIDUAL: telemetry::Gauge = telemetry::Gauge::new("autograd.cg.last_residual");
/// Solves that needed at least one damped retry.
static CG_RETRIES: telemetry::Counter = telemetry::Counter::new("autograd.cg.retries");
/// Solves that ended unusable (zero solution substituted).
static CG_UNUSABLE: telemetry::Counter = telemetry::Counter::new("autograd.cg.unusable");

/// How a conjugate-gradient solve ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Residual tolerance reached; `x` is trustworthy.
    Converged,
    /// Iteration cap hit with finite iterates — the normal outcome of
    /// truncated CG (small `cg_iters` budgets); `x` is a usable partial solve.
    MaxIters,
    /// A search direction had (numerically) zero curvature; `x` holds the
    /// progress made up to the breakdown.
    Breakdown,
    /// The residual grew beyond [`DIVERGENCE_FACTOR`]× the initial residual
    /// even after retries; `x` is zeroed (use no correction).
    Diverged,
    /// The right-hand side `b` contained NaN/±∞; nothing was solved and `x`
    /// is zero.
    NonFiniteRhs,
    /// NaN/±∞ appeared *during* iteration (ill-conditioned or non-symmetric
    /// operator) and damped retries did not cure it; `x` is zeroed.
    NonFinite,
}

/// Residual growth (relative to `‖b‖`) treated as divergence.
pub const DIVERGENCE_FACTOR: f64 = 1e6;

/// Escalating damped retries attempted after a pathological first solve.
pub const MAX_RETRIES: usize = 2;

/// Outcome of a conjugate-gradient solve.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The approximate solution `x` with `A·x ≈ b` (all-zero when
    /// [`SolveOutcome::usable`] is false).
    pub x: Vec<f64>,
    /// Number of iterations performed (across all attempts).
    pub iterations: usize,
    /// Final residual norm `‖b − A·x‖` of the last attempt.
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Typed classification of how the solve ended.
    pub status: SolveStatus,
    /// Damped retries spent (0 = first attempt stood).
    pub retries: usize,
    /// The damping actually used by the returned attempt.
    pub damping: f64,
}

impl SolveOutcome {
    /// True when `x` is finite and safe to consume. An unusable outcome
    /// carries a zero `x`, so using it blindly applies *no* correction —
    /// degraded, never poisoned.
    pub fn usable(&self) -> bool {
        !matches!(
            self.status,
            SolveStatus::Diverged | SolveStatus::NonFiniteRhs | SolveStatus::NonFinite
        )
    }

    fn zeroed(n: usize, status: SolveStatus, retries: usize, damping: f64) -> Self {
        SolveOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
            status,
            retries,
            damping,
        }
    }
}

/// Backwards-compatible alias — the pre-guardrail name of the outcome type.
pub type CgSolution = SolveOutcome;

/// Solves `A·x = b` by conjugate gradient, for `A` given implicitly by the
/// matrix-vector product `apply`.
///
/// `damping` is added to the diagonal (`A + damping·I`), keeping the solve
/// well-posed when `A` is only positive semi-definite. CG assumes a symmetric
/// operator; for the Stackelberg solve this is the Hessian `∂²L^q/∂X̂^q²`,
/// which is symmetric by construction.
///
/// Guardrails: a non-finite `b` short-circuits to [`SolveStatus::NonFiniteRhs`];
/// NaN or runaway residuals mid-iteration trigger up to [`MAX_RETRIES`]
/// retries with 100×-escalated damping; a still-pathological solve returns a
/// zero `x` and a typed status instead of silently non-converged garbage.
/// This function never panics on numeric input (fault injection aside).
pub fn conjugate_gradient(
    mut apply: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
    damping: f64,
) -> SolveOutcome {
    let _span = telemetry::span("cg");
    faultline::fault_point!("cg.solve");
    let mut b = b.to_vec();
    faultline::corrupt_slice("cg.solve.rhs", &mut b);

    let sol = solve_with_retries(&mut apply, &b, max_iters, tol, damping);
    CG_SOLVES.incr();
    CG_ITERATIONS.add(sol.iterations as u64);
    CG_LAST_RESIDUAL.set(sol.residual);
    if sol.retries > 0 {
        CG_RETRIES.incr();
    }
    if !sol.usable() {
        CG_UNUSABLE.incr();
    }
    sol
}

/// Solves a batch of systems `A·xᵢ = bᵢ` sharing one (possibly
/// system-indexed) operator, in lockstep: every iteration gathers the search
/// directions of all still-active systems into **one** `apply_multi` call, so
/// the operator can amortize its memory traffic across the batch (one SpMM
/// over an `[n, N]` block instead of `N` SpMVs re-reading the matrix).
///
/// `apply_multi` receives `(system index, direction)` pairs — the system
/// index is the position in `rhs` — and must return one product per pair, in
/// order. Because the per-system α/β/residual recurrences only ever touch
/// that system's own vectors, **every outcome is bitwise identical to the
/// corresponding sequential [`conjugate_gradient`] call**: same iterates,
/// same iteration counts, same [`SolveStatus`] classification.
///
/// Guardrail semantics are preserved exactly: non-finite right-hand sides
/// short-circuit, and a system that goes pathological mid-lockstep drops out
/// of the batch and replays the escalating damped retry chain on its own
/// (retries call `apply_multi` with a single pair). Fault-injection sites
/// fire once per right-hand side in index order, matching the occurrence
/// sequence of sequential solves.
pub fn conjugate_gradient_multi(
    mut apply_multi: impl FnMut(&[(usize, &[f64])]) -> Vec<Vec<f64>>,
    rhs: &[Vec<f64>],
    max_iters: usize,
    tol: f64,
    damping: f64,
) -> Vec<SolveOutcome> {
    let _span = telemetry::span("cg_multi");
    // Fault sites fire per right-hand side, in index order — the same
    // occurrence sequence the sequential solver produces.
    let mut bs: Vec<Vec<f64>> = Vec::with_capacity(rhs.len());
    for b in rhs {
        faultline::fault_point!("cg.solve");
        let mut b = b.clone();
        faultline::corrupt_slice("cg.solve.rhs", &mut b);
        bs.push(b);
    }

    let finished =
        |x: Vec<f64>, iterations: usize, residual: f64, status: SolveStatus| SolveOutcome {
            x,
            iterations,
            residual,
            converged: status == SolveStatus::Converged,
            status,
            retries: 0,
            damping,
        };

    /// Attempt-0 state of one still-active system.
    struct Sys {
        idx: usize,
        x: Vec<f64>,
        r: Vec<f64>,
        p: Vec<f64>,
        rs_old: f64,
        bnorm: f64,
        iterations: usize,
    }

    let mut outcomes: Vec<Option<SolveOutcome>> = (0..bs.len()).map(|_| None).collect();
    // Systems whose attempt 0 went pathological: (index, iterations spent,
    // status) — they replay the retry chain sequentially below.
    let mut pathological: Vec<(usize, usize, SolveStatus)> = Vec::new();
    let mut active: Vec<Sys> = Vec::new();
    for (idx, b) in bs.iter().enumerate() {
        if !b.iter().all(|v| v.is_finite()) {
            outcomes[idx] =
                Some(SolveOutcome::zeroed(b.len(), SolveStatus::NonFiniteRhs, 0, damping));
            continue;
        }
        let r = b.clone();
        let rs_old = dot(&r, &r);
        let bnorm = rs_old.sqrt().max(1e-30);
        if rs_old.sqrt() <= tol * bnorm {
            outcomes[idx] =
                Some(finished(vec![0.0; b.len()], 0, rs_old.sqrt(), SolveStatus::Converged));
            continue;
        }
        let p = r.clone();
        active.push(Sys { idx, x: vec![0.0; b.len()], r, p, rs_old, bnorm, iterations: 0 });
    }

    // Lockstep attempt 0: one batched operator application per iteration.
    for _ in 0..max_iters {
        if active.is_empty() {
            break;
        }
        let dirs: Vec<(usize, &[f64])> = active.iter().map(|s| (s.idx, s.p.as_slice())).collect();
        let aps = apply_multi(&dirs);
        assert_eq!(aps.len(), active.len(), "apply_multi must return one product per direction");
        let mut still = Vec::with_capacity(active.len());
        for (mut s, mut ap) in active.into_iter().zip(aps) {
            s.iterations += 1;
            if damping != 0.0 {
                for (a, &pi) in ap.iter_mut().zip(s.p.iter()) {
                    *a += damping * pi;
                }
            }
            let p_ap = dot(&s.p, &ap);
            if !p_ap.is_finite() {
                pathological.push((s.idx, s.iterations, SolveStatus::NonFinite));
                continue;
            }
            if p_ap.abs() < 1e-300 {
                outcomes[s.idx] =
                    Some(finished(s.x, s.iterations, s.rs_old.sqrt(), SolveStatus::Breakdown));
                continue;
            }
            let alpha = s.rs_old / p_ap;
            for ((x, r), (&pi, &a)) in
                s.x.iter_mut().zip(s.r.iter_mut()).zip(s.p.iter().zip(ap.iter()))
            {
                *x += alpha * pi;
                *r -= alpha * a;
            }
            let rs_new = dot(&s.r, &s.r);
            if !rs_new.is_finite() {
                pathological.push((s.idx, s.iterations, SolveStatus::NonFinite));
                continue;
            }
            if rs_new.sqrt() > DIVERGENCE_FACTOR * s.bnorm {
                pathological.push((s.idx, s.iterations, SolveStatus::Diverged));
                continue;
            }
            if rs_new.sqrt() <= tol * s.bnorm {
                outcomes[s.idx] =
                    Some(finished(s.x, s.iterations, rs_new.sqrt(), SolveStatus::Converged));
                continue;
            }
            let beta = rs_new / s.rs_old;
            for i in 0..s.p.len() {
                s.p[i] = s.r[i] + beta * s.p[i];
            }
            s.rs_old = rs_new;
            still.push(s);
        }
        active = still;
    }
    for s in active {
        outcomes[s.idx] = Some(finished(s.x, s.iterations, s.rs_old.sqrt(), SolveStatus::MaxIters));
    }

    // Escalating damped retries, one pathological system at a time — the
    // exact attempt-by-attempt behaviour of `solve_with_retries`, with
    // attempt 0 already spent in lockstep.
    for (idx, iters0, status0) in pathological {
        let b = &bs[idx];
        let mut single =
            |v: &[f64]| apply_multi(&[(idx, v)]).pop().expect("one product per direction");
        let mut total_iterations = iters0;
        let mut damping_now = damping;
        let mut out = None;
        for attempt in 1..=MAX_RETRIES {
            damping_now = if damping_now > 0.0 { damping_now * 100.0 } else { 1e-4 };
            let mut sol = cg_loop(&mut single, b, max_iters, tol, damping_now);
            total_iterations += sol.iterations;
            sol.iterations = total_iterations;
            sol.retries = attempt;
            match sol.status {
                SolveStatus::Converged | SolveStatus::MaxIters | SolveStatus::Breakdown => {
                    out = Some(sol);
                    break;
                }
                SolveStatus::NonFinite | SolveStatus::Diverged => {
                    if attempt == MAX_RETRIES {
                        out = Some(SolveOutcome::zeroed(b.len(), sol.status, attempt, damping_now));
                    }
                }
                SolveStatus::NonFiniteRhs => unreachable!("rhs checked before iterating"),
            }
        }
        outcomes[idx] =
            Some(out.unwrap_or_else(|| SolveOutcome::zeroed(b.len(), status0, 0, damping)));
    }

    let outcomes: Vec<SolveOutcome> =
        outcomes.into_iter().map(|o| o.expect("every system classified")).collect();
    for sol in &outcomes {
        CG_SOLVES.incr();
        CG_ITERATIONS.add(sol.iterations as u64);
        CG_LAST_RESIDUAL.set(sol.residual);
        if sol.retries > 0 {
            CG_RETRIES.incr();
        }
        if !sol.usable() {
            CG_UNUSABLE.incr();
        }
    }
    outcomes
}

fn solve_with_retries(
    apply: &mut impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
    damping: f64,
) -> SolveOutcome {
    if !b.iter().all(|v| v.is_finite()) {
        return SolveOutcome::zeroed(b.len(), SolveStatus::NonFiniteRhs, 0, damping);
    }

    let mut total_iterations = 0;
    let mut damping_now = damping;
    for attempt in 0..=MAX_RETRIES {
        let mut sol = cg_loop(apply, b, max_iters, tol, damping_now);
        total_iterations += sol.iterations;
        sol.iterations = total_iterations;
        sol.retries = attempt;
        match sol.status {
            // Finite outcomes stand (Breakdown keeps pre-breakdown progress).
            SolveStatus::Converged | SolveStatus::MaxIters | SolveStatus::Breakdown => {
                return sol;
            }
            // Pathology: escalate damping and retry from scratch.
            SolveStatus::NonFinite | SolveStatus::Diverged => {
                if attempt == MAX_RETRIES {
                    return SolveOutcome::zeroed(b.len(), sol.status, attempt, damping_now);
                }
                damping_now = if damping_now > 0.0 { damping_now * 100.0 } else { 1e-4 };
            }
            SolveStatus::NonFiniteRhs => unreachable!("rhs checked before iterating"),
        }
    }
    unreachable!("loop returns on every branch")
}

fn cg_loop(
    apply: &mut impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
    damping: f64,
) -> SolveOutcome {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A·0
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let bnorm = rs_old.sqrt().max(1e-30);

    let outcome =
        |x: Vec<f64>, iterations: usize, residual: f64, status: SolveStatus| SolveOutcome {
            x,
            iterations,
            residual,
            converged: status == SolveStatus::Converged,
            status,
            retries: 0,
            damping,
        };

    if rs_old.sqrt() <= tol * bnorm {
        return outcome(x, 0, rs_old.sqrt(), SolveStatus::Converged);
    }

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut ap = apply(&p);
        if damping != 0.0 {
            for (a, &pi) in ap.iter_mut().zip(p.iter()) {
                *a += damping * pi;
            }
        }
        let p_ap = dot(&p, &ap);
        if !p_ap.is_finite() {
            // The operator itself produced NaN/∞ — retry with more damping.
            return outcome(vec![0.0; n], iterations, f64::INFINITY, SolveStatus::NonFinite);
        }
        if p_ap.abs() < 1e-300 {
            // Breakdown: direction has (numerically) zero curvature. The
            // iterate accumulated so far is still finite and usable.
            return outcome(x, iterations, rs_old.sqrt(), SolveStatus::Breakdown);
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        if !rs_new.is_finite() {
            return outcome(vec![0.0; n], iterations, f64::INFINITY, SolveStatus::NonFinite);
        }
        if rs_new.sqrt() > DIVERGENCE_FACTOR * bnorm {
            // Indefinite / non-symmetric operator: the "residual" is running
            // away, each extra iteration makes x worse.
            return outcome(vec![0.0; n], iterations, rs_new.sqrt(), SolveStatus::Diverged);
        }
        if rs_new.sqrt() <= tol * bnorm {
            return outcome(x, iterations, rs_new.sqrt(), SolveStatus::Converged);
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    outcome(x, iterations, rs_old.sqrt(), SolveStatus::MaxIters)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_apply(m: &[Vec<f64>]) -> impl FnMut(&[f64]) -> Vec<f64> + '_ {
        move |v: &[f64]| m.iter().map(|row| dot(row, v)).collect()
    }

    #[test]
    fn solves_identity() {
        let m = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[3.0, -4.0], 10, 1e-10, 0.0);
        assert!(sol.converged);
        assert_eq!(sol.status, SolveStatus::Converged);
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
        assert!((sol.x[1] + 4.0).abs() < 1e-9);
    }

    #[test]
    fn solves_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
        let m = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 2.0], 10, 1e-12, 0.0);
        assert!(sol.converged);
        assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let m = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[0.0, 0.0], 10, 1e-10, 0.0);
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.x, vec![0.0, 0.0]);
    }

    #[test]
    fn damping_regularizes_singular() {
        // Singular A = [[1,0],[0,0]]; with damping the solve stays finite.
        let m = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 1.0], 50, 1e-10, 0.1);
        assert!(sol.x.iter().all(|v| v.is_finite()));
        // (A + 0.1 I) x = b → x = [1/1.1, 10]
        assert!((sol.x[0] - 1.0 / 1.1).abs() < 1e-6);
        assert!((sol.x[1] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn converges_on_random_spd() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 12;
        // A = MᵀM + I is SPD.
        let mm: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = (0..n).map(|k| mm[k][i] * mm[k][j]).sum::<f64>()
                    + if i == j { 1.0 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sol = conjugate_gradient(mat_apply(&a), &b, 200, 1e-10, 0.0);
        assert!(sol.converged, "residual {}", sol.residual);
        // Check A·x ≈ b directly.
        let ax = mat_apply(&a)(&sol.x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-7);
        }
    }

    // ---- guardrail regressions (ISSUE 3): no panic, no silent garbage ----

    #[test]
    fn nan_rhs_yields_typed_outcome() {
        let m = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[f64::NAN, 1.0], 20, 1e-10, 0.0);
        assert_eq!(sol.status, SolveStatus::NonFiniteRhs);
        assert!(!sol.usable());
        assert!(!sol.converged);
        assert_eq!(sol.x, vec![0.0, 0.0], "unusable solve must zero x, not leak NaN");
    }

    #[test]
    fn infinite_rhs_yields_typed_outcome() {
        let m = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, f64::INFINITY], 20, 1e-10, 0.0);
        assert_eq!(sol.status, SolveStatus::NonFiniteRhs);
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn indefinite_matrix_never_returns_nonfinite_x() {
        // A = diag(1, -1) is indefinite: plain CG on it can diverge (negative
        // curvature flips the step sign). The outcome must stay typed and
        // finite whatever path it takes.
        let m = vec![vec![1.0, 0.0], vec![0.0, -1.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 1.0], 100, 1e-12, 0.0);
        assert!(
            sol.x.iter().all(|v| v.is_finite()),
            "indefinite solve leaked non-finite x: {:?} ({:?})",
            sol.x,
            sol.status
        );
        assert!(
            !(sol.status == SolveStatus::Converged) || sol.residual <= 1e-10,
            "converged status must mean a small residual"
        );
    }

    #[test]
    fn strongly_indefinite_diverges_to_typed_outcome() {
        // Larger indefinite system with mixed curvature directions mixed into
        // every step: residuals blow up without the divergence guard.
        let n = 8;
        let mut m = vec![vec![0.0; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = if i % 2 == 0 { 1.0 } else { -1.0 };
            if i + 1 < n {
                row[i + 1] = 0.5;
            }
            if i > 0 {
                row[i - 1] = 0.5;
            }
        }
        let b = vec![1.0; n];
        let sol = conjugate_gradient(mat_apply(&m), &b, 500, 1e-12, 0.0);
        assert!(sol.x.iter().all(|v| v.is_finite()), "{:?}", sol.status);
        if !sol.usable() {
            assert_eq!(sol.x, vec![0.0; n], "unusable ⇒ zero correction");
        }
    }

    #[test]
    fn zero_diagonal_breakdown_is_typed() {
        // A = 0: the very first direction has zero curvature; historically
        // this silently returned converged=false with x=0 — now it is a
        // *typed* breakdown and the partial iterate stays finite.
        let m = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 2.0], 10, 1e-10, 0.0);
        assert_eq!(sol.status, SolveStatus::Breakdown);
        assert!(sol.usable(), "breakdown keeps the (finite) partial solution");
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nan_producing_operator_retries_with_damping() {
        // An operator that emits NaN until heavy damping drowns it out is the
        // worst case the HVP closures produce mid-optimization. The solve must
        // classify it (NonFinite after retries) rather than propagate NaN.
        let nan_apply = |v: &[f64]| v.iter().map(|_| f64::NAN).collect::<Vec<_>>();
        let sol = conjugate_gradient(nan_apply, &[1.0, 1.0], 10, 1e-10, 1e-3);
        assert_eq!(sol.status, SolveStatus::NonFinite);
        assert_eq!(sol.retries, MAX_RETRIES);
        assert!(!sol.usable());
        assert_eq!(sol.x, vec![0.0, 0.0]);
    }

    #[test]
    fn retry_damping_rescues_mildly_indefinite_system() {
        // A = diag(1, -d) with tiny d: undamped CG diverges, but the
        // escalated retry damping makes A + λI positive definite again and
        // yields a finite, usable solve.
        let m = vec![vec![1.0, 0.0], vec![0.0, -1e-5]];
        let sol = conjugate_gradient(mat_apply(&m), &[1.0, 1.0], 200, 1e-10, 1e-3);
        assert!(sol.x.iter().all(|v| v.is_finite()));
        if sol.usable() {
            assert!(sol.x[0].abs() < 10.0, "x stayed bounded: {:?}", sol.x);
        }
    }

    // ---- multi-RHS lockstep solver (ISSUE 6): bitwise parity ----

    /// Asserts two outcomes are bitwise identical (x, residual) and equal on
    /// every classification field.
    fn assert_outcome_bits_eq(multi: &SolveOutcome, single: &SolveOutcome, label: &str) {
        assert_eq!(multi.status, single.status, "{label}: status");
        assert_eq!(multi.iterations, single.iterations, "{label}: iterations");
        assert_eq!(multi.retries, single.retries, "{label}: retries");
        assert_eq!(multi.converged, single.converged, "{label}: converged");
        assert_eq!(
            multi.residual.to_bits(),
            single.residual.to_bits(),
            "{label}: residual {} vs {}",
            multi.residual,
            single.residual
        );
        assert_eq!(multi.x.len(), single.x.len(), "{label}: x length");
        for (i, (a, b)) in multi.x.iter().zip(single.x.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: x[{i}] {a} vs {b}");
        }
    }

    #[test]
    fn multi_rhs_bitwise_matches_sequential_on_shared_spd() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 10;
        let mm: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = (0..n).map(|k| mm[k][i] * mm[k][j]).sum::<f64>()
                    + if i == j { 1.0 } else { 0.0 };
            }
        }
        let rhs: Vec<Vec<f64>> =
            (0..4).map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        // Mixed convergence speeds: also truncate one run hard so MaxIters
        // systems travel through the lockstep loop alongside converged ones.
        for (max_iters, tol) in [(200usize, 1e-10), (2usize, 1e-14)] {
            let multi = conjugate_gradient_multi(
                |dirs| dirs.iter().map(|(_, p)| mat_apply(&a)(p)).collect(),
                &rhs,
                max_iters,
                tol,
                1e-3,
            );
            for (i, (m, b)) in multi.iter().zip(rhs.iter()).enumerate() {
                let single = conjugate_gradient(mat_apply(&a), b, max_iters, tol, 1e-3);
                assert_outcome_bits_eq(m, &single, &format!("rhs {i} (cap {max_iters})"));
            }
        }
    }

    #[test]
    fn multi_rhs_mixed_pathologies_match_sequential() {
        // One batch containing every guardrail path at once: a healthy SPD
        // system, a NaN rhs, a divergent indefinite system (exercises the
        // retry chain), a zero-operator breakdown, and a zero rhs. Each must
        // come out bitwise identical to its sequential solve, with identical
        // typed status and retry count.
        let spd = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let indefinite = vec![vec![1.0, 0.0], vec![0.0, -1.0]];
        let zero = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let nan_op = |v: &[f64]| v.iter().map(|_| f64::NAN).collect::<Vec<_>>();
        let apply_for = |idx: usize, v: &[f64]| -> Vec<f64> {
            match idx {
                0 => mat_apply(&spd)(v),
                1 => mat_apply(&spd)(v), // never called: rhs is non-finite
                2 => mat_apply(&indefinite)(v),
                3 => mat_apply(&zero)(v),
                4 => mat_apply(&spd)(v), // never iterates: zero rhs
                5 => nan_op(v),
                _ => unreachable!(),
            }
        };
        let rhs: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0],
            vec![f64::NAN, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        ];
        let (max_iters, tol, damping) = (100usize, 1e-12, 0.0);
        let multi = conjugate_gradient_multi(
            |dirs| dirs.iter().map(|&(idx, p)| apply_for(idx, p)).collect(),
            &rhs,
            max_iters,
            tol,
            damping,
        );
        assert_eq!(multi.len(), rhs.len());
        for (idx, (m, b)) in multi.iter().zip(rhs.iter()).enumerate() {
            let single = conjugate_gradient(|v| apply_for(idx, v), b, max_iters, tol, damping);
            assert_outcome_bits_eq(m, &single, &format!("system {idx}"));
        }
        // Spot-check the classifications really covered distinct paths.
        assert_eq!(multi[0].status, SolveStatus::Converged);
        assert_eq!(multi[1].status, SolveStatus::NonFiniteRhs);
        // b = [1,1] on diag(1,-1) has exactly zero curvature along the first
        // direction, so the indefinite system is a deterministic breakdown.
        assert_eq!(multi[2].status, SolveStatus::Breakdown);
        assert_eq!(multi[3].status, SolveStatus::Breakdown);
        assert_eq!(multi[4].iterations, 0);
        assert_eq!(multi[5].status, SolveStatus::NonFinite);
        assert_eq!(multi[5].retries, MAX_RETRIES);
    }

    #[test]
    fn multi_rhs_empty_batch_is_empty() {
        let out = conjugate_gradient_multi(|_| Vec::new(), &[], 10, 1e-10, 0.0);
        assert!(out.is_empty());
    }

    #[test]
    fn truncated_solve_reports_max_iters() {
        // 1 iteration on a 12-dim SPD system cannot converge; that is the
        // normal truncated-CG regime and must stay usable.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 12;
        let mm: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = (0..n).map(|k| mm[k][i] * mm[k][j]).sum::<f64>()
                    + if i == j { 1.0 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sol = conjugate_gradient(mat_apply(&a), &b, 1, 1e-14, 0.0);
        assert_eq!(sol.status, SolveStatus::MaxIters);
        assert!(sol.usable());
        assert!(!sol.converged);
    }
}
