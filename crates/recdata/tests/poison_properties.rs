//! Property tests for the poisoning vocabulary: injected poison never exceeds
//! the fake-user / filler-item budget, and poisoned ratings stay on the 1–5
//! scale.

use msopds_het_graph::CsrGraph;
use msopds_recdata::{Dataset, DatasetSpec, PoisonAction, Rating, RatingMatrix};
use proptest::prelude::*;

fn ratings(n_users: u32, n_items: u32, max: usize) -> impl Strategy<Value = Vec<Rating>> {
    proptest::collection::vec(
        (0..n_users, 0..n_items, 1..=5u8).prop_map(|(user, item, v)| Rating {
            user,
            item,
            value: v as f64,
        }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fake-account injection stays within the attacker's budget: exactly
    /// `n_fakes` accounts are minted, each rates the target plus at most
    /// `fillers` filler items, and real users' profiles are untouched.
    #[test]
    fn fake_user_injection_respects_budget(
        n_fakes in 0usize..6,
        fillers in 0usize..6,
        seed in 0u64..20,
    ) {
        let mut data = DatasetSpec::micro().generate(seed);
        let n_real = data.n_real_users;
        let fakes = data.add_fake_users(n_fakes);
        prop_assert_eq!(fakes.len(), n_fakes);
        prop_assert_eq!(data.n_fake_users(), n_fakes);
        prop_assert_eq!(data.n_real_users, n_real, "real population must not shift");

        // Each fake pushes the target item plus up to `fillers` filler items.
        let filler_count = fillers.min(data.n_items().saturating_sub(1));
        let mut actions = Vec::new();
        for &f in &fakes {
            actions.push(PoisonAction::Rating { user: f as u32, item: 0, value: 5.0 });
            for j in 0..filler_count {
                actions.push(PoisonAction::Rating {
                    user: f as u32,
                    item: (j + 1) as u32,
                    value: ((j % 5) + 1) as f64,
                });
            }
        }
        let poisoned = data.apply_poison(&actions);
        prop_assert_eq!(poisoned.n_fake_users(), n_fakes, "poison must not mint extra accounts");
        for &f in &fakes {
            prop_assert!(poisoned.is_fake(f));
            prop_assert!(
                poisoned.ratings.user_degree(f) <= fillers + 1,
                "fake {} exceeded its filler budget: {} > {}",
                f,
                poisoned.ratings.user_degree(f),
                fillers + 1
            );
        }
        for u in 0..n_real {
            prop_assert_eq!(
                poisoned.ratings.user_degree(u),
                data.ratings.user_degree(u),
                "real user {} profile changed", u
            );
        }
    }

    /// Applying in-scale poison to an in-scale dataset keeps every stored
    /// rating — genuine or injected — on the valid 1–5 scale.
    #[test]
    fn poisoned_ratings_stay_in_scale(
        base in ratings(6, 6, 30),
        poison in ratings(6, 6, 15),
    ) {
        let m = RatingMatrix::from_ratings(6, 6, &base);
        let data = Dataset::new("scale", m, CsrGraph::empty(6), CsrGraph::empty(6));
        let actions: Vec<PoisonAction> = poison
            .iter()
            .map(|r| PoisonAction::Rating { user: r.user, item: r.item, value: r.value })
            .collect();
        let poisoned = data.apply_poison(&actions);
        for r in poisoned.ratings.ratings() {
            prop_assert!(
                (1.0..=5.0).contains(&r.value),
                "rating ({}, {}) = {} escaped the valid scale", r.user, r.item, r.value
            );
        }
        if let Some(g) = poisoned.ratings.global_mean() {
            prop_assert!((1.0..=5.0).contains(&g));
        }
    }

    /// The injected-action count is a hard ceiling on dataset growth: every
    /// rating beyond the genuine ones traces back to exactly one action, and
    /// edge actions only ever touch the graphs.
    #[test]
    fn poison_growth_is_bounded_by_action_count(
        base in ratings(5, 5, 20),
        poison in ratings(5, 5, 10),
        edges in proptest::collection::vec((0u32..5, 0u32..5), 0..8),
    ) {
        let m = RatingMatrix::from_ratings(5, 5, &base);
        let data = Dataset::new("bound", m, CsrGraph::empty(5), CsrGraph::empty(5));
        let mut actions: Vec<PoisonAction> = poison
            .iter()
            .map(|r| PoisonAction::Rating { user: r.user, item: r.item, value: r.value })
            .collect();
        let n_rating_actions = actions.len();
        actions.extend(edges.iter().map(|&(a, b)| PoisonAction::SocialEdge { a, b }));
        let poisoned = data.apply_poison(&actions);
        prop_assert!(poisoned.ratings.len() <= data.ratings.len() + n_rating_actions);
        prop_assert!(poisoned.social.num_edges() <= edges.len());
        prop_assert_eq!(poisoned.item_graph.num_edges(), data.item_graph.num_edges());
    }
}
