//! Seed-parity lock for the `WorldBuilder` redesign.
//!
//! `DatasetSpec::generate` became a thin wrapper over
//! `WorldBuilder::replay(..).build()`. These properties pin the contract:
//! for any spec at test scale (n ≤ 2k users) and any seed, the wrapper, the
//! builder, and the chunked re-assembly all describe the *same* dataset,
//! byte for byte — ratings (values included, compared through `to_bits`),
//! social CSR, and item graph.

use msopds_het_graph::CsrBuilder;
use msopds_recdata::{DatasetSpec, RatingMatrix, WorldBuilder};
use proptest::prelude::*;

/// Scaled specs staying under 2k users; factor 1 is full Ciao-micro range.
fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    (0usize..4, 2.0f64..32.0).prop_map(|(which, factor)| match which {
        0 => DatasetSpec::micro(),
        1 => DatasetSpec::ciao().scaled(factor.max(2.0)),
        2 => DatasetSpec::epinions().scaled(factor.max(2.0)),
        _ => DatasetSpec::library_thing().scaled(factor.max(2.0)),
    })
}

fn assert_bit_identical(a: &msopds_recdata::Dataset, b: &msopds_recdata::Dataset) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.ratings.ratings().len(), b.ratings.ratings().len());
    for (ra, rb) in a.ratings.ratings().iter().zip(b.ratings.ratings()) {
        assert_eq!((ra.user, ra.item), (rb.user, rb.item));
        assert_eq!(ra.value.to_bits(), rb.value.to_bits(), "rating value drifted");
    }
    assert_eq!(a.social, b.social);
    assert_eq!(a.item_graph, b.item_graph);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generate_is_a_thin_replay_wrapper(spec in arb_spec(), seed in 0u64..1_000_000) {
        assert!(spec.n_users <= 2000, "spec strategy must stay under 2k users");
        let legacy = spec.generate(seed);
        let built = WorldBuilder::replay(spec, seed).build();
        assert_bit_identical(&legacy, &built);
    }

    #[test]
    fn replay_chunks_reassemble_generate(
        spec in arb_spec(),
        seed in 0u64..1_000_000,
        rows in 1usize..512,
    ) {
        assert!(spec.n_users <= 2000, "spec strategy must stay under 2k users");
        let reference = spec.generate(seed);
        let b = WorldBuilder::replay(spec.clone(), seed);
        let mut chunks = Vec::new();
        b.for_each_chunk(rows, |c| chunks.push(c));
        let mut ratings = Vec::new();
        let mut social = CsrBuilder::new(spec.n_users);
        let mut covered = 0usize;
        for c in chunks {
            prop_assert_eq!(c.user_range.start, covered, "chunks must be contiguous");
            covered = c.user_range.end;
            prop_assert_eq!(c.user_latent.len(), c.user_range.len() * spec.latent_dim);
            for r in &c.ratings {
                prop_assert!(c.user_range.contains(&(r.user as usize)));
            }
            ratings.extend(c.ratings);
            social.add_edges(c.social_edges.iter().copied());
        }
        prop_assert_eq!(covered, spec.n_users);
        // Chunk emission groups ratings by user band; the matrix view is
        // order-insensitive, so compare through it.
        let matrix = RatingMatrix::from_ratings(spec.n_users, spec.n_items, &ratings);
        prop_assert_eq!(matrix.ratings().len(), reference.ratings.ratings().len());
        for u in 0..spec.n_users {
            prop_assert_eq!(matrix.user_degree(u), reference.ratings.user_degree(u));
        }
        prop_assert_eq!(social.finish(), reference.social.clone());
    }
}
