//! Replay-vs-streaming parity per density profile.
//!
//! The streaming builder was originally validated only on micro-shaped
//! (Ciao-like) worlds. These tests parameterize it over the three paper
//! dataset families via [`DensityProfile`] and assert that for every family
//! the streaming path produces a world statistically equivalent to the
//! sequential replay path: same dimensions, rating volume in the same band
//! around the spec target, comparable global means and social densities, and
//! chunk-size-invariant output. Ratios are checked loosely (the two paths use
//! different RNG disciplines and are *not* byte-identical by design) but
//! tightly enough that a density regression in either path fails the suite.

use msopds_recdata::{Dataset, DatasetSpec, DensityProfile, WorldBuilder};

/// The three paper families, at a population small enough for replay to be
/// cheap but large enough for the density ratios to be measurable.
fn profiles() -> Vec<(&'static str, DensityProfile, usize)> {
    vec![
        ("ciao", DensityProfile::ciao(), 160),
        ("epinions", DensityProfile::epinions(), 160),
        ("librarything", DensityProfile::library_thing(), 160),
    ]
}

fn ratings_per_user(d: &Dataset) -> f64 {
    d.ratings.len() as f64 / d.n_users() as f64
}

fn mean_social_degree(d: &Dataset) -> f64 {
    2.0 * d.social.num_edges() as f64 / d.n_users() as f64
}

#[test]
fn profile_specs_round_trip_the_presets() {
    for (preset, n_users) in [
        (DatasetSpec::ciao(), 2611),
        (DatasetSpec::epinions(), 1929),
        (DatasetSpec::library_thing(), 1108),
    ] {
        let spec = preset.density().spec(&preset.name, n_users);
        assert_eq!(spec.n_users, preset.n_users);
        // Round-tripping through per-user ratios re-rounds each count once.
        assert!((spec.n_items as i64 - preset.n_items as i64).abs() <= 1, "{}", preset.name);
        assert!((spec.n_ratings as i64 - preset.n_ratings as i64).abs() <= 1, "{}", preset.name);
        assert!((spec.n_links as i64 - preset.n_links as i64).abs() <= 1, "{}", preset.name);
    }
}

#[test]
fn profile_specs_preserve_family_ordering() {
    // The families' signature shapes must survive re-parameterization to an
    // arbitrary population: Ciao rates densely over a small catalog, Epinions
    // is rating-sparse with a big catalog, LibraryThing is link-sparse.
    let n = 500;
    let ciao = DensityProfile::ciao().spec("c", n);
    let epi = DensityProfile::epinions().spec("e", n);
    let lt = DensityProfile::library_thing().spec("l", n);
    assert!(ciao.n_ratings > 2 * epi.n_ratings && lt.n_ratings > 2 * epi.n_ratings);
    assert!(epi.n_items > 3 * ciao.n_items && lt.n_items > 3 * ciao.n_items);
    assert!(lt.n_links < ciao.n_links && lt.n_links < epi.n_links);
    assert!(epi.n_items > epi.n_ratings / 2, "epinions stays catalog-heavy");
}

#[test]
fn replay_and_streaming_agree_per_profile() {
    for (name, profile, n_users) in profiles() {
        let spec = profile.spec(name, n_users);
        let replayed = WorldBuilder::replay(spec.clone(), 21).build();
        let streamed = WorldBuilder::streaming(spec.clone(), 21).build();

        for (path, d) in [("replay", &replayed), ("streaming", &streamed)] {
            assert_eq!(d.n_users(), spec.n_users, "{name}/{path} users");
            assert_eq!(d.n_items(), spec.n_items, "{name}/{path} items");
            // Both samplers may saturate below target on duplicate pairs but
            // must stay in the same band around it.
            let r = d.ratings.len() as f64 / spec.n_ratings as f64;
            assert!(r > 0.7 && r < 1.1, "{name}/{path} rating volume ratio {r}");
            let mean = d.ratings.global_mean().unwrap();
            assert!(mean > 2.5 && mean < 4.6, "{name}/{path} global mean {mean}");
            assert!(d.social.num_edges() > 0, "{name}/{path} empty social graph");
            // Attachment uses m = links/users for both paths, so the realized
            // social density should track the spec on either.
            let target_deg = 2.0 * spec.n_links as f64 / spec.n_users as f64;
            let deg = mean_social_degree(d);
            assert!(
                deg > 0.4 * target_deg && deg < 1.6 * target_deg,
                "{name}/{path} mean social degree {deg:.2} vs target {target_deg:.2}"
            );
        }

        // Cross-path parity: the realized densities must land close together.
        let (rr, rs) = (ratings_per_user(&replayed), ratings_per_user(&streamed));
        assert!(
            (rr - rs).abs() / rr.max(rs) < 0.25,
            "{name} ratings/user diverge: replay {rr:.2} vs streaming {rs:.2}"
        );
        let (dr, ds) = (mean_social_degree(&replayed), mean_social_degree(&streamed));
        assert!(
            (dr - ds).abs() / dr.max(ds) < 0.5,
            "{name} social degree diverges: replay {dr:.2} vs streaming {ds:.2}"
        );
    }
}

#[test]
fn streaming_is_chunk_size_invariant_per_profile() {
    for (name, profile, n_users) in profiles() {
        let spec = profile.spec(name, n_users);
        let b = WorldBuilder::streaming(spec, 9);
        let collect = |rows: usize| {
            let mut ratings = Vec::new();
            let mut edges = Vec::new();
            b.for_each_chunk(rows, |c| {
                ratings.extend(c.ratings);
                edges.extend(c.social_edges);
            });
            edges.sort_unstable();
            (ratings, edges)
        };
        let whole = collect(usize::MAX);
        for rows in [13, 64] {
            let got = collect(rows);
            assert_eq!(got.0, whole.0, "{name}: ratings differ at chunk={rows}");
            assert_eq!(got.1, whole.1, "{name}: edges differ at chunk={rows}");
        }
    }
}

#[test]
fn streaming_is_deterministic_and_seed_sensitive_per_profile() {
    for (name, profile, n_users) in profiles() {
        let spec = profile.spec(name, n_users);
        let a = WorldBuilder::streaming(spec.clone(), 4).build();
        let b = WorldBuilder::streaming(spec.clone(), 4).build();
        assert_eq!(a.ratings.ratings(), b.ratings.ratings(), "{name} not deterministic");
        assert_eq!(a.social, b.social, "{name} social not deterministic");
        let c = WorldBuilder::streaming(spec, 5).build();
        assert_ne!(a.ratings.ratings(), c.ratings.ratings(), "{name} seed-insensitive");
    }
}
