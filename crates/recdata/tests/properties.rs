//! Property tests for the dataset substrate.

use msopds_het_graph::CsrGraph;
use msopds_recdata::{Dataset, DatasetSpec, PoisonAction, Rating, RatingMatrix};
use proptest::prelude::*;

fn ratings(n_users: u32, n_items: u32, max: usize) -> impl Strategy<Value = Vec<Rating>> {
    proptest::collection::vec(
        (0..n_users, 0..n_items, 1..=5u8).prop_map(|(user, item, v)| Rating {
            user,
            item,
            value: v as f64,
        }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matrix_indexes_stay_consistent(rs in ratings(8, 10, 60)) {
        let m = RatingMatrix::from_ratings(8, 10, &rs);
        // Per-user and per-item views cover exactly the stored triplets.
        let by_user: usize = (0..8).map(|u| m.user_degree(u)).sum();
        let by_item: usize = (0..10).map(|i| m.item_degree(i)).sum();
        prop_assert_eq!(by_user, m.len());
        prop_assert_eq!(by_item, m.len());
        // Last-write-wins: get() returns the final value for each pair.
        for r in &rs {
            let last = rs
                .iter()
                .rev()
                .find(|x| x.user == r.user && x.item == r.item)
                .expect("exists");
            prop_assert_eq!(m.get(r.user as usize, r.item as usize), Some(last.value));
        }
    }

    #[test]
    fn item_mean_is_bounded(rs in ratings(6, 6, 40)) {
        let m = RatingMatrix::from_ratings(6, 6, &rs);
        for i in 0..6 {
            if let Some(mean) = m.item_mean(i) {
                prop_assert!((1.0..=5.0).contains(&mean));
            }
        }
        if let Some(g) = m.global_mean() {
            prop_assert!((1.0..=5.0).contains(&g));
        }
    }

    #[test]
    fn apply_poison_never_mutates_original(
        rs in ratings(6, 6, 30),
        poison in ratings(6, 6, 10),
    ) {
        let m = RatingMatrix::from_ratings(6, 6, &rs);
        let data = Dataset::new("p", m, CsrGraph::empty(6), CsrGraph::empty(6));
        let before = data.ratings.len();
        let actions: Vec<PoisonAction> = poison
            .iter()
            .map(|r| PoisonAction::Rating { user: r.user, item: r.item, value: r.value })
            .collect();
        let poisoned = data.apply_poison(&actions);
        prop_assert_eq!(data.ratings.len(), before, "original dataset mutated");
        prop_assert!(poisoned.ratings.len() >= before);
        prop_assert!(poisoned.ratings.len() <= before + actions.len());
    }

    #[test]
    fn poison_edge_actions_grow_graphs_monotonically(
        edges in proptest::collection::vec((0u32..8, 0u32..8), 0..12)
    ) {
        let data = Dataset::new(
            "g",
            RatingMatrix::from_ratings(8, 8, &[Rating { user: 0, item: 0, value: 3.0 }]),
            CsrGraph::empty(8),
            CsrGraph::empty(8),
        );
        let actions: Vec<PoisonAction> = edges
            .iter()
            .map(|&(a, b)| PoisonAction::SocialEdge { a, b })
            .collect();
        let poisoned = data.apply_poison(&actions);
        for &(a, b) in &edges {
            if a != b {
                prop_assert!(poisoned.social.has_edge(a as usize, b as usize));
            }
        }
        prop_assert_eq!(poisoned.item_graph.num_edges(), 0);
    }

    #[test]
    fn generated_datasets_are_structurally_valid(seed in 0u64..50) {
        let data = DatasetSpec::micro().generate(seed);
        for r in data.ratings.ratings() {
            prop_assert!((r.user as usize) < data.n_users());
            prop_assert!((r.item as usize) < data.n_items());
            prop_assert!((1.0..=5.0).contains(&r.value));
        }
        prop_assert_eq!(data.social.num_nodes(), data.n_users());
        prop_assert_eq!(data.item_graph.num_nodes(), data.n_items());
        prop_assert_eq!(data.n_fake_users(), 0);
    }
}
