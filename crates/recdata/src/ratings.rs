//! Sparse explicit-rating storage (the rating matrix **R** of Definition 1).

use serde::{Deserialize, Serialize};

/// One explicit rating record `(user, item, value)` with `value ∈ [1, 5]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// Star value in `[1, 5]`.
    pub value: f64,
}

/// Sparse rating matrix with per-user and per-item indexes.
///
/// Duplicate `(user, item)` pairs keep the *latest* value, matching the
/// poisoning semantics where a hired user overwrites their rating of the
/// target item.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RatingMatrix {
    n_users: usize,
    n_items: usize,
    triplets: Vec<Rating>,
    by_user: Vec<Vec<u32>>, // indexes into `triplets`
    by_item: Vec<Vec<u32>>,
}

impl RatingMatrix {
    /// An empty matrix over `n_users × n_items`.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        Self {
            n_users,
            n_items,
            triplets: Vec::new(),
            by_user: vec![Vec::new(); n_users],
            by_item: vec![Vec::new(); n_items],
        }
    }

    /// Builds from records, last-write-wins on duplicates.
    pub fn from_ratings(n_users: usize, n_items: usize, ratings: &[Rating]) -> Self {
        let mut m = Self::new(n_users, n_items);
        for &r in ratings {
            m.insert(r);
        }
        m
    }

    /// Number of users (rows).
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items (columns).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of stored ratings.
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// True when no ratings are stored.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Inserts or overwrites a rating.
    ///
    /// # Panics
    /// Panics on out-of-range ids or a value outside `[1, 5]`.
    pub fn insert(&mut self, r: Rating) {
        assert!((r.user as usize) < self.n_users, "user {} out of range", r.user);
        assert!((r.item as usize) < self.n_items, "item {} out of range", r.item);
        assert!((1.0..=5.0).contains(&r.value), "rating {} outside [1,5]", r.value);
        // Overwrite an existing (user, item) pair if present.
        if let Some(&idx) = self.by_user[r.user as usize]
            .iter()
            .find(|&&i| self.triplets[i as usize].item == r.item)
        {
            self.triplets[idx as usize].value = r.value;
            return;
        }
        let idx = self.triplets.len() as u32;
        self.triplets.push(r);
        self.by_user[r.user as usize].push(idx);
        self.by_item[r.item as usize].push(idx);
    }

    /// Grows the user dimension to `n` (noop if already larger).
    pub fn grow_users(&mut self, n: usize) {
        if n > self.n_users {
            self.by_user.resize(n, Vec::new());
            self.n_users = n;
        }
    }

    /// The stored value for `(user, item)`, if any.
    pub fn get(&self, user: usize, item: usize) -> Option<f64> {
        self.by_user
            .get(user)?
            .iter()
            .map(|&i| self.triplets[i as usize])
            .find(|r| r.item as usize == item)
            .map(|r| r.value)
    }

    /// All ratings, in insertion order.
    pub fn ratings(&self) -> &[Rating] {
        &self.triplets
    }

    /// Ratings given by `user`.
    pub fn by_user(&self, user: usize) -> impl Iterator<Item = Rating> + '_ {
        self.by_user[user].iter().map(|&i| self.triplets[i as usize])
    }

    /// Ratings received by `item`.
    pub fn by_item(&self, item: usize) -> impl Iterator<Item = Rating> + '_ {
        self.by_item[item].iter().map(|&i| self.triplets[i as usize])
    }

    /// Number of ratings given by `user`.
    pub fn user_degree(&self, user: usize) -> usize {
        self.by_user[user].len()
    }

    /// Number of ratings received by `item`.
    pub fn item_degree(&self, item: usize) -> usize {
        self.by_item[item].len()
    }

    /// Mean rating of `item`, or `None` when unrated.
    pub fn item_mean(&self, item: usize) -> Option<f64> {
        let list = &self.by_item[item];
        if list.is_empty() {
            return None;
        }
        Some(list.iter().map(|&i| self.triplets[i as usize].value).sum::<f64>() / list.len() as f64)
    }

    /// Global mean rating, or `None` when empty.
    pub fn global_mean(&self) -> Option<f64> {
        if self.triplets.is_empty() {
            return None;
        }
        Some(self.triplets.iter().map(|r| r.value).sum::<f64>() / self.triplets.len() as f64)
    }

    /// Sorted, deduplicated rater list per item — the input format of
    /// [`msopds_het_graph::build_item_graph`].
    pub fn raters_per_item(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.n_items];
        for r in &self.triplets {
            out[r.item as usize].push(r.user as usize);
        }
        for list in &mut out {
            list.sort_unstable();
            list.dedup();
        }
        out
    }

    /// Items sorted by descending rating count (most popular first).
    pub fn items_by_popularity(&self) -> Vec<usize> {
        let mut items: Vec<usize> = (0..self.n_items).collect();
        items.sort_by_key(|&i| std::cmp::Reverse(self.by_item[i].len()));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(user: u32, item: u32, value: f64) -> Rating {
        Rating { user, item, value }
    }

    #[test]
    fn insert_and_get() {
        let mut m = RatingMatrix::new(3, 4);
        m.insert(r(0, 1, 4.0));
        m.insert(r(2, 3, 1.0));
        assert_eq!(m.get(0, 1), Some(4.0));
        assert_eq!(m.get(0, 2), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_last_wins() {
        let mut m = RatingMatrix::new(2, 2);
        m.insert(r(0, 0, 2.0));
        m.insert(r(0, 0, 5.0));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), Some(5.0));
        assert_eq!(m.item_degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "outside [1,5]")]
    fn rejects_out_of_range_value() {
        let mut m = RatingMatrix::new(1, 1);
        m.insert(r(0, 0, 0.5));
    }

    #[test]
    fn means() {
        let m = RatingMatrix::from_ratings(3, 2, &[r(0, 0, 1.0), r(1, 0, 5.0), r(2, 1, 3.0)]);
        assert_eq!(m.item_mean(0), Some(3.0));
        assert_eq!(m.item_mean(1), Some(3.0));
        assert_eq!(m.global_mean(), Some(3.0));
        assert_eq!(RatingMatrix::new(1, 1).item_mean(0), None);
    }

    #[test]
    fn raters_per_item_sorted() {
        let m = RatingMatrix::from_ratings(4, 2, &[r(3, 0, 2.0), r(1, 0, 3.0), r(2, 1, 4.0)]);
        let lists = m.raters_per_item();
        assert_eq!(lists[0], vec![1, 3]);
        assert_eq!(lists[1], vec![2]);
    }

    #[test]
    fn grow_users() {
        let mut m = RatingMatrix::new(2, 2);
        m.grow_users(4);
        m.insert(r(3, 1, 5.0));
        assert_eq!(m.n_users(), 4);
        assert_eq!(m.user_degree(3), 1);
    }

    #[test]
    fn popularity_order() {
        let m = RatingMatrix::from_ratings(
            3,
            3,
            &[r(0, 2, 3.0), r(1, 2, 3.0), r(2, 2, 3.0), r(0, 0, 3.0)],
        );
        let order = m.items_by_popularity();
        assert_eq!(order[0], 2);
        assert_eq!(m.items_by_popularity().len(), 3);
    }
}
