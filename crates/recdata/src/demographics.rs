//! Demographic sampling (§VI-A.2): target audience, customer bases, competing
//! items, target item and company products for every player.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Sampling parameters matching §VI-A.2 (counts are capped to availability on
/// small synthetic datasets).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DemographicsSpec {
    /// Fraction of users forming the target audience (paper: 5 %).
    pub target_audience_frac: f64,
    /// Customer-base size per player (paper: 100).
    pub customer_base: usize,
    /// Number of competing items (paper: 50).
    pub competing: usize,
    /// Company-product count per player (paper: 100).
    pub products: usize,
}

impl Default for DemographicsSpec {
    fn default() -> Self {
        Self { target_audience_frac: 0.05, customer_base: 100, competing: 50, products: 100 }
    }
}

impl DemographicsSpec {
    /// A spec scaled down for reduced-size datasets.
    ///
    /// Counts shrink with `√factor` rather than `factor`: the customer base
    /// and product pools are *budget denominators* (N = b·5 %·|𝒰_base|,
    /// §VI-A.3), so scaling them linearly would collapse all budgets to 1 and
    /// erase the budget sweeps of Table III and Fig. 7.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        let f = factor.sqrt();
        Self {
            target_audience_frac: self.target_audience_frac,
            customer_base: ((self.customer_base as f64 / f).round() as usize).max(10),
            competing: ((self.competing as f64 / f).round() as usize).max(8),
            products: ((self.products as f64 / f).round() as usize).max(10),
        }
    }
}

/// Per-player market assets (index 0 is the attacker, the rest are opponents).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlayerAssets {
    /// Real users this player can hire (𝒰ᵖ_base).
    pub customer_base: Vec<usize>,
    /// The player's own items (ℐᵖ_product), usable for item-graph poisoning.
    pub company_products: Vec<usize>,
}

/// The sampled market: who competes over what, and the attacker's target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Market {
    /// The shared competing-item set ℐ_compete (the ranking pool for HR@3).
    pub competing_items: Vec<usize>,
    /// The attacker's target item i_t: the competing item with the lowest
    /// average rating (§VI-A.2) — i.e. the hardest to promote.
    pub target_item: usize,
    /// The shared target audience 𝒰_TA.
    pub target_audience: Vec<usize>,
    /// Assets per player; `players[0]` is the attacker.
    pub players: Vec<PlayerAssets>,
}

/// Samples a [`Market`] over `data` for `1 + n_opponents` players.
///
/// # Panics
/// Panics if the dataset has no rated items to choose a target from.
pub fn sample_market<R: Rng>(
    data: &Dataset,
    spec: &DemographicsSpec,
    n_opponents: usize,
    rng: &mut R,
) -> Market {
    let users: Vec<usize> = (0..data.n_real_users).collect();
    let items: Vec<usize> = (0..data.n_items()).collect();

    // Competing items must have ratings so "lowest average rating" is defined.
    let rated: Vec<usize> =
        items.iter().copied().filter(|&i| data.ratings.item_degree(i) > 0).collect();
    assert!(!rated.is_empty(), "dataset has no rated items");
    let n_compete = spec.competing.min(rated.len());
    let competing_items: Vec<usize> = rated.choose_multiple(rng, n_compete).copied().collect();
    let target_item = competing_items
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let ma = data.ratings.item_mean(a).unwrap_or(f64::MAX);
            let mb = data.ratings.item_mean(b).unwrap_or(f64::MAX);
            ma.partial_cmp(&mb).expect("rating means are finite")
        })
        .expect("competing set is non-empty");

    let n_ta = ((users.len() as f64 * spec.target_audience_frac).round() as usize).max(3);
    let target_audience: Vec<usize> = users.choose_multiple(rng, n_ta).copied().collect();

    let non_competing: Vec<usize> =
        items.iter().copied().filter(|i| !competing_items.contains(i)).collect();

    let players = (0..=n_opponents)
        .map(|_| {
            let customer_base: Vec<usize> =
                users.choose_multiple(rng, spec.customer_base.min(users.len())).copied().collect();
            let company_products: Vec<usize> = non_competing
                .choose_multiple(rng, spec.products.min(non_competing.len()))
                .copied()
                .collect();
            PlayerAssets { customer_base, company_products }
        })
        .collect();

    Market { competing_items, target_item, target_audience, players }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Market) {
        let data = DatasetSpec::micro().generate(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let spec = DemographicsSpec::default().scaled(8.0);
        let market = sample_market(&data, &spec, 2, &mut rng);
        (data, market)
    }

    #[test]
    fn target_item_is_lowest_rated_competitor() {
        let (data, market) = setup();
        let target_mean = data.ratings.item_mean(market.target_item).unwrap();
        for &i in &market.competing_items {
            if let Some(m) = data.ratings.item_mean(i) {
                assert!(target_mean <= m + 1e-12);
            }
        }
    }

    #[test]
    fn target_is_in_competing_set() {
        let (_, market) = setup();
        assert!(market.competing_items.contains(&market.target_item));
    }

    #[test]
    fn player_count_and_asset_sizes() {
        let (data, market) = setup();
        assert_eq!(market.players.len(), 3); // attacker + 2 opponents
        for p in &market.players {
            assert!(!p.customer_base.is_empty());
            assert!(!p.company_products.is_empty());
            for &u in &p.customer_base {
                assert!(u < data.n_real_users);
            }
            // Products never overlap the competing set.
            for i in &p.company_products {
                assert!(!market.competing_items.contains(i));
            }
        }
    }

    #[test]
    fn target_audience_is_real_users() {
        let (data, market) = setup();
        assert!(!market.target_audience.is_empty());
        for &u in &market.target_audience {
            assert!(u < data.n_real_users);
        }
        // No duplicates.
        let mut ta = market.target_audience.clone();
        ta.sort_unstable();
        ta.dedup();
        assert_eq!(ta.len(), market.target_audience.len());
    }

    #[test]
    fn scaled_spec_shrinks_with_sqrt() {
        let s = DemographicsSpec::default().scaled(16.0);
        assert_eq!(s.customer_base, 25); // 100/√16
        assert_eq!(s.competing, 13); // 50/√16 rounded
        assert_eq!(s.products, 25);
        // Floors hold at extreme scales.
        let tiny = DemographicsSpec::default().scaled(400.0);
        assert_eq!(tiny.customer_base, 10);
        assert_eq!(tiny.competing, 8);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let data = DatasetSpec::micro().generate(1);
        let spec = DemographicsSpec::default().scaled(8.0);
        let m1 = sample_market(&data, &spec, 1, &mut rand::rngs::StdRng::seed_from_u64(9));
        let m2 = sample_market(&data, &spec, 1, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(m1.target_item, m2.target_item);
        assert_eq!(m1.target_audience, m2.target_audience);
    }
}
