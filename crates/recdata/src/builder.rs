//! Streaming world construction: the `WorldBuilder` API.
//!
//! [`DatasetSpec::generate`] historically materialized every intermediate
//! (per-user latent vectors, the full rating list, per-node adjacency
//! `Vec`s) before assembling a [`Dataset`] — fine at paper scale, a
//! dead end at a million users. `WorldBuilder` inverts the control flow:
//! the world is *emitted* as row-range [`WorldChunk`]s (ratings, social
//! edges, and planted user factors for a band of users), and consumers
//! decide what to keep. The scale bench streams chunks straight into a
//! snapshot writer and a [`msopds_het_graph::CsrBuilder`], never holding
//! more than one chunk of user state.
//!
//! Two modes share the API:
//!
//! * **Replay** ([`WorldBuilder::replay`]) runs the original sequential-RNG
//!   generator and re-emits its output in chunks. `DatasetSpec::generate`
//!   is now a thin wrapper over this mode, so existing seeds reproduce
//!   **byte-identical** datasets (locked by `tests/builder_parity.rs`).
//! * **Streaming** ([`WorldBuilder::streaming`]) derives every draw from a
//!   keyed hash of `(seed, phase, index)` instead of one sequential RNG, so
//!   a chunk's content is independent of chunk size and of all other
//!   chunks. Item-side tables (clusters, planted factors, a Feistel-
//!   permuted Zipf popularity) are O(n_items); user-side state is O(chunk).
//!   Social edges come from the chunk-invariant attachment generator in
//!   `msopds_het_graph::generate`.

use std::ops::Range;

use rand::Rng;
use rand::SeedableRng;

use msopds_het_graph::{build_item_graph, generate, CsrBuilder, CsrGraph};

use crate::dataset::Dataset;
use crate::ratings::{Rating, RatingMatrix};
use crate::synth::DatasetSpec;

/// One row-range band of a synthetic world.
#[derive(Clone, Debug)]
pub struct WorldChunk {
    /// The user ids this chunk covers.
    pub user_range: Range<usize>,
    /// Ratings by users in `user_range`, in emission order.
    pub ratings: Vec<Rating>,
    /// Social edges *owned by* nodes in `user_range` (each undirected edge
    /// is owned by exactly one endpoint, so concatenating all chunks yields
    /// every edge exactly once).
    pub social_edges: Vec<(usize, usize)>,
    /// Planted user factors, row-major `[user_range.len(), latent_dim]` —
    /// what the scale bench streams into a planted-model snapshot.
    pub user_latent: Vec<f64>,
}

/// How the builder produces draws.
enum Mode {
    /// The original sequential-RNG pipeline, re-emitted in chunks.
    Replay,
    /// Keyed per-(seed, phase, index) draws; chunk-size invariant.
    Streaming(StreamTables),
}

/// Streaming world construction over row-range chunks; see the module docs.
pub struct WorldBuilder {
    spec: DatasetSpec,
    seed: u64,
    mode: Mode,
}

impl WorldBuilder {
    /// A builder that replays the legacy sequential generator: byte-identical
    /// to what `DatasetSpec::generate(seed)` has always produced.
    pub fn replay(spec: DatasetSpec, seed: u64) -> Self {
        Self { spec, seed, mode: Mode::Replay }
    }

    /// A builder whose draws are keyed hashes — chunk-size invariant and
    /// O(n_items + chunk) resident, the constructor for million-user worlds.
    /// The distribution family matches replay (clustered planted factors,
    /// Zipf popularity, heavy-tailed social graph) but the streams differ
    /// draw-for-draw; use [`WorldBuilder::replay`] when byte-compat with
    /// historical seeds matters.
    pub fn streaming(spec: DatasetSpec, seed: u64) -> Self {
        let tables = StreamTables::build(&spec, seed);
        Self { spec, seed, mode: Mode::Streaming(tables) }
    }

    /// The spec this builder realizes.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Planted item factors, row-major `[n_items, latent_dim]`.
    pub fn item_latent(&self) -> Vec<f64> {
        match &self.mode {
            Mode::Replay => replay_world(&self.spec, self.seed).item_latent,
            Mode::Streaming(t) => t.item_latent.clone(),
        }
    }

    /// Emits the world as consecutive chunks of at most `rows_per_chunk`
    /// users. In streaming mode each chunk is computed independently; in
    /// replay mode the legacy world is generated once and sliced.
    pub fn for_each_chunk<F: FnMut(WorldChunk)>(&self, rows_per_chunk: usize, mut f: F) {
        let rows_per_chunk = rows_per_chunk.max(1);
        match &self.mode {
            Mode::Replay => {
                let world = replay_world(&self.spec, self.seed);
                let n = self.spec.n_users;
                let d = self.spec.latent_dim;
                let mut u0 = 0;
                while u0 < n {
                    let u1 = (u0 + rows_per_chunk).min(n);
                    let ratings: Vec<Rating> = world
                        .ratings
                        .iter()
                        .filter(|r| (u0..u1).contains(&(r.user as usize)))
                        .cloned()
                        .collect();
                    // Each undirected edge is owned by its larger endpoint.
                    let social_edges: Vec<(usize, usize)> = world
                        .social
                        .edges()
                        .into_iter()
                        .filter(|&(a, b)| {
                            let owner = a.max(b);
                            (u0..u1).contains(&owner)
                        })
                        .collect();
                    f(WorldChunk {
                        user_range: u0..u1,
                        ratings,
                        social_edges,
                        user_latent: world.user_latent[u0 * d..u1 * d].to_vec(),
                    });
                    u0 = u1;
                }
            }
            Mode::Streaming(t) => {
                let n = self.spec.n_users;
                let mut u0 = 0;
                while u0 < n {
                    let u1 = (u0 + rows_per_chunk).min(n);
                    f(self.stream_chunk(t, u0..u1));
                    u0 = u1;
                }
            }
        }
    }

    /// Assembles the full [`Dataset`]. For replay mode this *is* the legacy
    /// `DatasetSpec::generate` output; for streaming mode the rating matrix
    /// and social CSR are accumulated chunk by chunk (O(E), no dense
    /// intermediate) and the item graph comes from the streaming generator.
    pub fn build(&self) -> Dataset {
        match &self.mode {
            Mode::Replay => {
                let world = replay_world(&self.spec, self.seed);
                let matrix =
                    RatingMatrix::from_ratings(self.spec.n_users, self.spec.n_items, &world.ratings);
                let item_graph = build_item_graph(
                    self.spec.n_users,
                    &matrix.raters_per_item(),
                    self.spec.item_graph_threshold,
                );
                Dataset::new(self.spec.name.clone(), matrix, world.social, item_graph)
            }
            Mode::Streaming(t) => {
                let mut ratings = Vec::with_capacity(self.spec.n_ratings);
                let mut social = CsrBuilder::with_capacity(self.spec.n_users, self.spec.n_links);
                self.for_each_chunk(65_536, |chunk| {
                    ratings.extend(chunk.ratings);
                    social.add_edges(chunk.social_edges.iter().copied());
                });
                let matrix =
                    RatingMatrix::from_ratings(self.spec.n_users, self.spec.n_items, &ratings);
                let item_graph = generate::streaming_social_like(
                    self.spec.n_items,
                    t.item_graph_edges,
                    phase_seed(self.seed, PHASE_ITEM_GRAPH),
                );
                Dataset::new(self.spec.name.clone(), matrix, social.finish(), item_graph)
            }
        }
    }

    /// Standard preprocessing from the paper (footnote 6): keep users with
    /// at least `min_friends` social links and `min_ratings` ratings,
    /// re-indexed densely. The social re-index goes through [`CsrBuilder`]
    /// (flat half-edge buffer, no per-node `Vec`s) so the filter scales to
    /// streamed worlds.
    pub fn preprocess(data: &Dataset, min_friends: usize, min_ratings: usize) -> Dataset {
        let keep: Vec<usize> = (0..data.n_users())
            .filter(|&u| {
                data.social.degree(u) >= min_friends && data.ratings.user_degree(u) >= min_ratings
            })
            .collect();
        let mut remap = vec![usize::MAX; data.n_users()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let mut ratings = RatingMatrix::new(keep.len(), data.n_items());
        for r in data.ratings.ratings() {
            let nu = remap[r.user as usize];
            if nu != usize::MAX {
                ratings.insert(Rating { user: nu as u32, ..*r });
            }
        }
        let mut social = CsrBuilder::new(keep.len());
        for &old in &keep {
            for b in data.social.neighbors(old) {
                let nb = remap[b];
                if nb != usize::MAX && remap[old] < nb {
                    social.add_edge(remap[old], nb);
                }
            }
        }
        Dataset::new(
            format!("{}-filtered", data.name),
            ratings,
            social.finish(),
            data.item_graph.clone(),
        )
    }

    /// One independently-computed streaming chunk.
    fn stream_chunk(&self, t: &StreamTables, range: Range<usize>) -> WorldChunk {
        let spec = &self.spec;
        let d = spec.latent_dim;
        let base_count = spec.n_ratings as f64 / spec.n_users as f64;
        let mut ratings = Vec::new();
        let mut user_latent = Vec::with_capacity(range.len() * d);
        let mut social_edges = Vec::new();
        let mut picked: Vec<usize> = Vec::new();
        for u in range.clone() {
            let cluster =
                (keyed_unit(self.seed, PHASE_USER_CLUSTER, u as u64, 0) * spec.n_clusters as f64)
                    as usize;
            let cluster = cluster.min(spec.n_clusters - 1);
            let row_start = user_latent.len();
            for k in 0..d {
                let g = keyed_gauss(self.seed, PHASE_USER_LATENT, u as u64, k as u64);
                user_latent.push(t.centers[cluster * d + k] + g * 0.35);
            }
            let frac = base_count.fract();
            let mut count = base_count.floor() as usize
                + usize::from(keyed_unit(self.seed, PHASE_RATING_COUNT, u as u64, 0) < frac);
            count = count.min(spec.n_items);
            picked.clear();
            for j in 0..count {
                // Duplicate (user, item) pairs redraw on fresh keyed lanes, like
                // replay's rejection loop; a slot that stays saturated after
                // RATING_REDRAWS is dropped. Without the redraws, dense
                // profiles (Ciao: ~17 ratings/user over small genre clusters)
                // lose ~25% of their rating volume relative to replay.
                let Some(i) = (0..RATING_REDRAWS)
                    .map(|retry| t.pick_item(self.seed, u as u64, j as u64, retry, cluster, spec))
                    .find(|i| !picked.contains(i))
                else {
                    continue;
                };
                picked.push(i);
                let affinity: f64 = (0..d)
                    .map(|k| user_latent[row_start + k] * t.item_latent[i * d + k])
                    .sum();
                let noise = keyed_gauss(self.seed, PHASE_RATING_NOISE, u as u64, j as u64);
                let raw = 3.3 + affinity + noise * spec.rating_noise;
                let stars = raw.round().clamp(1.0, 5.0);
                ratings.push(Rating { user: u as u32, item: i as u32, value: stars });
            }
        }
        generate::streaming_attachment_chunk(
            spec.n_users,
            t.m_social,
            phase_seed(self.seed, PHASE_SOCIAL),
            range.clone(),
            &mut social_edges,
        );
        WorldChunk { user_range: range, ratings, social_edges, user_latent }
    }
}

// Phase tags separating the keyed draw streams.
const PHASE_CENTERS: u64 = 1;
const PHASE_ITEM_CLUSTER: u64 = 2;
const PHASE_ITEM_LATENT: u64 = 3;
const PHASE_USER_CLUSTER: u64 = 4;
const PHASE_USER_LATENT: u64 = 5;
const PHASE_RATING_COUNT: u64 = 6;
const PHASE_RATING_NOISE: u64 = 7;
const PHASE_ITEM_PICK: u64 = 8;
const PHASE_SOCIAL: u64 = 9;
const PHASE_ITEM_GRAPH: u64 = 10;
const PHASE_PERM: u64 = 11;

// Redraw attempts per rating slot before a duplicate pair is dropped. Eight
// lanes push the residual loss below 1% even for the densest profile's
// in-cluster Zipf picks, matching replay's rejection-sampled volume.
const RATING_REDRAWS: u64 = 8;

/// Item-side tables for streaming mode: O(n_items), computed once.
struct StreamTables {
    /// Cluster centers, row-major `[n_clusters, latent_dim]`.
    centers: Vec<f64>,
    /// Planted item factors, row-major `[n_items, latent_dim]`.
    item_latent: Vec<f64>,
    /// Per-cluster item ids, sorted by descending popularity.
    clusters: Vec<Vec<u32>>,
    /// The Feistel permutation defining each item's popularity rank.
    perm: FeistelPerm,
    /// Attachment parameter for the social graph.
    m_social: usize,
    /// Edge target for the streaming item graph.
    item_graph_edges: usize,
}

impl StreamTables {
    fn build(spec: &DatasetSpec, seed: u64) -> Self {
        let d = spec.latent_dim;
        let mut centers = Vec::with_capacity(spec.n_clusters * d);
        for c in 0..spec.n_clusters {
            for k in 0..d {
                centers.push(keyed_gauss(seed, PHASE_CENTERS, c as u64, k as u64) * 0.9);
            }
        }
        let perm = FeistelPerm::new(phase_seed(seed, PHASE_PERM), spec.n_items);
        let mut item_cluster = Vec::with_capacity(spec.n_items);
        let mut item_latent = Vec::with_capacity(spec.n_items * d);
        for i in 0..spec.n_items {
            let c = ((keyed_unit(seed, PHASE_ITEM_CLUSTER, i as u64, 0) * spec.n_clusters as f64)
                as usize)
                .min(spec.n_clusters - 1);
            item_cluster.push(c);
            for k in 0..d {
                let g = keyed_gauss(seed, PHASE_ITEM_LATENT, i as u64, k as u64);
                item_latent.push(centers[c * d + k] + g * 0.35);
            }
        }
        // Per-cluster lists sorted by ascending rank == descending weight,
        // so the local Zipf-ish index sampler favors popular items.
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); spec.n_clusters];
        for (i, &c) in item_cluster.iter().enumerate() {
            clusters[c].push(i as u32);
        }
        for list in &mut clusters {
            list.sort_by_key(|&i| perm.rank(i as usize));
        }
        let m_social = generate::attachment_m(spec.n_users, spec.n_links);
        Self {
            centers,
            item_latent,
            clusters,
            perm,
            m_social,
            item_graph_edges: spec.n_items.saturating_mul(4),
        }
    }

    /// One keyed item pick for `(user, draw j)`: cluster-biased with
    /// probability `in_cluster_prob`, Zipf-weighted by popularity rank via
    /// the inverse-CDF sampler (O(1), no rejection loop).
    fn pick_item(
        &self,
        seed: u64,
        u: u64,
        j: u64,
        retry: u64,
        cluster: usize,
        spec: &DatasetSpec,
    ) -> usize {
        let key = u.rotate_left(20) ^ j;
        // Lane pairs (0,1), (2,3), … keep retry draws independent while
        // retry 0 reproduces the original single-draw stream.
        let in_cluster = keyed_unit(seed, PHASE_ITEM_PICK, key, 2 * retry) < spec.in_cluster_prob;
        let r = keyed_unit(seed, PHASE_ITEM_PICK, key, 2 * retry + 1);
        if in_cluster && !self.clusters[cluster].is_empty() {
            let list = &self.clusters[cluster];
            let local = zipf_rank(r, list.len(), spec.zipf_exponent);
            list[local] as usize
        } else {
            let rank = zipf_rank(r, spec.n_items, spec.zipf_exponent);
            self.perm.item(rank)
        }
    }
}

/// Inverse-CDF sample of a rank in `0..n` with `P(rank) ∝ 1/(rank+1)^s`
/// (continuous approximation; exact enough for a popularity profile).
fn zipf_rank(unit: f64, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    let nf = (n + 1) as f64;
    let x = if (s - 1.0).abs() < 1e-9 {
        // CDF(x) = ln(x) / ln(n+1)  →  x = (n+1)^u
        nf.powf(unit)
    } else {
        // CDF(x) = (x^(1-s) - 1) / ((n+1)^(1-s) - 1)
        let t = 1.0 - s;
        (1.0 + unit * (nf.powf(t) - 1.0)).powf(1.0 / t)
    };
    ((x.floor() as usize).saturating_sub(1)).min(n - 1)
}

/// A keyed bijection on `0..n` via a 4-round balanced Feistel network with
/// cycle-walking: `rank(item)` and `item(rank)` are exact inverses, each
/// O(1), with no n-sized permutation table — this replaces replay mode's
/// `perm.shuffle` for the streaming Zipf popularity assignment.
struct FeistelPerm {
    seed: u64,
    n: usize,
    half_bits: u32,
}

impl FeistelPerm {
    fn new(seed: u64, n: usize) -> Self {
        let needed = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(2);
        let half_bits = needed.div_ceil(2);
        Self { seed, n, half_bits }
    }

    #[cfg(test)]
    fn domain(&self) -> u64 {
        1u64 << (2 * self.half_bits)
    }

    fn round(&self, x: u64, r: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut z = self.seed ^ (r << 32) ^ x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) & mask
    }

    fn encrypt_once(&self, v: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (v >> self.half_bits, v & mask);
        for round in 0..4u64 {
            let (nl, nr) = (r, l ^ self.round(r, round));
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    fn decrypt_once(&self, v: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (v >> self.half_bits, v & mask);
        for round in (0..4u64).rev() {
            let (nl, nr) = (r ^ self.round(l, round), l);
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// The popularity rank of `item` (cycle-walked into `0..n`).
    fn rank(&self, item: usize) -> usize {
        debug_assert!(item < self.n);
        let mut v = self.encrypt_once(item as u64);
        while v >= self.n as u64 {
            v = self.encrypt_once(v);
        }
        v as usize
    }

    /// The item holding popularity `rank` — the inverse of
    /// [`FeistelPerm::rank`].
    fn item(&self, rank: usize) -> usize {
        debug_assert!(rank < self.n);
        let mut v = self.decrypt_once(rank as u64);
        while v >= self.n as u64 {
            v = self.decrypt_once(v);
        }
        v as usize
    }
}

/// A phase-separated derived seed.
fn phase_seed(seed: u64, phase: u64) -> u64 {
    splitmix64(seed ^ phase.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform `[0, 1)` draw keyed on `(seed, phase, index, lane)`.
fn keyed_unit(seed: u64, phase: u64, index: u64, lane: u64) -> f64 {
    let r = splitmix64(splitmix64(phase_seed(seed, phase) ^ index.rotate_left(32)) ^ lane);
    (r >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard-normal draw keyed on `(seed, phase, index, lane)` — Box–Muller
/// over two keyed units, matching the replay generator's `gauss`.
fn keyed_gauss(seed: u64, phase: u64, index: u64, lane: u64) -> f64 {
    let u1 = keyed_unit(seed, phase, index, lane.wrapping_mul(2)).max(f64::EPSILON);
    let u2 = keyed_unit(seed, phase, index, lane.wrapping_mul(2) + 1);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Everything replay mode materializes, in legacy order.
struct ReplayWorld {
    ratings: Vec<Rating>,
    user_latent: Vec<f64>,
    item_latent: Vec<f64>,
    social: CsrGraph,
}

/// The original `DatasetSpec::generate` pipeline, draw-for-draw: one
/// sequential `StdRng`, the exact phase order, the exact sampling loops.
/// Kept verbatim so existing seeds keep producing byte-identical data.
fn replay_world(spec: &DatasetSpec, seed: u64) -> ReplayWorld {
    use rand::seq::SliceRandom;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = spec.latent_dim;

    // Planted structure: cluster centers, then user/item latents.
    let centers: Vec<Vec<f64>> =
        (0..spec.n_clusters).map(|_| (0..d).map(|_| gauss(&mut rng) * 0.9).collect()).collect();
    let user_cluster: Vec<usize> =
        (0..spec.n_users).map(|_| rng.gen_range(0..spec.n_clusters)).collect();
    let item_cluster: Vec<usize> =
        (0..spec.n_items).map(|_| rng.gen_range(0..spec.n_clusters)).collect();
    let user_latent: Vec<Vec<f64>> = (0..spec.n_users)
        .map(|u| (0..d).map(|k| centers[user_cluster[u]][k] + gauss(&mut rng) * 0.35).collect())
        .collect();
    let item_latent: Vec<Vec<f64>> = (0..spec.n_items)
        .map(|i| (0..d).map(|k| centers[item_cluster[i]][k] + gauss(&mut rng) * 0.35).collect())
        .collect();

    // Item popularity (Zipf over a random permutation).
    let mut perm: Vec<usize> = (0..spec.n_items).collect();
    perm.shuffle(&mut rng);
    let mut weight = vec![0.0; spec.n_items];
    for (rank, &item) in perm.iter().enumerate() {
        weight[item] = 1.0 / ((rank + 1) as f64).powf(spec.zipf_exponent);
    }
    // Per-cluster popularity-weighted item lists for cluster-biased picks.
    let mut cluster_items: Vec<Vec<usize>> = vec![Vec::new(); spec.n_clusters];
    for i in 0..spec.n_items {
        cluster_items[item_cluster[i]].push(i);
    }

    let mut seen = std::collections::HashSet::new();
    let mut ratings = Vec::with_capacity(spec.n_ratings);
    let mut attempts = 0usize;
    let max_attempts = spec.n_ratings * 30;
    while ratings.len() < spec.n_ratings && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..spec.n_users);
        let pool: &[usize] =
            if rng.gen_bool(spec.in_cluster_prob) && !cluster_items[user_cluster[u]].is_empty() {
                &cluster_items[user_cluster[u]]
            } else {
                &perm
            };
        let i = weighted_pick(pool, &weight, &mut rng);
        if !seen.insert((u, i)) {
            continue;
        }
        let affinity: f64 = (0..d).map(|k| user_latent[u][k] * item_latent[i][k]).sum::<f64>();
        let raw = 3.3 + affinity + gauss(&mut rng) * spec.rating_noise;
        let stars = raw.round().clamp(1.0, 5.0);
        ratings.push(Rating { user: u as u32, item: i as u32, value: stars });
    }

    let social = generate::social_network_like(spec.n_users, spec.n_links, &mut rng);
    ReplayWorld {
        ratings,
        user_latent: user_latent.into_iter().flatten().collect(),
        item_latent: item_latent.into_iter().flatten().collect(),
        social,
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn weighted_pick<R: Rng>(pool: &[usize], weight: &[f64], rng: &mut R) -> usize {
    use rand::seq::SliceRandom;
    debug_assert!(!pool.is_empty());
    // Rejection sampling against the max weight in the pool: cheap and exact.
    let wmax = pool.iter().map(|&i| weight[i]).fold(0.0, f64::max);
    loop {
        let &cand = pool.choose(rng).expect("non-empty pool");
        if rng.gen_bool((weight[cand] / wmax).clamp(0.0, 1.0)) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feistel_perm_is_a_bijection() {
        for n in [1usize, 2, 3, 5, 100, 1000] {
            let p = FeistelPerm::new(0xdead_beef, n);
            assert!(p.domain() >= n as u64);
            let mut seen = vec![false; n];
            for i in 0..n {
                let r = p.rank(i);
                assert!(r < n, "rank {r} out of range for n={n}");
                assert!(!seen[r], "rank {r} hit twice");
                seen[r] = true;
                assert_eq!(p.item(r), i, "item(rank({i})) != {i}");
            }
        }
    }

    #[test]
    fn zipf_rank_prefers_low_ranks() {
        let n = 1000;
        let mut head = 0usize;
        let samples = 4000;
        for j in 0..samples {
            let u = keyed_unit(9, 99, j as u64, 0);
            if zipf_rank(u, n, 1.0) < 10 {
                head += 1;
            }
        }
        // Top-1% of ranks should absorb far more than 1% of mass under s=1
        // (≈ ln(11)/ln(1001) ≈ 35%).
        assert!(head > samples / 10, "only {head}/{samples} in the head");
    }

    #[test]
    fn streaming_chunks_are_chunk_size_invariant() {
        let spec = DatasetSpec::micro();
        let b = WorldBuilder::streaming(spec, 17);
        let collect = |rows: usize| {
            let mut ratings = Vec::new();
            let mut edges = Vec::new();
            let mut latent = Vec::new();
            b.for_each_chunk(rows, |c| {
                ratings.extend(c.ratings);
                edges.extend(c.social_edges);
                latent.extend(c.user_latent);
            });
            edges.sort_unstable();
            (ratings, edges, latent)
        };
        let whole = collect(usize::MAX);
        for rows in [1, 7, 59, 60] {
            let got = collect(rows);
            assert_eq!(got.0, whole.0, "ratings differ at chunk={rows}");
            assert_eq!(got.1, whole.1, "edges differ at chunk={rows}");
            assert_eq!(
                got.2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                whole.2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "latents differ at chunk={rows}"
            );
        }
    }

    #[test]
    fn streaming_build_matches_spec_statistics() {
        let spec = DatasetSpec::micro();
        let data = WorldBuilder::streaming(spec.clone(), 5).build();
        assert_eq!(data.n_users(), spec.n_users);
        assert_eq!(data.n_items(), spec.n_items);
        assert!(data.ratings.len() as f64 > 0.7 * spec.n_ratings as f64);
        assert!(data.social.num_edges() > 0);
        assert!(data.item_graph.num_edges() > 0);
        let mean = data.ratings.global_mean().unwrap();
        assert!(mean > 2.5 && mean < 4.6, "global mean {mean}");
        // Determinism + seed sensitivity.
        let again = WorldBuilder::streaming(spec.clone(), 5).build();
        assert_eq!(data.ratings.ratings(), again.ratings.ratings());
        assert_eq!(data.social, again.social);
        let other = WorldBuilder::streaming(spec, 6).build();
        assert_ne!(data.ratings.ratings(), other.ratings.ratings());
    }

    #[test]
    fn replay_build_equals_legacy_generate() {
        let spec = DatasetSpec::micro();
        let legacy = spec.generate(11);
        let built = WorldBuilder::replay(spec, 11).build();
        assert_eq!(legacy.ratings.ratings(), built.ratings.ratings());
        assert_eq!(legacy.social, built.social);
        assert_eq!(legacy.item_graph, built.item_graph);
        assert_eq!(legacy.name, built.name);
    }

    #[test]
    fn replay_chunks_reassemble_the_world() {
        let spec = DatasetSpec::micro();
        let b = WorldBuilder::replay(spec.clone(), 3);
        let built = b.build();
        let mut ratings = Vec::new();
        let mut social = CsrBuilder::new(spec.n_users);
        b.for_each_chunk(13, |c| {
            ratings.extend(c.ratings);
            social.add_edges(c.social_edges.iter().copied());
        });
        let matrix = RatingMatrix::from_ratings(spec.n_users, spec.n_items, &ratings);
        assert_eq!(matrix.ratings().len(), built.ratings.ratings().len());
        assert_eq!(social.finish(), built.social);
    }
}
