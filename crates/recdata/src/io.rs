//! Dataset persistence and interchange.
//!
//! Two formats:
//!
//! * **JSON** — lossless round-trip of a [`Dataset`] (serde), for caching
//!   generated data and sharing exact experiment inputs;
//! * **dump format** — the layout the real Ciao/Epinions distributions use:
//!   a `ratings` file with `user item rating` rows and a `trust` file with
//!   `user user` rows (whitespace-separated, `#` comments). Loading a real
//!   dump makes the harness run on the paper's original data when available;
//!   the item graph is built with the §VI-A.1 co-rating rule.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use msopds_het_graph::{build_item_graph, CsrGraph};

use crate::dataset::Dataset;
use crate::ratings::{Rating, RatingMatrix};

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// A malformed line in a dump file, with its 1-based line number.
    Parse {
        /// Which file.
        file: String,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Parse { file, line, message } => {
                write!(f, "{file}:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Saves a dataset as pretty JSON.
pub fn save_json(data: &Dataset, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut file = std::fs::File::create(path)?;
    let json = serde_json::to_string_pretty(data)?;
    file.write_all(json.as_bytes())?;
    Ok(())
}

/// Loads a dataset from JSON produced by [`save_json`].
pub fn load_json(path: impl AsRef<Path>) -> Result<Dataset, IoError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

/// Loads a Ciao/Epinions-style dump: `ratings_path` rows are
/// `user item rating`, `trust_path` rows are `user user`. Ids may be sparse;
/// they are re-indexed densely in first-appearance order. Ratings outside
/// `[1, 5]` are clamped (some dumps carry half-stars or 0/10 scales are the
/// caller's responsibility).
pub fn load_dump(
    name: &str,
    ratings_path: impl AsRef<Path>,
    trust_path: impl AsRef<Path>,
    item_graph_threshold: f64,
) -> Result<Dataset, IoError> {
    let mut user_ids = IdMap::default();
    let mut item_ids = IdMap::default();
    let mut ratings: Vec<Rating> = Vec::new();

    let rfile = ratings_path.as_ref().display().to_string();
    for (lineno, line) in BufReader::new(std::fs::File::open(&ratings_path)?).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, i, r) = (parts.next(), parts.next(), parts.next());
        let (Some(u), Some(i), Some(r)) = (u, i, r) else {
            return Err(IoError::Parse {
                file: rfile,
                line: lineno + 1,
                message: "expected `user item rating`".into(),
            });
        };
        let value: f64 = r.parse().map_err(|_| IoError::Parse {
            file: rfile.clone(),
            line: lineno + 1,
            message: format!("bad rating value {r:?}"),
        })?;
        ratings.push(Rating {
            user: user_ids.intern(u) as u32,
            item: item_ids.intern(i) as u32,
            value: value.clamp(1.0, 5.0),
        });
    }

    let tfile = trust_path.as_ref().display().to_string();
    let mut trust_edges: Vec<(usize, usize)> = Vec::new();
    for (lineno, line) in BufReader::new(std::fs::File::open(&trust_path)?).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse {
                file: tfile,
                line: lineno + 1,
                message: "expected `user user`".into(),
            });
        };
        trust_edges.push((user_ids.intern(a), user_ids.intern(b)));
    }

    let n_users = user_ids.len();
    let n_items = item_ids.len();
    let matrix = RatingMatrix::from_ratings(n_users, n_items, &ratings);
    let social = CsrGraph::from_edges(n_users, &trust_edges);
    let item_graph = build_item_graph(n_users, &matrix.raters_per_item(), item_graph_threshold);
    Ok(Dataset::new(name, matrix, social, item_graph))
}

/// Dense re-indexing of arbitrary string ids.
#[derive(Default)]
struct IdMap {
    map: std::collections::HashMap<String, usize>,
}

impl IdMap {
    fn intern(&mut self, raw: &str) -> usize {
        let next = self.map.len();
        *self.map.entry(raw.to_string()).or_insert(next)
    }
    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("msopds-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let data = DatasetSpec::micro().generate(4);
        let path = tmp("roundtrip.json");
        save_json(&data, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back.name, data.name);
        assert_eq!(back.ratings.ratings(), data.ratings.ratings());
        assert_eq!(back.social, data.social);
        assert_eq!(back.item_graph, data.item_graph);
        assert_eq!(back.n_real_users, data.n_real_users);
    }

    #[test]
    fn dump_loader_parses_and_reindexes() {
        let rpath = tmp("ratings.txt");
        let tpath = tmp("trust.txt");
        std::fs::write(&rpath, "# user item rating\n101 7 5\n102 7 4\n101 9 1\n103 9 2\n102 9 3\n")
            .unwrap();
        std::fs::write(&tpath, "101 102\n102 103\n").unwrap();
        let data = load_dump("mini", &rpath, &tpath, 0.4).unwrap();
        assert_eq!(data.n_users(), 3);
        assert_eq!(data.n_items(), 2);
        assert_eq!(data.ratings.len(), 5);
        // Users 101→0, 102→1, 103→2 in appearance order.
        assert_eq!(data.ratings.get(0, 0), Some(5.0));
        assert!(data.social.has_edge(0, 1));
        assert!(data.social.has_edge(1, 2));
        // Items 7 and 9 share raters 101 and 102: overlap 2/2 > 0.4.
        assert!(data.item_graph.has_edge(0, 1));
    }

    #[test]
    fn dump_loader_reports_bad_lines() {
        let rpath = tmp("bad_ratings.txt");
        let tpath = tmp("empty_trust.txt");
        std::fs::write(&rpath, "1 2 not-a-number\n").unwrap();
        std::fs::write(&tpath, "").unwrap();
        let err = load_dump("bad", &rpath, &tpath, 0.5).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(":1:"), "error should carry the line number: {msg}");
        assert!(msg.contains("bad rating value"));
    }

    #[test]
    fn dump_loader_clamps_out_of_range() {
        let rpath = tmp("clamp_ratings.txt");
        let tpath = tmp("clamp_trust.txt");
        std::fs::write(&rpath, "1 1 9\n2 1 0.2\n").unwrap();
        std::fs::write(&tpath, "1 2\n").unwrap();
        let data = load_dump("clamp", &rpath, &tpath, 0.5).unwrap();
        assert_eq!(data.ratings.get(0, 0), Some(5.0));
        assert_eq!(data.ratings.get(1, 0), Some(1.0));
    }

    #[test]
    fn loaded_dump_supports_poisoning() {
        let rpath = tmp("p_ratings.txt");
        let tpath = tmp("p_trust.txt");
        std::fs::write(&rpath, "1 1 4\n2 2 3\n").unwrap();
        std::fs::write(&tpath, "1 2\n").unwrap();
        let mut data = load_dump("p", &rpath, &tpath, 0.5).unwrap();
        let fakes = data.add_fake_users(1);
        let poisoned = data.apply_poison(&[crate::poison::PoisonAction::Rating {
            user: fakes[0] as u32,
            item: 0,
            value: 5.0,
        }]);
        assert_eq!(poisoned.ratings.len(), 3);
        assert!(poisoned.is_fake(fakes[0]));
    }
}
