//! Poisoning actions — the shared vocabulary between data, attacks and games.
//!
//! Each variant corresponds to one element of a capacity set:
//! * [`PoisonAction::Rating`] — a fake or hired rating `(u, i, r̂)` (eqs. 4, 6);
//! * [`PoisonAction::SocialEdge`] — a new edge in the social network 𝒢ᵤ (eq. 6);
//! * [`PoisonAction::ItemEdge`] — a new edge in the item graph 𝒢ᵢ (eq. 6).

use serde::{Deserialize, Serialize};

/// A single candidate or selected poisoning action.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PoisonAction {
    /// User `user` rates `item` with `value` stars.
    Rating {
        /// Acting user (real hired user or injected fake account).
        user: u32,
        /// Rated item.
        item: u32,
        /// The preset rating value r̂ (5 to promote, 1 to demote).
        value: f64,
    },
    /// Adds the undirected edge `(a, b)` to the social network.
    SocialEdge {
        /// First endpoint (user id).
        a: u32,
        /// Second endpoint (user id).
        b: u32,
    },
    /// Adds the undirected edge `(a, b)` to the item graph.
    ItemEdge {
        /// First endpoint (item id).
        a: u32,
        /// Second endpoint (item id).
        b: u32,
    },
}

/// Coarse category of a poisoning action, used by budget accounting and the
/// Fig. 8 / Fig. 9 capacity ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// A rating action.
    Rating,
    /// A social-network edge action.
    SocialEdge,
    /// An item-graph edge action.
    ItemEdge,
}

impl PoisonAction {
    /// The category of this action.
    pub fn kind(&self) -> ActionKind {
        match self {
            PoisonAction::Rating { .. } => ActionKind::Rating,
            PoisonAction::SocialEdge { .. } => ActionKind::SocialEdge,
            PoisonAction::ItemEdge { .. } => ActionKind::ItemEdge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(
            PoisonAction::Rating { user: 0, item: 1, value: 5.0 }.kind(),
            ActionKind::Rating
        );
        assert_eq!(PoisonAction::SocialEdge { a: 0, b: 1 }.kind(), ActionKind::SocialEdge);
        assert_eq!(PoisonAction::ItemEdge { a: 0, b: 1 }.kind(), ActionKind::ItemEdge);
    }

    #[test]
    fn serde_roundtrip() {
        let a = PoisonAction::Rating { user: 3, item: 7, value: 5.0 };
        let s = serde_json::to_string(&a).unwrap();
        let back: PoisonAction = serde_json::from_str(&s).unwrap();
        assert_eq!(a, back);
    }
}
