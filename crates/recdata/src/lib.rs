//! # msopds-recdata
//!
//! Dataset substrate for the MSOPDS reproduction: the sparse rating matrix
//! **R** (Definition 1), the combined heterogeneous [`Dataset`], the
//! [`PoisonAction`] vocabulary shared by all attacks, synthetic generators
//! calibrated to Ciao / Epinions / LibraryThing (§VI-A.1), and demographic
//! sampling (§VI-A.2).
//!
//! ```
//! use msopds_recdata::{DatasetSpec, DemographicsSpec, sample_market};
//! use rand::SeedableRng;
//!
//! let data = DatasetSpec::micro().generate(42);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let market = sample_market(&data, &DemographicsSpec::default().scaled(8.0), 1, &mut rng);
//! assert!(market.competing_items.contains(&market.target_item));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod dataset;
pub mod demographics;
pub mod io;
pub mod poison;
pub mod ratings;
pub mod synth;

pub use builder::{WorldBuilder, WorldChunk};
pub use dataset::Dataset;
pub use demographics::{sample_market, DemographicsSpec, Market, PlayerAssets};
pub use io::{load_dump, load_json, save_json, IoError};
pub use poison::{ActionKind, PoisonAction};
pub use ratings::{Rating, RatingMatrix};
pub use synth::{preprocess, DatasetSpec, DensityProfile};
