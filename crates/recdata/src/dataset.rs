//! The heterogeneous dataset: ratings + social network + item graph.

use msopds_het_graph::CsrGraph;
use serde::{Deserialize, Serialize};

use crate::poison::PoisonAction;
use crate::ratings::{Rating, RatingMatrix};

/// A complete Het-RecSys input (Definition 1): the rating matrix **R**, the
/// social network 𝒢ᵤ and the item graph 𝒢ᵢ.
///
/// Fake accounts injected by attackers are appended after the `n_real_users`
/// genuine users, so `user_id >= n_real_users` identifies a fake account.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"ciao-synth"`).
    pub name: String,
    /// Number of *real* users; fake accounts have ids `>= n_real_users`.
    pub n_real_users: usize,
    /// Explicit ratings.
    pub ratings: RatingMatrix,
    /// The social network 𝒢ᵤ over all (real + fake) users.
    pub social: CsrGraph,
    /// The item graph 𝒢ᵢ.
    pub item_graph: CsrGraph,
}

impl Dataset {
    /// Assembles a dataset, checking dimension consistency.
    ///
    /// # Panics
    /// Panics if graph node counts disagree with the rating matrix.
    pub fn new(
        name: impl Into<String>,
        ratings: RatingMatrix,
        social: CsrGraph,
        item_graph: CsrGraph,
    ) -> Self {
        assert_eq!(
            social.num_nodes(),
            ratings.n_users(),
            "social network size must match user count"
        );
        assert_eq!(
            item_graph.num_nodes(),
            ratings.n_items(),
            "item graph size must match item count"
        );
        Self { name: name.into(), n_real_users: ratings.n_users(), ratings, social, item_graph }
    }

    /// Total user count including fake accounts.
    pub fn n_users(&self) -> usize {
        self.ratings.n_users()
    }

    /// Item count.
    pub fn n_items(&self) -> usize {
        self.ratings.n_items()
    }

    /// Number of injected fake accounts.
    pub fn n_fake_users(&self) -> usize {
        self.n_users() - self.n_real_users
    }

    /// True when `user` is an injected fake account.
    pub fn is_fake(&self, user: usize) -> bool {
        user >= self.n_real_users
    }

    /// Appends `k` fake user accounts (no ratings, no social edges yet) and
    /// returns their ids.
    pub fn add_fake_users(&mut self, k: usize) -> Vec<usize> {
        let start = self.n_users();
        let new_total = start + k;
        self.ratings.grow_users(new_total);
        self.social = self.social.with_edges(new_total, &[]);
        (start..new_total).collect()
    }

    /// Applies poisoning actions, producing the poisoned dataset (R̂, 𝒢̂).
    ///
    /// Rating actions overwrite existing `(user, item)` pairs; edge actions
    /// that already exist are no-ops. `n_real_users` is preserved.
    pub fn apply_poison(&self, actions: &[PoisonAction]) -> Dataset {
        let mut out = self.clone();
        let mut social_edges = Vec::new();
        let mut item_edges = Vec::new();
        for action in actions {
            match *action {
                PoisonAction::Rating { user, item, value } => {
                    out.ratings.insert(Rating { user, item, value });
                }
                PoisonAction::SocialEdge { a, b } => social_edges.push((a as usize, b as usize)),
                PoisonAction::ItemEdge { a, b } => item_edges.push((a as usize, b as usize)),
            }
        }
        if !social_edges.is_empty() {
            out.social = out.social.with_edges(out.n_users(), &social_edges);
        }
        if !item_edges.is_empty() {
            out.item_graph = out.item_graph.with_edges(out.n_items(), &item_edges);
        }
        out
    }

    /// One-line summary used in logs and reports.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} users ({} fake), {} items, {} ratings, {} social links, {} item links",
            self.name,
            self.n_users(),
            self.n_fake_users(),
            self.n_items(),
            self.ratings.len(),
            self.social.num_edges(),
            self.item_graph.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let ratings = RatingMatrix::from_ratings(
            3,
            4,
            &[
                Rating { user: 0, item: 0, value: 4.0 },
                Rating { user: 1, item: 1, value: 2.0 },
                Rating { user: 2, item: 0, value: 5.0 },
            ],
        );
        let social = CsrGraph::from_edges(3, &[(0, 1)]);
        let items = CsrGraph::from_edges(4, &[(0, 1)]);
        Dataset::new("tiny", ratings, social, items)
    }

    #[test]
    fn construction_checks_dims() {
        let d = tiny();
        assert_eq!(d.n_users(), 3);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.n_fake_users(), 0);
    }

    #[test]
    #[should_panic(expected = "social network size")]
    fn mismatched_social_panics() {
        let ratings = RatingMatrix::new(3, 2);
        let social = CsrGraph::empty(2);
        let items = CsrGraph::empty(2);
        let _ = Dataset::new("bad", ratings, social, items);
    }

    #[test]
    fn fake_users_are_tracked() {
        let mut d = tiny();
        let fakes = d.add_fake_users(2);
        assert_eq!(fakes, vec![3, 4]);
        assert_eq!(d.n_users(), 5);
        assert_eq!(d.n_real_users, 3);
        assert!(d.is_fake(3));
        assert!(!d.is_fake(2));
        assert_eq!(d.social.num_nodes(), 5);
    }

    #[test]
    fn apply_poison_all_kinds() {
        let d = tiny();
        let poisoned = d.apply_poison(&[
            PoisonAction::Rating { user: 1, item: 0, value: 5.0 },
            PoisonAction::SocialEdge { a: 0, b: 2 },
            PoisonAction::ItemEdge { a: 2, b: 3 },
        ]);
        assert_eq!(poisoned.ratings.get(1, 0), Some(5.0));
        assert!(poisoned.social.has_edge(0, 2));
        assert!(poisoned.item_graph.has_edge(2, 3));
        // Original unchanged.
        assert_eq!(d.ratings.get(1, 0), None);
        assert!(!d.social.has_edge(0, 2));
    }

    #[test]
    fn apply_poison_is_idempotent_on_existing_edges() {
        let d = tiny();
        let p = d.apply_poison(&[PoisonAction::SocialEdge { a: 0, b: 1 }]);
        assert_eq!(p.social.num_edges(), d.social.num_edges());
    }
}
