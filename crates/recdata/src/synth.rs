//! Synthetic dataset generation calibrated to the paper's three datasets.
//!
//! The real Ciao / Epinions / LibraryThing dumps are not redistributable in
//! this environment, so we generate synthetic equivalents matching their
//! *published statistics* (§VI-A.1: user/item/rating/link counts) and the
//! structural properties the attacks exploit:
//!
//! * ratings produced by a **planted latent-factor model** (cluster centers +
//!   user/item noise), so a trained recommender has genuine signal to learn —
//!   a precondition for poisoning effects to be measurable;
//! * a heavy-tailed **social network** (preferential attachment);
//! * **genre clusters** that concentrate co-rating, so the >50 %-overlap item
//!   graph of §VI-A.1 is non-trivial;
//! * long-tailed item popularity (Zipf weights).
//!
//! Counts can be scaled down uniformly via [`DatasetSpec::scaled`]; the
//! default experiment scale is 1/8 (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

use crate::builder::WorldBuilder;
use crate::dataset::Dataset;

/// Parameters of a synthetic dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name (carried into [`Dataset::name`]).
    pub name: String,
    /// User count.
    pub n_users: usize,
    /// Item count.
    pub n_items: usize,
    /// Target rating count.
    pub n_ratings: usize,
    /// Target social-edge count.
    pub n_links: usize,
    /// Planted latent dimensionality.
    pub latent_dim: usize,
    /// Number of genre clusters.
    pub n_clusters: usize,
    /// Std-dev of rating noise (stars).
    pub rating_noise: f64,
    /// Probability that a user rates inside their own genre cluster.
    pub in_cluster_prob: f64,
    /// Overlap-coefficient threshold for the item graph (paper: 0.5).
    pub item_graph_threshold: f64,
    /// Zipf exponent for item popularity.
    pub zipf_exponent: f64,
}

impl DatasetSpec {
    /// Ciao statistics: 2 611 users, 3 823 items, 44 453 ratings, 49 953 links.
    pub fn ciao() -> Self {
        Self::named("ciao-synth", 2611, 3823, 44_453, 49_953)
    }

    /// Epinions statistics: 1 929 users, 9 962 items, 12 612 ratings, 41 270 links.
    pub fn epinions() -> Self {
        Self::named("epinions-synth", 1929, 9962, 12_612, 41_270)
    }

    /// LibraryThing statistics: 1 108 users, 8 583 items, 19 615 ratings, 14 508 links.
    pub fn library_thing() -> Self {
        Self::named("librarything-synth", 1108, 8583, 19_615, 14_508)
    }

    /// A tiny dataset for unit tests and doc examples.
    pub fn micro() -> Self {
        Self::named("micro-synth", 60, 80, 420, 150)
    }

    fn named(name: &str, n_users: usize, n_items: usize, n_ratings: usize, n_links: usize) -> Self {
        Self {
            name: name.to_string(),
            n_users,
            n_items,
            n_ratings,
            n_links,
            latent_dim: 8,
            n_clusters: 8,
            rating_noise: 0.5,
            in_cluster_prob: 0.75,
            item_graph_threshold: 0.5,
            zipf_exponent: 1.0,
        }
    }

    /// Uniformly scales all counts by `1/factor` (e.g. `scaled(8.0)` for the
    /// default experiment scale), keeping the density profile.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "scale factor must be >= 1");
        let mut s = self.clone();
        s.name = format!("{}-x{}", self.name, factor);
        s.n_users = ((self.n_users as f64 / factor).round() as usize).max(20);
        s.n_items = ((self.n_items as f64 / factor).round() as usize).max(30);
        s.n_ratings = ((self.n_ratings as f64 / factor).round() as usize).max(100);
        s.n_links = ((self.n_links as f64 / factor).round() as usize).max(40);
        s
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// A thin wrapper over [`WorldBuilder::replay`] — the legacy sequential
    /// generator now lives behind the builder API, and this path is locked
    /// byte-identical by `tests/builder_parity.rs`. For worlds too large to
    /// materialize, use [`WorldBuilder::streaming`] and consume chunks.
    pub fn generate(&self, seed: u64) -> Dataset {
        WorldBuilder::replay(self.clone(), seed).build()
    }

    /// This spec's per-user density profile.
    pub fn density(&self) -> DensityProfile {
        DensityProfile::of(self)
    }
}

/// The per-user density ratios that make Ciao, Epinions and LibraryThing
/// *different worlds* at any population size: Ciao is rating-dense over a
/// small catalog (~17 ratings/user, ~1.5 items/user), Epinions is
/// rating-sparse with a big catalog (~6.5 ratings vs ~5.2 items per user),
/// LibraryThing is link-sparse (~13 links/user vs Epinions' ~21).
/// [`DatasetSpec::scaled`] preserves these ratios going *down*;
/// `DensityProfile` carries them *up* — `profile.spec(n_users)` produces the
/// spec for a streamed world of any user count (e.g. the million-user scale
/// bench) with that family's shape, closing the scale-generator gap left by
/// the streaming builder (which had only been exercised on micro-shaped
/// worlds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DensityProfile {
    /// Catalog size per user (items / users).
    pub items_per_user: f64,
    /// Explicit ratings per user.
    pub ratings_per_user: f64,
    /// Social links per user.
    pub links_per_user: f64,
}

impl DensityProfile {
    /// Measures `spec`'s density ratios.
    pub fn of(spec: &DatasetSpec) -> Self {
        let n = spec.n_users.max(1) as f64;
        Self {
            items_per_user: spec.n_items as f64 / n,
            ratings_per_user: spec.n_ratings as f64 / n,
            links_per_user: spec.n_links as f64 / n,
        }
    }

    /// Ciao's published density (§VI-A.1).
    pub fn ciao() -> Self {
        Self::of(&DatasetSpec::ciao())
    }

    /// Epinions' published density.
    pub fn epinions() -> Self {
        Self::of(&DatasetSpec::epinions())
    }

    /// LibraryThing's published density.
    pub fn library_thing() -> Self {
        Self::of(&DatasetSpec::library_thing())
    }

    /// A spec with this profile at `n_users` users, for replay *or* streaming
    /// construction (`WorldBuilder::streaming(profile.spec("w", n), seed)`).
    /// Counts are rounded and floored at the same minimums as
    /// [`DatasetSpec::scaled`], so tiny test worlds stay well-formed.
    pub fn spec(&self, name: &str, n_users: usize) -> DatasetSpec {
        let n = n_users as f64;
        let mut s = DatasetSpec::named(name, n_users.max(20), 30, 100, 40);
        s.n_items = ((self.items_per_user * n).round() as usize).max(30);
        s.n_ratings = ((self.ratings_per_user * n).round() as usize).max(100);
        s.n_links = ((self.links_per_user * n).round() as usize).max(40);
        s
    }
}

/// Standard preprocessing from the paper (footnote 6): keep users with at
/// least `min_friends` social links and at least `min_ratings` ratings.
/// Returns the filtered dataset with users re-indexed densely.
///
/// A thin wrapper over [`WorldBuilder::preprocess`], which performs the
/// social re-index through the streaming CSR builder.
pub fn preprocess(data: &Dataset, min_friends: usize, min_ratings: usize) -> Dataset {
    WorldBuilder::preprocess(data, min_friends, min_ratings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_hits_counts() {
        let spec = DatasetSpec::micro();
        let data = spec.generate(11);
        assert_eq!(data.n_users(), 60);
        assert_eq!(data.n_items(), 80);
        // Rating sampling may saturate slightly below target; stay close.
        assert!(data.ratings.len() as f64 > 0.9 * spec.n_ratings as f64);
        assert!(data.social.num_edges() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::micro();
        let a = spec.generate(5);
        let b = spec.generate(5);
        assert_eq!(a.ratings.ratings(), b.ratings.ratings());
        assert_eq!(a.social, b.social);
        assert_eq!(a.item_graph, b.item_graph);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::micro();
        let a = spec.generate(1);
        let b = spec.generate(2);
        assert_ne!(a.ratings.ratings(), b.ratings.ratings());
    }

    #[test]
    fn ratings_are_valid_stars() {
        let data = DatasetSpec::micro().generate(3);
        for r in data.ratings.ratings() {
            assert!((1.0..=5.0).contains(&r.value));
            assert_eq!(r.value, r.value.round(), "ratings are whole stars");
        }
    }

    #[test]
    fn rating_distribution_is_skewed_positive() {
        // Real rating datasets skew toward 3-5 stars; the planted model's
        // baseline of 3.3 reproduces that.
        let data = DatasetSpec::micro().scaled(1.0).generate(7);
        let mean = data.ratings.global_mean().unwrap();
        assert!(mean > 2.8 && mean < 4.5, "global mean {mean}");
    }

    #[test]
    fn scaled_reduces_counts() {
        let full = DatasetSpec::ciao();
        let small = full.scaled(8.0);
        assert_eq!(small.n_users, (2611.0f64 / 8.0).round() as usize);
        assert!(small.n_ratings < full.n_ratings);
        assert!(small.name.contains("x8"));
    }

    #[test]
    fn scaled_ciao_generates() {
        let data = DatasetSpec::ciao().scaled(16.0).generate(1);
        assert_eq!(data.n_users(), 163);
        assert!(data.ratings.len() > 1000);
        // The clustered co-rating should produce a non-empty item graph.
        assert!(data.item_graph.num_edges() > 0, "item graph is empty");
    }

    #[test]
    fn preprocess_filters_and_reindexes() {
        let data = DatasetSpec::micro().generate(9);
        let filtered = preprocess(&data, 2, 1);
        assert!(filtered.n_users() <= data.n_users());
        for u in 0..filtered.n_users() {
            assert!(filtered.social.degree(u) >= 2 || filtered.ratings.user_degree(u) >= 1);
        }
        // All rating user-ids are in range after reindexing.
        for r in filtered.ratings.ratings() {
            assert!((r.user as usize) < filtered.n_users());
        }
    }

    #[test]
    fn presets_match_paper_statistics() {
        let c = DatasetSpec::ciao();
        assert_eq!((c.n_users, c.n_items, c.n_ratings, c.n_links), (2611, 3823, 44_453, 49_953));
        let e = DatasetSpec::epinions();
        assert_eq!((e.n_users, e.n_items, e.n_ratings, e.n_links), (1929, 9962, 12_612, 41_270));
        let l = DatasetSpec::library_thing();
        assert_eq!((l.n_users, l.n_items, l.n_ratings, l.n_links), (1108, 8583, 19_615, 14_508));
    }
}
