//! # msopds-serve-net
//!
//! A fault-tolerant TCP transport in front of the async serving tier
//! (`msopds-serve-async`): real sockets, a versioned length-prefixed binary
//! protocol, per-connection backpressure, graceful drain, and a retrying
//! client — the layer that turns the in-process `submit`/`Ticket` API into
//! something a victim platform's query traffic can actually reach.
//!
//! The design center is **robustness with exact accounting**:
//!
//! * [`frame`] — the wire codec. Hostile bytes can never panic the decoder:
//!   truncation is "wait for more", everything else is a typed
//!   [`FrameError`]. Pinned by a truncation-at-every-byte fuzz suite.
//! * [`conn`] — per-connection nonblocking buffers and the in-flight window
//!   whose fill state *is* the backpressure signal (a full window stops
//!   reads; TCP pushes back on the client).
//! * [`server`] — [`NetServer`], one `poll(2)` thread over every socket,
//!   bridged to the batcher by `serve-async`'s `CompletionPump`. Typed
//!   failures map to wire rejects (`Overloaded` → `ResourceExhausted` with
//!   the queue cap, out-of-universe users, per-query deadline propagation
//!   with server-side deadline sheds counted separately). Slow clients are
//!   evicted; `SIGTERM` triggers a graceful drain after which
//!   `offered == completed + rejected + drained` holds **exactly** —
//!   the chaos suite (`tests/chaos.rs`) kills clients mid-batch and drains
//!   under load to pin that identity.
//! * [`client`] — [`NetClient`], blocking request/response with
//!   deterministic capped-exponential-backoff reconnects (resubmit only for
//!   idempotent queries), plus a pipelined windowed driver for the
//!   multi-process loopback bench (`--bench serve_net`).
//!
//! Socket-level fault sites (`serve_net.accept`, `serve_net.read`,
//! `serve_net.write`, `serve_net.conn`, `serve_net.write.delay`) are
//! drillable through `msopds-faultline`'s `MSOPDS_FAULT_PLAN` when built
//! with `--features fault-injection`.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod frame;
pub mod poll;
pub mod server;

pub use client::{NetClient, NetClientError, PipelineReport, RetryPolicy};
pub use conn::{Conn, ReadOutcome, WRITE_HIGH_WATER};
pub use frame::{
    Frame, FrameDecoder, FrameError, FrameKind, RejectReason, MAX_PAYLOAD, WIRE_VERSION,
};
pub use poll::{drain_requested, install_drain_handler, request_drain};
pub use server::{NetServeConfig, NetServer, NetStats};

pub use msopds_serve::ScoredItem;
