//! The client side of the wire protocol: a blocking request/response
//! [`NetClient`] with capped-exponential-backoff reconnects, plus a
//! pipelined driver ([`NetClient::run_pipelined`]) for load generation.
//!
//! ## Retry discipline
//!
//! Retries exist for *connection* failures (refused connect, mid-stream
//! disconnect), never for typed rejections — a `Reject` frame is the
//! server's answer, and [`query`](NetClient::query) returns it as
//! [`NetClientError::Rejected`] for the caller to decide about. After a
//! disconnect, a query is resubmitted on the fresh connection **only if the
//! caller marked it idempotent**: a non-idempotent query that died
//! mid-flight may or may not have executed, and silently resubmitting it
//! would double-apply — the client surfaces
//! [`NetClientError::Disconnected`] instead and lets the caller own that
//! choice. (Top-K reads are idempotent; the flag exists so the rule travels
//! with the query rather than being assumed.)
//!
//! Backoff between attempts is capped exponential —
//! `min(base · 2^attempt, max)` — with deterministic ±50% jitter drawn from
//! a splitmix64 stream seeded by [`RetryPolicy::seed`], so retry-storm
//! tests replay bit-identically.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use msopds_serve::ScoredItem;

use crate::frame::{Frame, FrameDecoder, FrameError, RejectReason};
use crate::poll::{events, poll_fds, PollFd};

/// Reconnect/backoff knobs; defaults suit a loopback test rig.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Max reconnect attempts per query before giving up.
    pub max_retries: u32,
    /// First backoff step.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Seed of the jitter stream (deterministic across runs).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 5, base_backoff_ms: 2, max_backoff_ms: 200, seed: 0x5EED }
    }
}

/// Typed client-side failures.
#[derive(Debug)]
pub enum NetClientError {
    /// Socket-level failure after exhausting retries.
    Io(io::Error),
    /// The server's byte stream is malformed (version skew, corruption).
    Frame(FrameError),
    /// The server answered with a typed rejection.
    Rejected {
        /// Why the server refused.
        reason: RejectReason,
        /// Reason-specific detail (queue cap, n_users, elapsed µs).
        detail: u64,
    },
    /// The connection died while a **non-idempotent** query was in flight;
    /// the query may or may not have executed and was not resubmitted.
    Disconnected,
    /// Reconnect attempts exhausted without completing the query.
    RetriesExhausted {
        /// Attempts made (initial + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for NetClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetClientError::Io(e) => write!(f, "socket error: {e}"),
            NetClientError::Frame(e) => write!(f, "malformed server stream: {e}"),
            NetClientError::Rejected { reason, detail } => {
                write!(f, "rejected: {reason} (detail {detail})")
            }
            NetClientError::Disconnected => {
                write!(f, "disconnected mid-flight; non-idempotent query not resubmitted")
            }
            NetClientError::RetriesExhausted { attempts } => {
                write!(f, "gave up after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NetClientError {}

impl From<FrameError> for NetClientError {
    fn from(e: FrameError) -> Self {
        NetClientError::Frame(e)
    }
}

/// Aggregate outcome of one [`NetClient::run_pipelined`] drive.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Queries written to the socket.
    pub offered: u64,
    /// `TopK` responses received.
    pub completed: u64,
    /// `Reject` responses received, by coarse bucket.
    pub rejected: u64,
    /// Of `rejected`: admission sheds (`ResourceExhausted`).
    pub rejected_overload: u64,
    /// Of `rejected`: drain refusals.
    pub drained: u64,
    /// Of `rejected`: server-side deadline misses.
    pub rejected_deadline: u64,
    /// Send→response latency of completed queries, µs, unsorted.
    pub latencies_us: Vec<u64>,
    /// Wall-clock of the whole drive.
    pub elapsed: Duration,
}

impl PipelineReport {
    /// Nearest-rank percentile of the completed-query latencies. `p` is a
    /// fraction (0.0–1.0) and is clamped into that range.
    pub fn latency_pct_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        sorted[((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize]
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A wire-protocol client over one TCP connection. Not thread-safe — one
/// client per thread/process, which is how the multi-process bench drives
/// it.
pub struct NetClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    decoder: FrameDecoder,
    next_request_id: u64,
    policy: RetryPolicy,
    jitter_state: u64,
}

impl NetClient {
    /// Connects to `addr` (retrying per `policy` if the listener is not up
    /// yet — covers the race of a client process starting before the
    /// server's bind lands).
    pub fn connect(addr: SocketAddr, policy: RetryPolicy) -> Result<Self, NetClientError> {
        let mut client = NetClient {
            addr,
            stream: None,
            decoder: FrameDecoder::new(),
            next_request_id: 1,
            policy,
            jitter_state: policy.seed,
        };
        client.reconnect(0)?;
        Ok(client)
    }

    /// The jittered capped-exponential backoff for retry `attempt` (0-based).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.policy.max_backoff_ms);
        // ±50% deterministic jitter: backoff/2 + uniform[0, backoff).
        let jitter = if exp == 0 { 0 } else { splitmix64(&mut self.jitter_state) % exp };
        Duration::from_millis(exp / 2 + jitter)
    }

    fn reconnect(&mut self, mut attempt: u32) -> Result<(), NetClientError> {
        loop {
            match TcpStream::connect(self.addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    self.stream = Some(stream);
                    self.decoder = FrameDecoder::new(); // stale bytes die with the old conn
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= self.policy.max_retries {
                        return Err(NetClientError::Io(e));
                    }
                    let pause = self.backoff(attempt);
                    std::thread::sleep(pause);
                    attempt += 1;
                }
            }
        }
    }

    fn stream(&mut self) -> &mut TcpStream {
        self.stream.as_mut().expect("connected")
    }

    /// Blocking-reads until one complete frame arrives.
    fn read_frame(&mut self) -> Result<Frame, io::Error> {
        loop {
            match self.decoder.next() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream().read(&mut buf) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one query and blocks for its response. Reconnects and — for
    /// idempotent queries only — resubmits on connection failure, per the
    /// module-level retry discipline.
    pub fn query(
        &mut self,
        user: u64,
        deadline_us: u32,
        idempotent: bool,
    ) -> Result<Vec<ScoredItem>, NetClientError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let frame = Frame::Query { request_id, user, deadline_us, idempotent }.to_bytes();
        let mut attempt = 0u32;
        loop {
            let io_result = self.stream().write_all(&frame).and_then(|()| loop {
                let f = self.read_frame()?;
                // A response for an older request (e.g. one whose error
                // we already reported) is skipped, not an error.
                if f.request_id() == request_id {
                    return Ok(f);
                }
            });
            match io_result {
                Ok(Frame::TopK { items, .. }) => return Ok(items),
                Ok(Frame::Reject { reason, detail, .. }) => {
                    return Err(NetClientError::Rejected { reason, detail })
                }
                Ok(Frame::Query { .. }) => {
                    return Err(NetClientError::Frame(FrameError::BadKind { got: 1 }))
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Codec error: the stream is unrecoverable and the query
                    // outcome unknowable — same rule as a disconnect.
                    if !idempotent {
                        return Err(NetClientError::Disconnected);
                    }
                    if attempt >= self.policy.max_retries {
                        return Err(NetClientError::RetriesExhausted { attempts: attempt + 1 });
                    }
                    let pause = self.backoff(attempt);
                    std::thread::sleep(pause);
                    attempt += 1;
                    self.reconnect(attempt)?;
                }
                Err(_disconnect) => {
                    if !idempotent {
                        // The write may have landed; resubmitting could
                        // double-apply. Surface the ambiguity.
                        return Err(NetClientError::Disconnected);
                    }
                    if attempt >= self.policy.max_retries {
                        return Err(NetClientError::RetriesExhausted { attempts: attempt + 1 });
                    }
                    let pause = self.backoff(attempt);
                    std::thread::sleep(pause);
                    attempt += 1;
                    self.reconnect(attempt)?;
                }
            }
        }
    }

    /// Drives `n_requests` queries through the connection keeping up to
    /// `window` in flight, batching sends so the syscall cost amortizes —
    /// the client half of the transport's throughput story. `user_of` maps
    /// the request index to a user id. Returns per-bucket counts and
    /// send→response latencies; any disconnect mid-drive is an error (load
    /// runs do not retry — a dead server must fail the bench loudly).
    pub fn run_pipelined(
        &mut self,
        n_requests: u64,
        window: usize,
        deadline_us: u32,
        user_of: impl Fn(u64) -> u64,
    ) -> Result<PipelineReport, NetClientError> {
        let start = Instant::now();
        let mut report = PipelineReport::default();
        report.latencies_us.reserve(n_requests.min(1 << 22) as usize);
        let mut sent_at: HashMapLite = HashMapLite::with_capacity(window * 2);
        let mut out = Vec::with_capacity(64 * 1024);
        let mut sent = 0u64;
        let mut resolved = 0u64;
        self.stream().set_nonblocking(true).map_err(NetClientError::Io)?;
        let result = (|| -> Result<(), NetClientError> {
            while resolved < n_requests {
                // Fill the window: encode every query that fits into one
                // buffer, then push it with as few writes as the kernel
                // allows.
                while sent < n_requests && (sent - resolved) < window as u64 && out.len() < 1 << 20
                {
                    let request_id = self.next_request_id;
                    self.next_request_id += 1;
                    Frame::Query { request_id, user: user_of(sent), deadline_us, idempotent: true }
                        .encode(&mut out);
                    sent_at.insert(request_id, start.elapsed().as_micros() as u64);
                    sent += 1;
                    report.offered += 1;
                }
                let mut wrote = 0usize;
                while wrote < out.len() {
                    match self.stream().write(&out[wrote..]) {
                        Ok(0) => return Err(NetClientError::Io(io::ErrorKind::WriteZero.into())),
                        Ok(n) => wrote += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(NetClientError::Io(e)),
                    }
                }
                out.drain(..wrote);

                // Read whatever responses are ready; block in poll unless
                // there is still encode work to do right now (window open,
                // send buffer empty, queries left) — never busy-spin on a
                // blocked socket.
                let must_wait =
                    !out.is_empty() || sent == n_requests || (sent - resolved) >= window as u64;
                let mut buf = [0u8; 64 * 1024];
                loop {
                    match self.stream().read(&mut buf) {
                        Ok(0) => {
                            return Err(NetClientError::Io(io::ErrorKind::UnexpectedEof.into()))
                        }
                        Ok(n) => {
                            self.decoder.extend(&buf[..n]);
                            if n < buf.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if must_wait {
                                let interest = if out.is_empty() {
                                    events::POLLIN
                                } else {
                                    events::POLLIN | events::POLLOUT
                                };
                                let mut fds = [PollFd::new(self.stream().as_raw_fd(), interest)];
                                poll_fds(&mut fds, 1000).map_err(NetClientError::Io)?;
                            }
                            break;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(NetClientError::Io(e)),
                    }
                }
                while let Some(frame) = self.decoder.next()? {
                    let now_us = start.elapsed().as_micros() as u64;
                    match frame {
                        Frame::TopK { request_id, .. } => {
                            resolved += 1;
                            report.completed += 1;
                            if let Some(t0) = sent_at.remove(request_id) {
                                report.latencies_us.push(now_us - t0);
                            }
                        }
                        Frame::Reject { request_id, reason, .. } => {
                            resolved += 1;
                            report.rejected += 1;
                            match reason {
                                RejectReason::ResourceExhausted => report.rejected_overload += 1,
                                RejectReason::Draining => report.drained += 1,
                                RejectReason::DeadlineExceeded => report.rejected_deadline += 1,
                                RejectReason::UnknownUser => {}
                            }
                            sent_at.remove(request_id);
                        }
                        Frame::Query { .. } => {
                            return Err(NetClientError::Frame(FrameError::BadKind { got: 1 }))
                        }
                    }
                }
            }
            Ok(())
        })();
        let _ = self.stream().set_nonblocking(false);
        result?;
        report.elapsed = start.elapsed();
        Ok(report)
    }
}

/// A tiny open-addressing u64→u64 map for the pipelined driver's send
/// timestamps — avoids `std::collections::HashMap`'s SipHash on the per-query
/// hot path (request ids are already well-distributed once mixed).
struct HashMapLite {
    slots: Vec<(u64, u64)>, // (request_id + 1, value); 0 = empty
    mask: usize,
    len: usize,
}

impl HashMapLite {
    fn with_capacity(cap: usize) -> Self {
        let n = (cap * 2).next_power_of_two().max(16);
        Self { slots: vec![(0, 0); n], mask: n - 1, len: 0 }
    }

    fn idx(&self, key: u64) -> usize {
        // Fibonacci mix; probe linearly from there.
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize & self.mask
    }

    fn insert(&mut self, key: u64, value: u64) {
        if (self.len + 1) * 2 > self.slots.len() {
            let mut bigger = HashMapLite::with_capacity(self.slots.len());
            for &(k, v) in &self.slots {
                if k != 0 {
                    bigger.insert(k - 1, v);
                }
            }
            *self = bigger;
        }
        let mut i = self.idx(key);
        loop {
            if self.slots[i].0 == 0 || self.slots[i].0 == key + 1 {
                if self.slots[i].0 == 0 {
                    self.len += 1;
                }
                self.slots[i] = (key + 1, value);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let mut i = self.idx(key);
        loop {
            match self.slots[i].0 {
                0 => return None,
                k if k == key + 1 => {
                    let value = self.slots[i].1;
                    // Backward-shift deletion keeps probe chains intact
                    // without tombstones.
                    self.slots[i].0 = 0;
                    self.len -= 1;
                    let mut j = (i + 1) & self.mask;
                    while self.slots[j].0 != 0 {
                        // Move an entry back into the gap iff the gap lies
                        // cyclically between its home slot and its current
                        // position — the standard Robin-Hood shift.
                        let home = self.idx(self.slots[j].0 - 1);
                        let dist_gap = i.wrapping_sub(home) & self.mask;
                        let dist_cur = j.wrapping_sub(home) & self.mask;
                        if dist_gap < dist_cur {
                            self.slots[i] = self.slots[j];
                            self.slots[j].0 = 0;
                            i = j;
                        }
                        j = (j + 1) & self.mask;
                    }
                    return Some(value);
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let policy =
            RetryPolicy { max_retries: 8, base_backoff_ms: 4, max_backoff_ms: 64, seed: 42 };
        let seq = |seed: u64| -> Vec<u64> {
            let mut c = NetClient {
                addr: "127.0.0.1:1".parse().unwrap(),
                stream: None,
                decoder: FrameDecoder::new(),
                next_request_id: 1,
                policy: RetryPolicy { seed, ..policy },
                jitter_state: seed,
            };
            (0..8).map(|a| c.backoff(a).as_millis() as u64).collect()
        };
        let a = seq(42);
        let b = seq(42);
        assert_eq!(a, b, "same seed, same jitter");
        for (attempt, &ms) in a.iter().enumerate() {
            let exp = (4u64 << attempt).min(64);
            assert!(ms >= exp / 2 && ms < exp / 2 + exp, "attempt {attempt}: {ms}ms");
        }
        let c = seq(43);
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn hashmap_lite_insert_remove_roundtrip() {
        let mut m = HashMapLite::with_capacity(4);
        for k in 0..1000u64 {
            m.insert(k * 7, k);
        }
        // Interleave removals with further inserts to stress the
        // backward-shift deletion.
        for k in 0..500u64 {
            assert_eq!(m.remove(k * 7), Some(k), "key {k}");
        }
        for k in 1000..1500u64 {
            m.insert(k * 7, k);
        }
        for k in 500..1500u64 {
            assert_eq!(m.remove(k * 7), Some(k), "key {k}");
        }
        assert_eq!(m.remove(3), None);
        assert_eq!(m.len, 0);
    }
}
