//! Minimal raw-FFI wrappers around `poll(2)` and `signal(2)`.
//!
//! The workspace vendors no I/O or FFI crates (no `mio`, no `libc`), so the
//! two syscalls the transport needs are declared here directly. Both are
//! POSIX-stable ABI on every platform this repo targets (Linux x86-64 /
//! aarch64); the struct layout below is the kernel's own.
//!
//! Everything unsafe in the crate lives in this module, behind two safe
//! entry points: [`poll`] over borrowed [`PollFd`]s and
//! [`install_drain_handler`] flipping a process-global [`AtomicBool`].

use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

/// `poll(2)` readiness flags (values from the Linux ABI).
pub mod events {
    /// Readable (or a peer close with buffered data still to read).
    pub const POLLIN: i16 = 0x1;
    /// Writable without blocking.
    pub const POLLOUT: i16 = 0x4;
    /// Error condition (revents only).
    pub const POLLERR: i16 = 0x8;
    /// Peer hung up (revents only).
    pub const POLLHUP: i16 = 0x10;
}

/// One `struct pollfd`, layout-compatible with the kernel's.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN | POLLOUT`).
    pub events: i16,
    /// Kernel-reported events; valid after [`poll`] returns.
    pub revents: i16,
}

impl PollFd {
    /// Watches `fd` for `events`, with `revents` cleared.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// True if any of `mask`'s bits came back in `revents`.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn signal(signum: i32, handler: usize) -> usize;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
}

/// Sets `SO_SNDBUF` on a socket (values from the Linux ABI). Used to bound
/// the kernel-side memory one slow client can pin; the kernel doubles the
/// requested value for bookkeeping overhead.
pub(crate) fn set_sndbuf(fd: RawFd, bytes: i32) -> io::Result<()> {
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    // SAFETY: valid fd, valid i32 pointer + exact length for the call.
    let rc =
        unsafe { setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, std::mem::size_of::<i32>() as u32) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Blocks up to `timeout_ms` (-1 = forever) for readiness on `fds`. Returns
/// the number of descriptors with non-zero `revents`. `EINTR` (a signal —
/// e.g. the SIGTERM that starts a drain) is reported as `Ok(0)` so the
/// caller's loop re-checks its drain flag instead of treating it as failure.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice of
    // kernel-layout-compatible pollfd structs for the whole call, and the
    // length is passed alongside it.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// `SIGTERM`'s number (POSIX).
pub const SIGTERM: i32 = 15;

static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    // Only async-signal-safe work here: one relaxed atomic store.
    DRAIN_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs a `SIGTERM` handler that flips the process-wide drain flag read
/// by [`drain_requested`]. Idempotent; replaces any prior SIGTERM handler.
pub fn install_drain_handler() -> io::Result<()> {
    // SAFETY: `on_sigterm` is async-signal-safe (single atomic store) and
    // has the C ABI signature signal(2) expects.
    let prev = unsafe { signal(SIGTERM, on_sigterm as *const () as usize) };
    const SIG_ERR: usize = usize::MAX;
    if prev == SIG_ERR {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// True once `SIGTERM` has been received (or [`request_drain`] called).
pub fn drain_requested() -> bool {
    DRAIN_REQUESTED.load(Ordering::Relaxed)
}

/// Flips the drain flag programmatically — what the chaos suite uses to
/// start a drain without involving real signals, and what tests use to
/// reset between runs is intentionally absent: the flag is one-way within a
/// process, matching SIGTERM semantics. In-process tests drive drains
/// through `NetServer`'s explicit drain entry point instead.
pub fn request_drain() {
    DRAIN_REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readable_after_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), events::POLLIN)];
        // Nothing written yet: a zero-timeout poll sees nothing.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].has(events::POLLIN));

        a.write_all(b"x").unwrap();
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].has(events::POLLIN));
    }

    #[test]
    fn poll_reports_hup_on_peer_close() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), events::POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].has(events::POLLIN | events::POLLHUP));
    }

    #[test]
    fn drain_handler_installs() {
        install_drain_handler().unwrap();
    }
}
