//! The length-prefixed binary wire protocol (version 1).
//!
//! Every frame is a fixed 6-byte header followed by a kind-specific payload:
//!
//! ```text
//! offset  size  field
//! 0       4     payload_len  (u32 LE — bytes after the 6-byte header)
//! 4       1     version      (WIRE_VERSION = 1)
//! 5       1     kind         (FrameKind discriminant)
//! 6..     n     payload
//! ```
//!
//! | kind | name   | payload |
//! |------|--------|---------|
//! | 1    | Query  | `request_id u64, user u64, deadline_us u32 (0 = none), flags u8 (bit 0: idempotent)` |
//! | 2    | TopK   | `request_id u64, count u16, count × (item u32, score f64 LE bits)` |
//! | 3    | Reject | `request_id u64, reason u8, detail u64` |
//!
//! All integers little-endian; scores travel as `f64::to_bits` so served
//! lists round-trip bit-exactly (the serving tier's answers are bit-stable —
//! the wire must not be the layer that loses that).
//!
//! ## Robustness contract
//!
//! [`FrameDecoder`] **never panics** on hostile input: truncation anywhere is
//! `Ok(None)` (wait for more bytes), and a malformed header or payload is a
//! typed [`FrameError`] naming what broke. The torn-frame fuzz suite in
//! `tests/frame_props.rs` pins truncation-at-every-byte and flipped-byte
//! behavior the same way the snapshot codec's property suite does.
//! `payload_len` is validated against [`MAX_PAYLOAD`] *before* any
//! allocation, so a hostile 4-byte prefix cannot balloon memory.

use msopds_serve::ScoredItem;

/// Protocol version emitted and accepted by this build.
pub const WIRE_VERSION: u8 = 1;

/// Frame header length: `payload_len (4) + version (1) + kind (1)`.
pub const HEADER_LEN: usize = 6;

/// Upper bound on a frame payload. Generous for any plausible top-K response
/// (a 4096-item list is ~48 KiB) while keeping a hostile length prefix from
/// reserving gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Why a query was refused, on the wire. The discriminants are the protocol —
/// never renumber them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// The admission queue was at capacity (`detail` = the configured cap) —
    /// the RESOURCE_EXHAUSTED mapping of the typed `Overloaded` shed.
    ResourceExhausted = 1,
    /// The user id was outside the served model's universe (`detail` =
    /// `n_users`).
    UnknownUser = 2,
    /// The server is draining and accepts no new queries (`detail` = 0).
    Draining = 3,
    /// The query's deadline expired before its response was ready (`detail`
    /// = elapsed µs on the server).
    DeadlineExceeded = 4,
}

impl RejectReason {
    fn from_wire(raw: u8) -> Result<Self, FrameError> {
        match raw {
            1 => Ok(RejectReason::ResourceExhausted),
            2 => Ok(RejectReason::UnknownUser),
            3 => Ok(RejectReason::Draining),
            4 => Ok(RejectReason::DeadlineExceeded),
            other => Err(FrameError::BadPayload {
                kind: FrameKind::Reject,
                what: "unknown reject reason",
                value: other as u64,
            }),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::ResourceExhausted => write!(f, "resource-exhausted"),
            RejectReason::UnknownUser => write!(f, "unknown-user"),
            RejectReason::Draining => write!(f, "draining"),
            RejectReason::DeadlineExceeded => write!(f, "deadline-exceeded"),
        }
    }
}

/// Frame discriminants (the `kind` header byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: score one user.
    Query = 1,
    /// Server → client: the served top-K list.
    TopK = 2,
    /// Server → client: typed refusal.
    Reject = 3,
}

/// One decoded protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A client query.
    Query {
        /// Client-chosen correlation id, echoed on the response.
        request_id: u64,
        /// User to score.
        user: u64,
        /// Server-side latency budget in µs; 0 means none. Propagated so the
        /// server can shed deadline-exceeded work instead of answering late.
        deadline_us: u32,
        /// True when the client may safely resubmit this query after a
        /// reconnect (top-K reads always are; the flag exists so the retry
        /// rule is carried per-query, not assumed).
        idempotent: bool,
    },
    /// A served answer.
    TopK {
        /// Correlation id of the query this answers.
        request_id: u64,
        /// The top-K list, scores bit-exact.
        items: Vec<ScoredItem>,
    },
    /// A typed refusal.
    Reject {
        /// Correlation id of the refused query.
        request_id: u64,
        /// Why.
        reason: RejectReason,
        /// Reason-specific detail (queue cap, n_users, elapsed µs).
        detail: u64,
    },
}

/// Typed decode failures. `Truncated` is *not* among them — incomplete input
/// is the normal streaming state ([`FrameDecoder::next`] returns `Ok(None)`),
/// not an error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The version byte disagrees with [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The kind byte names no known frame.
    BadKind {
        /// The kind byte received.
        got: u8,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// The advertised payload length.
        len: u64,
    },
    /// The payload does not parse as its kind claims (wrong length, bad
    /// reason byte, item count disagreeing with the payload size).
    BadPayload {
        /// The frame kind whose payload broke.
        kind: FrameKind,
        /// What was wrong.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadVersion { got } => {
                write!(f, "frame version {got} (this build speaks {WIRE_VERSION})")
            }
            FrameError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            FrameError::Oversize { len } => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            FrameError::BadPayload { kind, what, value } => {
                write!(f, "bad {kind:?} payload: {what} ({value})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Appends this frame's wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.extend_from_slice(&[0, 0, 0, 0, WIRE_VERSION, 0]);
        match self {
            Frame::Query { request_id, user, deadline_us, idempotent } => {
                out[header_at + 5] = FrameKind::Query as u8;
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&user.to_le_bytes());
                out.extend_from_slice(&deadline_us.to_le_bytes());
                out.push(u8::from(*idempotent));
            }
            Frame::TopK { request_id, items } => {
                out[header_at + 5] = FrameKind::TopK as u8;
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&(items.len() as u16).to_le_bytes());
                for item in items {
                    out.extend_from_slice(&item.item.to_le_bytes());
                    out.extend_from_slice(&item.score.to_bits().to_le_bytes());
                }
            }
            Frame::Reject { request_id, reason, detail } => {
                out[header_at + 5] = FrameKind::Reject as u8;
                out.extend_from_slice(&request_id.to_le_bytes());
                out.push(*reason as u8);
                out.extend_from_slice(&detail.to_le_bytes());
            }
        }
        let payload_len = (out.len() - header_at - HEADER_LEN) as u32;
        out[header_at..header_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// This frame's wire encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 32);
        self.encode(&mut out);
        out
    }

    /// The correlation id carried by any frame kind.
    pub fn request_id(&self) -> u64 {
        match self {
            Frame::Query { request_id, .. }
            | Frame::TopK { request_id, .. }
            | Frame::Reject { request_id, .. } => *request_id,
        }
    }
}

/// A little-endian cursor over one payload; every read is bounds-checked
/// against the payload length so malformed frames surface as typed errors.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
    kind: FrameKind,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], FrameError> {
        let end = self.at.checked_add(N).filter(|&end| end <= self.buf.len()).ok_or(
            FrameError::BadPayload { kind: self.kind, what, value: self.buf.len() as u64 },
        )?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take::<1>(what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(what)?))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(what)?))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(what)?))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload {
                kind: self.kind,
                what: "trailing bytes after payload",
                value: (self.buf.len() - self.at) as u64,
            })
        }
    }
}

fn decode_payload(kind: FrameKind, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor { buf: payload, at: 0, kind };
    let frame = match kind {
        FrameKind::Query => {
            let request_id = c.u64("missing request id")?;
            let user = c.u64("missing user id")?;
            let deadline_us = c.u32("missing deadline")?;
            let flags = c.u8("missing flags")?;
            Frame::Query { request_id, user, deadline_us, idempotent: flags & 1 != 0 }
        }
        FrameKind::TopK => {
            let request_id = c.u64("missing request id")?;
            let count = c.u16("missing item count")? as usize;
            let expect = payload.len().saturating_sub(10);
            if count * 12 != expect {
                return Err(FrameError::BadPayload {
                    kind,
                    what: "item count disagrees with payload size",
                    value: count as u64,
                });
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let item = c.u32("truncated item id")?;
                let score = f64::from_bits(c.u64("truncated score")?);
                items.push(ScoredItem { item, score });
            }
            Frame::TopK { request_id, items }
        }
        FrameKind::Reject => {
            let request_id = c.u64("missing request id")?;
            let reason = RejectReason::from_wire(c.u8("missing reason")?)?;
            let detail = c.u64("missing detail")?;
            Frame::Reject { request_id, reason, detail }
        }
    };
    c.finish()?;
    Ok(frame)
}

/// An incremental frame parser over a byte stream. Feed arbitrary chunks in
/// with [`FrameDecoder::extend`]; pop complete frames with
/// [`FrameDecoder::next`]. Holds at most one frame plus one read chunk of
/// bytes — the connection layer's backpressure keeps it from growing beyond
/// that.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    at: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates the buffer,
        // so steady-state decoding is copy-free.
        if self.at > 4096 && self.at * 2 > self.buf.len() {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a non-zero value at connection
    /// close means the peer died mid-frame).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pops the next complete frame: `Ok(Some(frame))`, `Ok(None)` when the
    /// buffered bytes end mid-frame (not an error — stream more), or a typed
    /// [`FrameError`] on malformed input. After an error the decoder's state
    /// is unspecified; the connection layer closes the link (framing is lost
    /// — there is no way to resynchronize a length-prefixed stream).
    ///
    /// Deliberately not `Iterator`: the fallible `Result<Option<_>>` shape
    /// (errors are terminal, `None` means "stream more bytes") doesn't fit
    /// the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.at..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let payload_len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::Oversize { len: payload_len as u64 });
        }
        let version = avail[4];
        if version != WIRE_VERSION {
            return Err(FrameError::BadVersion { got: version });
        }
        let kind = match avail[5] {
            1 => FrameKind::Query,
            2 => FrameKind::TopK,
            3 => FrameKind::Reject,
            other => return Err(FrameError::BadKind { got: other }),
        };
        if avail.len() < HEADER_LEN + payload_len {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + payload_len];
        let frame = decode_payload(kind, payload)?;
        self.at += HEADER_LEN + payload_len;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Query { request_id: 7, user: 123, deadline_us: 2500, idempotent: true },
            Frame::Query { request_id: 8, user: 0, deadline_us: 0, idempotent: false },
            Frame::TopK {
                request_id: 7,
                items: vec![
                    ScoredItem { item: 3, score: 4.25 },
                    ScoredItem { item: 9, score: -0.5 },
                ],
            },
            Frame::TopK { request_id: 9, items: vec![] },
            Frame::Reject { request_id: 8, reason: RejectReason::ResourceExhausted, detail: 256 },
            Frame::Reject { request_id: 1, reason: RejectReason::DeadlineExceeded, detail: 917 },
        ]
    }

    #[test]
    fn frames_round_trip_through_one_stream() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        // Feed in awkward 3-byte chunks to exercise the streaming path.
        for chunk in wire.chunks(3) {
            dec.extend(chunk);
        }
        let mut got = Vec::new();
        while let Some(f) = dec.next().expect("valid stream") {
            got.push(f);
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn scores_survive_bit_exactly() {
        let tricky = [f64::MIN_POSITIVE, -0.0, 1.0 / 3.0, f64::MAX, f64::NEG_INFINITY];
        for (i, &score) in tricky.iter().enumerate() {
            let f = Frame::TopK {
                request_id: i as u64,
                items: vec![ScoredItem { item: i as u32, score }],
            };
            let mut dec = FrameDecoder::new();
            dec.extend(&f.to_bytes());
            match dec.next().unwrap().unwrap() {
                Frame::TopK { items, .. } => {
                    assert_eq!(items[0].score.to_bits(), score.to_bits());
                }
                other => panic!("wrong frame {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_not_an_error() {
        let wire = sample_frames()[0].to_bytes();
        for cut in 0..wire.len() {
            let mut dec = FrameDecoder::new();
            dec.extend(&wire[..cut]);
            assert_eq!(dec.next(), Ok(None), "prefix of {cut} bytes must just wait");
        }
    }

    #[test]
    fn bad_version_kind_and_oversize_are_typed() {
        let mut wire = sample_frames()[0].to_bytes();
        wire[4] = 9;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next(), Err(FrameError::BadVersion { got: 9 }));

        let mut wire = sample_frames()[0].to_bytes();
        wire[5] = 77;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next(), Err(FrameError::BadKind { got: 77 }));

        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        dec.extend(&[WIRE_VERSION, 1]);
        assert_eq!(dec.next(), Err(FrameError::Oversize { len: u32::MAX as u64 }));
    }

    #[test]
    fn payload_mismatches_are_typed() {
        // A TopK whose count promises more items than the payload carries.
        let mut wire = Vec::new();
        Frame::TopK { request_id: 1, items: vec![ScoredItem { item: 1, score: 1.0 }] }
            .encode(&mut wire);
        wire[HEADER_LEN + 8] = 5; // count 5, payload sized for 1
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next(), Err(FrameError::BadPayload { kind: FrameKind::TopK, .. })));

        // A Reject with an unknown reason byte.
        let mut wire = Vec::new();
        Frame::Reject { request_id: 1, reason: RejectReason::Draining, detail: 0 }
            .encode(&mut wire);
        wire[HEADER_LEN + 8] = 200;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next(), Err(FrameError::BadPayload { kind: FrameKind::Reject, .. })));
    }

    #[test]
    fn decoder_compacts_but_preserves_partial_frames() {
        let frame = sample_frames()[2].to_bytes();
        let mut dec = FrameDecoder::new();
        // Push enough traffic through to trigger compaction several times.
        for _ in 0..2000 {
            dec.extend(&frame);
            assert!(dec.next().unwrap().is_some());
        }
        // End on a split frame across the compaction boundary.
        dec.extend(&frame[..7]);
        assert_eq!(dec.next(), Ok(None));
        dec.extend(&frame[7..]);
        assert!(dec.next().unwrap().is_some());
        assert_eq!(dec.pending(), 0);
    }
}
