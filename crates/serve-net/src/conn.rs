//! Per-connection state: nonblocking read/write buffers, the incremental
//! frame decoder, and the in-flight window that drives backpressure.
//!
//! A [`Conn`] owns one nonblocking `TcpStream` plus everything the poll loop
//! needs to know about it:
//!
//! * a [`FrameDecoder`] fed by [`Conn::fill`] — reads are nonblocking and
//!   stop at `WouldBlock`;
//! * a pending write buffer drained by [`Conn::flush`] — partial writes keep
//!   their offset, and *progress* (any byte accepted by the kernel) stamps
//!   [`Conn::last_progress_ns`], which the server's slow-client eviction
//!   watches;
//! * `in_flight`, the count of admitted queries whose responses have not yet
//!   been queued. The server stops *reading* from a connection whose window
//!   is full or whose write buffer is over its high-water mark — bytes then
//!   back up in the kernel socket buffer and TCP pushes back on the client.
//!
//! Socket fault sites (armed by the `fault-injection` feature and a
//! `MSOPDS_FAULT_PLAN`):
//!
//! | site                   | effect of a `trip`                       |
//! |------------------------|------------------------------------------|
//! | `serve_net.read`       | short read: deliver at most 1 byte       |
//! | `serve_net.write`      | short write: hand the kernel 1 byte      |
//! | `serve_net.conn`       | forced disconnect (peer appears dead)    |
//! | `serve_net.write.delay`| `delay_ms` stalls the flush in place     |

use std::io::{self, Read, Write};
use std::net::TcpStream;

use msopds_faultline::{fault_point, fault_trip};

use crate::frame::{Frame, FrameDecoder, FrameError};

/// Stop reading from a connection whose pending write buffer exceeds this
/// many bytes; resume once it drains below. Roughly 16 full-size top-K
/// responses at K = 1024.
pub const WRITE_HIGH_WATER: usize = 1 << 20;

/// What one read pass produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes (possibly zero) were buffered; the stream is still open.
    Open,
    /// Orderly EOF, a reset, or an injected disconnect: the peer is gone.
    Disconnected,
}

/// One live client connection.
pub struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_at: usize,
    /// Admitted queries not yet answered into `out`.
    pub in_flight: usize,
    /// Monotonic ns of the last write progress (or accept), for slow-client
    /// eviction.
    pub last_progress_ns: u64,
    /// Set once the codec errors or the peer disconnects; the server
    /// finishes the write buffer (if possible) and closes.
    pub dead: bool,
}

impl Conn {
    /// Wraps an accepted stream, switching it to nonblocking mode.
    /// `sndbuf` caps the kernel send buffer (`SO_SNDBUF`) so one slow client
    /// cannot pin megabytes of kernel memory before the write-timeout
    /// eviction notices it has stopped reading.
    pub fn new(stream: TcpStream, now_ns: u64, sndbuf: Option<usize>) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        if let Some(bytes) = sndbuf {
            use std::os::fd::AsRawFd;
            crate::poll::set_sndbuf(stream.as_raw_fd(), bytes.min(i32::MAX as usize) as i32)?;
        }
        Ok(Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_at: 0,
            in_flight: 0,
            last_progress_ns: now_ns,
            dead: false,
        })
    }

    /// The underlying descriptor, for the poll set.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Bytes queued for the peer but not yet accepted by the kernel.
    pub fn pending_write(&self) -> usize {
        self.out.len() - self.out_at
    }

    /// True while the peer deserves `POLLIN`: alive, window open, and not
    /// drowning in unflushed responses.
    pub fn wants_read(&self, conn_window: usize) -> bool {
        !self.dead && self.in_flight < conn_window && self.pending_write() < WRITE_HIGH_WATER
    }

    /// True while there are bytes to flush.
    pub fn wants_write(&self) -> bool {
        self.pending_write() > 0
    }

    /// Nonblocking read pass: pulls whatever the kernel has into the frame
    /// decoder. Never blocks, never errors on `WouldBlock`/`Interrupted`;
    /// any other I/O error is a disconnect.
    pub fn fill(&mut self) -> ReadOutcome {
        if fault_trip("serve_net.conn") {
            return ReadOutcome::Disconnected;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            // An injected short read shrinks the buffer BEFORE the syscall —
            // truncating afterwards would discard bytes the kernel already
            // handed over and corrupt the stream.
            let cap = if fault_trip("serve_net.read") { 1 } else { buf.len() };
            match self.stream.read(&mut buf[..cap]) {
                Ok(0) => return ReadOutcome::Disconnected,
                Ok(n) => {
                    self.decoder.extend(&buf[..n]);
                    if n < cap {
                        return ReadOutcome::Open; // kernel buffer drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
    }

    /// Pops the next complete frame from the decoder. Decode errors mark
    /// the connection dead — a length-prefixed stream cannot resynchronize
    /// after corruption, so the only safe move is to close.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match self.decoder.next() {
            Ok(f) => Ok(f),
            Err(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    /// Bytes sitting in the decoder mid-frame (non-zero at disconnect means
    /// the peer died mid-frame).
    pub fn torn_bytes(&self) -> usize {
        self.decoder.pending()
    }

    /// Queues a frame for the peer.
    pub fn queue(&mut self, frame: &Frame) {
        // Compact the consumed prefix before growing, same policy as the
        // decoder: copy-free steady state, bounded memory.
        if self.out_at > 4096 && self.out_at * 2 > self.out.len() {
            self.out.drain(..self.out_at);
            self.out_at = 0;
        }
        frame.encode(&mut self.out);
    }

    /// Nonblocking write pass. Returns `Ok(true)` if any byte was accepted
    /// (progress — the eviction clock resets), `Ok(false)` on `WouldBlock`
    /// with nothing accepted, `Err` on a dead peer.
    pub fn flush(&mut self, now_ns: u64) -> io::Result<bool> {
        fault_point!("serve_net.write.delay");
        let mut progressed = false;
        while self.out_at < self.out.len() {
            let mut chunk = &self.out[self.out_at..];
            if fault_trip("serve_net.write") {
                chunk = &chunk[..1.min(chunk.len())]; // injected short write
            }
            match self.stream.write(chunk) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_at += n;
                    progressed = true;
                    self.last_progress_ns = now_ns;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_at == self.out.len() {
            self.out.clear();
            self.out_at = 0;
        }
        Ok(progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, Conn::new(server_side, 0, None).unwrap())
    }

    #[test]
    fn fill_decodes_frames_written_by_peer() {
        let (mut client, mut conn) = pair();
        let q = Frame::Query { request_id: 5, user: 2, deadline_us: 0, idempotent: true };
        client.write_all(&q.to_bytes()).unwrap();
        client.flush().unwrap();
        // Nonblocking: loop until the kernel delivers.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            assert_eq!(conn.fill(), ReadOutcome::Open);
            match conn.next_frame().unwrap() {
                Some(f) => {
                    assert_eq!(f, q);
                    break;
                }
                None => {
                    assert!(std::time::Instant::now() < deadline, "frame never arrived");
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(conn.torn_bytes(), 0);
    }

    #[test]
    fn fill_reports_disconnect_on_peer_close() {
        let (client, mut conn) = pair();
        drop(client);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match conn.fill() {
                ReadOutcome::Disconnected => break,
                ReadOutcome::Open => {
                    assert!(std::time::Instant::now() < deadline, "close never observed");
                    std::thread::yield_now();
                }
            }
        }
    }

    #[test]
    fn window_and_high_water_gate_reads() {
        let (_client, mut conn) = pair();
        assert!(conn.wants_read(2));
        conn.in_flight = 2;
        assert!(!conn.wants_read(2), "full window must stop reads");
        conn.in_flight = 0;
        conn.out = vec![0u8; WRITE_HIGH_WATER + 1];
        assert!(!conn.wants_read(2), "over high-water must stop reads");
    }

    #[test]
    fn flush_makes_progress_and_clears_buffer() {
        let (mut client, mut conn) = pair();
        let r = Frame::Reject {
            request_id: 1,
            reason: crate::frame::RejectReason::Draining,
            detail: 0,
        };
        conn.queue(&r);
        assert!(conn.wants_write());
        let progressed = conn.flush(7).unwrap();
        assert!(progressed);
        assert_eq!(conn.last_progress_ns, 7);
        assert!(!conn.wants_write());

        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 256];
        let n = client.read(&mut buf).unwrap();
        dec.extend(&buf[..n]);
        assert_eq!(dec.next().unwrap().unwrap(), r);
    }
}
