//! The poll-driven TCP front end over an [`AsyncServer`].
//!
//! One poll thread owns every socket. Each loop iteration:
//!
//! 1. `poll(2)` over the listener, the self-pipe wake fd, and every live
//!    connection (POLLIN only while [`Conn::wants_read`] — the per-connection
//!    backpressure gate — and POLLOUT only while bytes are pending);
//! 2. drains the [`CompletionPump`]'s channel, turning each resolved ticket
//!    into a `TopK` frame (or a `DeadlineExceeded` reject when the query's
//!    propagated budget expired server-side) queued on its connection;
//! 3. accepts new connections (unless draining), reads and decodes queries,
//!    admits them into the async tier, and maps typed admission failures to
//!    wire rejects;
//! 4. flushes write buffers and evicts clients that accept no bytes for
//!    [`NetServeConfig::write_timeout_ms`].
//!
//! ## Accounting identity
//!
//! Every decoded query lands in **exactly one** bucket, decided at
//! response-enqueue time:
//!
//! * `completed` — answered with a `TopK` (even if its connection died
//!   before delivery; `undelivered` sub-counts those),
//! * `rejected` — `ResourceExhausted` + `UnknownUser` + `DeadlineExceeded`,
//! * `drained` — `Draining` rejects plus admitted tickets the shutting-down
//!   server terminated without an answer.
//!
//! so `offered == completed + rejected + drained` holds *exactly*, by
//! construction — the chaos suite asserts it through client kills, codec
//! corruption and drain-under-load.
//!
//! ## Graceful drain
//!
//! `SIGTERM` (via [`crate::poll::install_drain_handler`]) or
//! [`NetServer::drain`] flips the drain flag. The loop then stops accepting,
//! answers new queries with `Reject{Draining}`, and keeps running until
//! every in-flight ticket has resolved and every write buffer has flushed —
//! bounded by [`NetServeConfig::drain_ms`]. Finally the async tier is shut
//! down (its `Shutdown` flush serves everything still queued), the pump is
//! joined, and any last completions are classified before the sockets close.
//! A draining server never cuts a response frame in half.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msopds_faultline::fault_trip;
use msopds_serve_async::{AsyncServer, Completion, CompletionPump, ServeAsyncError, TicketError};
use msopds_telemetry::Counter;

use crate::conn::{Conn, ReadOutcome};
use crate::frame::{Frame, RejectReason};
use crate::poll::{self, events, PollFd};

static CONNS_ACCEPTED: Counter = Counter::new("serve_net.conns.accepted");
static CONNS_EVICTED: Counter = Counter::new("serve_net.conns.evicted");
static OFFERED: Counter = Counter::new("serve_net.offered");
static COMPLETED: Counter = Counter::new("serve_net.completed");
static REJECTED: Counter = Counter::new("serve_net.rejected");
static DRAINED: Counter = Counter::new("serve_net.drained");
static UNDELIVERED: Counter = Counter::new("serve_net.undelivered");
static CODEC_ERRORS: Counter = Counter::new("serve_net.codec_errors");
static TORN_DISCONNECTS: Counter = Counter::new("serve_net.torn_disconnects");

/// Knobs of the socket front end.
#[derive(Clone, Copy, Debug)]
pub struct NetServeConfig {
    /// Max queries a single connection may have in flight before the server
    /// stops reading from it (TCP then pushes back on the client).
    pub conn_window: usize,
    /// Evict a client that accepts no response bytes for this long while
    /// bytes are pending (a reader that stopped reading must not pin server
    /// memory).
    pub write_timeout_ms: u64,
    /// Upper bound on the graceful-drain wait; in-flight work still
    /// unresolved after this is force-classified as drained.
    pub drain_ms: u64,
    /// Per-connection kernel send-buffer cap (`SO_SNDBUF`), `None` for the
    /// OS default. Bounds the kernel memory a slow client can pin and makes
    /// the write-timeout eviction trip at a predictable backlog instead of
    /// wherever TCP autotuning happens to land.
    pub sndbuf: Option<usize>,
}

impl Default for NetServeConfig {
    fn default() -> Self {
        Self { conn_window: 64, write_timeout_ms: 5_000, drain_ms: 1_000, sndbuf: None }
    }
}

/// The socket tier's cumulative accounting. The identity
/// `offered == completed + rejected + drained` holds exactly at every
/// quiescent point (no bytes between decoder and bucket).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections evicted for write-timeout.
    pub conns_evicted: u64,
    /// Connections that disconnected (EOF/reset), including evictions.
    pub conns_closed: u64,
    /// Queries decoded off the wire.
    pub offered: u64,
    /// Queries answered with a `TopK` frame.
    pub completed: u64,
    /// Of `completed`: answers whose connection died before delivery (the
    /// work was done; the bytes had nowhere to go).
    pub undelivered: u64,
    /// Sum of the three reject buckets below.
    pub rejected: u64,
    /// Sheds at the admission cap (`Reject{ResourceExhausted}`).
    pub rejected_overload: u64,
    /// Out-of-universe user ids (`Reject{UnknownUser}`).
    pub rejected_unknown_user: u64,
    /// Answers ready after the query's deadline (`Reject{DeadlineExceeded}`),
    /// counted separately from admission sheds.
    pub rejected_deadline: u64,
    /// Queries refused because the server was draining, plus admitted
    /// tickets terminated by shutdown without an answer.
    pub drained: u64,
    /// Streams that ended mid-frame (peer died with a partial frame
    /// buffered).
    pub torn_disconnects: u64,
    /// Connections closed for malformed framing (typed decode errors —
    /// never panics).
    pub codec_errors: u64,
}

impl NetStats {
    /// The accounting identity the chaos suite pins.
    pub fn balanced(&self) -> bool {
        self.offered == self.completed + self.rejected + self.drained
            && self.rejected
                == self.rejected_overload + self.rejected_unknown_user + self.rejected_deadline
    }
}

/// Shared between the poll thread and the [`NetServer`] handle.
struct Shared {
    drain: AtomicBool,
    wake_tx: UnixStream,
    wake_armed: AtomicBool,
    // Stats atomics, updated by the poll thread, readable live.
    conns_accepted: AtomicU64,
    conns_evicted: AtomicU64,
    conns_closed: AtomicU64,
    offered: AtomicU64,
    completed: AtomicU64,
    undelivered: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_unknown_user: AtomicU64,
    rejected_deadline: AtomicU64,
    drained: AtomicU64,
    torn_disconnects: AtomicU64,
    codec_errors: AtomicU64,
}

impl Shared {
    fn wake(&self) {
        // Dedup wakes: one unread byte in the pipe is enough to interrupt
        // poll; the reader disarms after draining.
        if !self.wake_armed.swap(true, Ordering::AcqRel) {
            let _ = (&self.wake_tx).write(&[1]);
        }
    }

    fn stats(&self) -> NetStats {
        let rejected_overload = self.rejected_overload.load(Ordering::Relaxed);
        let rejected_unknown_user = self.rejected_unknown_user.load(Ordering::Relaxed);
        let rejected_deadline = self.rejected_deadline.load(Ordering::Relaxed);
        NetStats {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_evicted: self.conns_evicted.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            offered: self.offered.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            undelivered: self.undelivered.load(Ordering::Relaxed),
            rejected: rejected_overload + rejected_unknown_user + rejected_deadline,
            rejected_overload,
            rejected_unknown_user,
            rejected_deadline,
            drained: self.drained.load(Ordering::Relaxed),
            torn_disconnects: self.torn_disconnects.load(Ordering::Relaxed),
            codec_errors: self.codec_errors.load(Ordering::Relaxed),
        }
    }
}

/// One admitted query awaiting its completion.
struct PendingReq {
    conn_id: u32,
    request_id: u64,
    deadline_us: u32,
    admitted_at: Instant,
}

/// The TCP front end handle. Construction binds, spawns the poll thread and
/// starts serving; [`NetServer::drain`] performs the graceful shutdown and
/// returns the final accounting.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    thread: Option<JoinHandle<NetStats>>,
}

impl NetServer {
    /// Binds `addr` (`"host:0"` picks an ephemeral port — read it back with
    /// [`NetServer::local_addr`]) and starts serving `server` behind it.
    pub fn start(addr: &str, server: AsyncServer, cfg: NetServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            drain: AtomicBool::new(false),
            wake_tx,
            wake_armed: AtomicBool::new(false),
            conns_accepted: AtomicU64::new(0),
            conns_evicted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            undelivered: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_unknown_user: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            torn_disconnects: AtomicU64::new(0),
            codec_errors: AtomicU64::new(0),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-net-poll".to_string())
                .spawn(move || PollLoop::new(listener, wake_rx, server, cfg, shared).run())
                .expect("spawn serve-net poll thread")
        };
        Ok(Self { shared, addr: local, thread: Some(thread) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live accounting (exact only at quiescent points; the post-drain
    /// snapshot from [`NetServer::drain`] is always exact).
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// Requests a graceful drain (the programmatic SIGTERM), waits for it to
    /// finish, and returns the final — exactly balanced — accounting.
    pub fn drain(mut self) -> NetStats {
        self.shared.drain.store(true, Ordering::Release);
        self.shared.wake();
        let thread = self.thread.take().expect("poll thread present");
        thread.join().expect("serve-net poll thread panicked")
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.drain.store(true, Ordering::Release);
            self.shared.wake();
            let _ = thread.join();
        }
    }
}

struct PollLoop {
    listener: TcpListener,
    wake_rx: UnixStream,
    server: Option<AsyncServer>,
    cfg: NetServeConfig,
    shared: Arc<Shared>,
    conns: HashMap<u32, Conn>,
    pending: HashMap<u64, PendingReq>,
    pump: Option<CompletionPump>,
    completions: Receiver<Completion>,
    next_conn_id: u32,
    next_token: u64,
    started: Instant,
}

impl PollLoop {
    fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        server: AsyncServer,
        cfg: NetServeConfig,
        shared: Arc<Shared>,
    ) -> Self {
        let (pump, completions) = {
            let shared = Arc::clone(&shared);
            CompletionPump::start(move || shared.wake())
        };
        Self {
            listener,
            wake_rx,
            server: Some(server),
            cfg,
            shared,
            conns: HashMap::new(),
            pending: HashMap::new(),
            pump: Some(pump),
            completions,
            next_conn_id: 0,
            next_token: 0,
            started: Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::Acquire) || poll::drain_requested()
    }

    fn run(mut self) -> NetStats {
        let mut drain_started: Option<Instant> = None;
        loop {
            let draining = self.draining();
            if draining && drain_started.is_none() {
                drain_started = Some(Instant::now());
            }

            // Drain is finished when nothing is in flight and every response
            // byte reached a kernel buffer (or its peer died).
            if draining {
                let writes_pending = self.conns.values().any(Conn::wants_write);
                let timed_out = drain_started
                    .map(|t| t.elapsed().as_millis() as u64 >= self.cfg.drain_ms)
                    .unwrap_or(false);
                if (self.pending.is_empty() && !writes_pending) || timed_out {
                    break;
                }
            }

            // Assemble the poll set: wake pipe, listener (only while
            // accepting), then one slot per connection with interest derived
            // from the backpressure state.
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            let mut ids = Vec::with_capacity(self.conns.len());
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), events::POLLIN));
            let listener_slot = if draining {
                usize::MAX
            } else {
                fds.push(PollFd::new(self.listener.as_raw_fd(), events::POLLIN));
                fds.len() - 1
            };
            for (&id, conn) in &self.conns {
                let mut interest = 0i16;
                if conn.wants_read(self.cfg.conn_window) {
                    interest |= events::POLLIN;
                }
                if conn.wants_write() {
                    interest |= events::POLLOUT;
                }
                ids.push((id, fds.len()));
                fds.push(PollFd::new(conn.stream().as_raw_fd(), interest));
            }

            // Short timeout so SIGTERM (no wake byte) and the eviction sweep
            // are both noticed promptly even on an idle server.
            if let Err(e) = poll::poll_fds(&mut fds, 20) {
                // poll failing outright means the fd set itself is broken;
                // treat it as a drain trigger rather than spinning.
                eprintln!("serve-net: poll failed: {e}");
                self.shared.drain.store(true, Ordering::Release);
                continue;
            }

            if fds[0].has(events::POLLIN) {
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                self.shared.wake_armed.store(false, Ordering::Release);
            }

            self.pump_completions();

            if listener_slot != usize::MAX && fds[listener_slot].has(events::POLLIN) {
                self.accept_ready();
            }

            // Read/decode pass. Run the decode loop for every connection —
            // a window that just reopened may have whole frames already
            // buffered, with no new readiness to announce them.
            let mut dead: Vec<u32> = Vec::new();
            for (id, slot) in &ids {
                let readable = fds[*slot].has(events::POLLIN | events::POLLHUP | events::POLLERR);
                if let Some(conn) = self.conns.get_mut(id) {
                    if readable && !conn.dead && conn.fill() == ReadOutcome::Disconnected {
                        conn.dead = true;
                        if conn.torn_bytes() > 0 {
                            self.shared.torn_disconnects.fetch_add(1, Ordering::Relaxed);
                            TORN_DISCONNECTS.incr();
                        }
                    }
                }
                self.decode_and_admit(*id, draining);
                if self.conns.get(id).map(|c| c.dead).unwrap_or(false) {
                    dead.push(*id);
                }
            }

            // Write pass + slow-client eviction.
            let now_ns = self.now_ns();
            let timeout_ns = self.cfg.write_timeout_ms.saturating_mul(1_000_000);
            for (id, conn) in &mut self.conns {
                if conn.wants_write() {
                    match conn.flush(now_ns) {
                        Ok(_) => {
                            if conn.wants_write()
                                && now_ns.saturating_sub(conn.last_progress_ns) > timeout_ns
                            {
                                conn.dead = true;
                                self.shared.conns_evicted.fetch_add(1, Ordering::Relaxed);
                                CONNS_EVICTED.incr();
                                if !dead.contains(id) {
                                    dead.push(*id);
                                }
                            }
                        }
                        Err(_) => {
                            conn.dead = true;
                            if !dead.contains(id) {
                                dead.push(*id);
                            }
                        }
                    }
                }
            }

            for id in dead {
                if self.conns.get(&id).map(|c| c.dead).unwrap_or(false) {
                    // Best-effort final flush already happened above; close.
                    // In-flight completions for this conn land `undelivered`.
                    self.conns.remove(&id);
                    self.shared.conns_closed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        self.finish()
    }

    /// Accepts until `WouldBlock`. The `serve_net.accept` fault site models a
    /// front end whose accept path fails: the socket is dropped on the floor
    /// (the client sees a reset — exactly what a crashed accept thread looks
    /// like from outside).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if fault_trip("serve_net.accept") {
                        drop(stream);
                        continue;
                    }
                    match Conn::new(stream, self.now_ns(), self.cfg.sndbuf) {
                        Ok(conn) => {
                            let id = self.next_conn_id;
                            self.next_conn_id += 1;
                            self.conns.insert(id, conn);
                            self.shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
                            CONNS_ACCEPTED.incr();
                        }
                        Err(_) => continue, // peer vanished between accept and setup
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry next tick
            }
        }
    }

    /// Decodes as many frames as the connection's window allows, admitting
    /// queries into the async tier. Stops (leaving the rest buffered) the
    /// moment the window fills — that, plus the dropped POLLIN interest, is
    /// the whole backpressure mechanism.
    fn decode_and_admit(&mut self, conn_id: u32, draining: bool) {
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else { return };
            if conn.in_flight >= self.cfg.conn_window {
                return;
            }
            let frame = match conn.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => return,
                Err(_e) => {
                    self.shared.codec_errors.fetch_add(1, Ordering::Relaxed);
                    CODEC_ERRORS.incr();
                    return; // conn already marked dead by next_frame
                }
            };
            let Frame::Query { request_id, user, deadline_us, idempotent: _ } = frame else {
                // Only clients send frames to a server; a TopK/Reject here is
                // a protocol violation — same handling as corrupt framing.
                conn.dead = true;
                self.shared.codec_errors.fetch_add(1, Ordering::Relaxed);
                CODEC_ERRORS.incr();
                return;
            };
            self.shared.offered.fetch_add(1, Ordering::Relaxed);
            OFFERED.incr();

            if draining {
                conn.queue(&Frame::Reject {
                    request_id,
                    reason: RejectReason::Draining,
                    detail: 0,
                });
                self.shared.drained.fetch_add(1, Ordering::Relaxed);
                DRAINED.incr();
                continue;
            }

            let server = self.server.as_ref().expect("server live until finish()");
            match server.submit(user as usize) {
                Ok(ticket) => {
                    let token = self.next_token;
                    self.next_token += 1;
                    conn.in_flight += 1;
                    self.pending.insert(
                        token,
                        PendingReq {
                            conn_id,
                            request_id,
                            deadline_us,
                            admitted_at: Instant::now(),
                        },
                    );
                    self.pump.as_ref().expect("pump live").push(token, ticket);
                }
                Err(ServeAsyncError::Overloaded { queue_cap }) => {
                    conn.queue(&Frame::Reject {
                        request_id,
                        reason: RejectReason::ResourceExhausted,
                        detail: queue_cap as u64,
                    });
                    self.shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
                    REJECTED.incr();
                }
                Err(ServeAsyncError::UnknownUser { n_users, .. }) => {
                    conn.queue(&Frame::Reject {
                        request_id,
                        reason: RejectReason::UnknownUser,
                        detail: n_users as u64,
                    });
                    self.shared.rejected_unknown_user.fetch_add(1, Ordering::Relaxed);
                    REJECTED.incr();
                }
                Err(ServeAsyncError::ShuttingDown) => {
                    conn.queue(&Frame::Reject {
                        request_id,
                        reason: RejectReason::Draining,
                        detail: 0,
                    });
                    self.shared.drained.fetch_add(1, Ordering::Relaxed);
                    DRAINED.incr();
                }
            }
        }
    }

    /// Classifies every available completion into its bucket and queues the
    /// response frame.
    fn pump_completions(&mut self) {
        while let Ok(completion) = self.completions.try_recv() {
            self.classify(completion);
        }
    }

    fn classify(&mut self, completion: Completion) {
        let Some(req) = self.pending.remove(&completion.token) else {
            debug_assert!(false, "completion for unknown token {}", completion.token);
            return;
        };
        let frame = match completion.result {
            Ok(items) => {
                let elapsed_us = req.admitted_at.elapsed().as_micros() as u64;
                if req.deadline_us != 0 && elapsed_us > req.deadline_us as u64 {
                    // The answer exists but the client's budget is spent:
                    // shed it as a typed deadline miss rather than delivering
                    // a late response the client already gave up on.
                    self.shared.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    REJECTED.incr();
                    Frame::Reject {
                        request_id: req.request_id,
                        reason: RejectReason::DeadlineExceeded,
                        detail: elapsed_us,
                    }
                } else {
                    self.shared.completed.fetch_add(1, Ordering::Relaxed);
                    COMPLETED.incr();
                    Frame::TopK { request_id: req.request_id, items: items.to_vec() }
                }
            }
            Err(err) => {
                // Admitted but terminated without an answer (shutdown race or
                // a dispatch fault under injection): the drained bucket, so
                // the identity holds under chaos too. detail=1 distinguishes
                // a dispatch failure from a drain refusal on the wire.
                self.shared.drained.fetch_add(1, Ordering::Relaxed);
                DRAINED.incr();
                let detail = u64::from(err == TicketError::DispatchFailed);
                Frame::Reject { request_id: req.request_id, reason: RejectReason::Draining, detail }
            }
        };
        match self.conns.get_mut(&req.conn_id) {
            Some(conn) if !conn.dead => {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                conn.queue(&frame);
            }
            _ => {
                self.shared.undelivered.fetch_add(1, Ordering::Relaxed);
                UNDELIVERED.incr();
            }
        }
    }

    /// The drain epilogue: shut the async tier down (its `Shutdown` flush
    /// serves everything still queued), join the pump so every ticket's
    /// completion has been emitted, classify the stragglers, push one final
    /// best-effort flush, and return the exact accounting.
    fn finish(mut self) -> NetStats {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        drop(self.pump.take()); // joins after draining every pushed ticket
        while let Ok(completion) = self.completions.try_recv() {
            self.classify(completion);
        }
        debug_assert!(self.pending.is_empty(), "every ticket must resolve");
        // Whatever the timed-out drain left unresolved has now been
        // classified; flush response bytes that still fit in kernel buffers
        // so well-behaved clients see typed rejects, not cut streams.
        let now_ns = self.now_ns();
        for (_, conn) in self.conns.iter_mut() {
            if !conn.dead {
                let _ = conn.flush(now_ns);
            }
        }
        // Lingering close. A client that was still offering when the drain
        // fired has unread bytes in our receive queue — a plain `close()`
        // there makes the kernel send RST, which DESTROYS the response bytes
        // just flushed before the peer can read them. Instead: FIN our write
        // side, then read-and-discard until the peer closes (or a short
        // deadline passes — a peer that never closes gets the RST it earned).
        let deadline = Instant::now() + Duration::from_millis(self.cfg.drain_ms.min(250));
        let mut lingering: Vec<Conn> = self
            .conns
            .drain()
            .filter_map(|(_, conn)| {
                (!conn.dead && conn.stream().shutdown(std::net::Shutdown::Write).is_ok())
                    .then_some(conn)
            })
            .collect();
        while !lingering.is_empty() && Instant::now() < deadline {
            let mut fds: Vec<PollFd> = lingering
                .iter()
                .map(|c| PollFd::new(c.stream().as_raw_fd(), events::POLLIN))
                .collect();
            if poll::poll_fds(&mut fds, 20).is_err() {
                break;
            }
            let mut keep = Vec::with_capacity(lingering.len());
            for (conn, fd) in lingering.into_iter().zip(&fds) {
                let mut done = false;
                if fd.has(events::POLLIN | events::POLLHUP | events::POLLERR) {
                    let mut sink = [0u8; 16 * 1024];
                    loop {
                        match (&mut conn.stream()).read(&mut sink) {
                            Ok(0) => {
                                done = true; // peer acknowledged the FIN
                                break;
                            }
                            Ok(_) => {}
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                done = true;
                                break;
                            }
                        }
                    }
                }
                if !done {
                    keep.push(conn);
                }
            }
            lingering = keep;
        }
        self.shared.stats()
    }
}
