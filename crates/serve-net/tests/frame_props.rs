//! Property suite for the wire codec: arbitrary frames round-trip through
//! arbitrary chunkings, and **no byte stream — truncated, flipped or random
//! — can ever panic the decoder**. The torn-frame half of the chaos story
//! lives here, where every byte position gets its turn.
//!
//! The vendored proptest has no `any`/`prop_oneof`; like the snapshot
//! property suite, one strategy-drawn seed expands into arbitrary frames
//! through splitmix64.

use msopds_serve_net::{Frame, FrameDecoder, RejectReason, ScoredItem, MAX_PAYLOAD};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Expands a seed into one arbitrary frame — all three kinds, adversarial
/// score bit patterns (NaNs, infinities, ±0) included.
fn arb_frame(state: &mut u64) -> Frame {
    match splitmix(state) % 3 {
        0 => Frame::Query {
            request_id: splitmix(state),
            user: splitmix(state),
            deadline_us: splitmix(state) as u32,
            idempotent: splitmix(state) & 1 == 0,
        },
        1 => {
            let count = (splitmix(state) % 48) as usize;
            Frame::TopK {
                request_id: splitmix(state),
                items: (0..count)
                    .map(|_| ScoredItem {
                        item: splitmix(state) as u32,
                        // Raw bits: every float, including NaN payloads.
                        score: f64::from_bits(splitmix(state)),
                    })
                    .collect(),
            }
        }
        _ => Frame::Reject {
            request_id: splitmix(state),
            reason: match splitmix(state) % 4 {
                0 => RejectReason::ResourceExhausted,
                1 => RejectReason::UnknownUser,
                2 => RejectReason::Draining,
                _ => RejectReason::DeadlineExceeded,
            },
            detail: splitmix(state),
        },
    }
}

/// Frames compare equal through NaN scores by comparing the re-encoding —
/// `f64::NAN != f64::NAN` would fail a direct `==` even on a perfect
/// round-trip, and bit-equality of the encoding is the actual contract.
fn assert_same(a: &Frame, b: &Frame) {
    assert_eq!(a.to_bytes(), b.to_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any frame sequence, any chunking: everything decodes back, in order.
    #[test]
    fn round_trip_survives_arbitrary_chunking(
        seed in 0u64..u64::MAX,
        n_frames in 1usize..8,
        chunk in 1usize..64,
    ) {
        let mut state = seed;
        let frames: Vec<Frame> = (0..n_frames).map(|_| arb_frame(&mut state)).collect();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.extend(piece);
            while let Some(f) = dec.next().expect("valid stream") {
                got.push(f);
            }
        }
        prop_assert_eq!(got.len(), frames.len());
        for (a, b) in frames.iter().zip(&got) {
            assert_same(a, b);
        }
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Truncation at EVERY byte offset is `Ok(None)` — never a panic, never
    /// a phantom frame.
    #[test]
    fn truncation_at_every_byte_never_panics(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let wire = arb_frame(&mut state).to_bytes();
        for cut in 0..wire.len() {
            let mut dec = FrameDecoder::new();
            dec.extend(&wire[..cut]);
            // Short header or short payload: the only legal answer is
            // "wait" — a well-formed prefix can't be misread as complete.
            prop_assert_eq!(dec.next().ok(), Some(None), "cut at byte {}", cut);
        }
    }

    /// Every single-bit corruption of a frame either still decodes (the flip
    /// landed in a value field) or errors typed — the decoder never panics
    /// and never over-reads. All bit positions of all bytes, exhaustively.
    #[test]
    fn flipped_bit_never_panics(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let wire = arb_frame(&mut state).to_bytes();
        for i in 0..wire.len() {
            for bit in 0..8 {
                let mut bent = wire.clone();
                bent[i] ^= 1 << bit;
                let mut dec = FrameDecoder::new();
                dec.extend(&bent);
                // Either outcome is legal; what matters is that it returns.
                let _ = dec.next();
            }
        }
    }

    /// Pure noise streams never panic the decoder.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..u64::MAX, len in 0usize..512) {
        let mut state = seed;
        let noise: Vec<u8> = (0..len).map(|_| splitmix(&mut state) as u8).collect();
        let mut dec = FrameDecoder::new();
        dec.extend(&noise);
        while let Ok(Some(_)) = dec.next() {}
    }
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocation() {
    let mut dec = FrameDecoder::new();
    dec.extend(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
    dec.extend(&[1, 1]);
    assert!(dec.next().is_err(), "a hostile length prefix must be a typed error");
}
