//! Socket-level fault-injection drills (`--features fault-injection`).
//!
//! Each drill arms a deterministic `faultline` plan against one of the
//! transport's fault sites and asserts the degradation is *typed and
//! recoverable*: short reads/writes never corrupt a frame, severed paths
//! surface as client-visible disconnect errors (not hangs), an injected
//! dispatch panic becomes a wire-level typed reject, and disarming the plan
//! restores full service on the same rig.
//!
//! The plan is process-global, so every drill serializes on [`SERIAL`].
#![cfg(feature = "fault-injection")]

mod common;

use std::sync::Mutex;
use std::time::{Duration, Instant};

use common::start_rig;
use msopds_faultline::{set_plan, FaultPlan};
use msopds_serve_net::{NetClient, NetClientError, NetServeConfig, RejectReason, RetryPolicy};

static SERIAL: Mutex<()> = Mutex::new(());

fn arm(plan: &str) {
    set_plan(Some(FaultPlan::parse(plan).expect("valid drill plan")));
}

/// One-byte reads and one-byte writes on every syscall: the slowest possible
/// transport, but the frames that come out are bit-identical to the healthy
/// path — fragmentation can reorder *syscalls*, never bytes.
#[test]
fn short_reads_and_writes_never_corrupt_a_frame() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (net, _pause) = start_rig(64, NetServeConfig::default());
    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();

    let healthy = client.query(9, 0, true).expect("healthy baseline");

    arm("seed=1;serve_net.read=trip@1;serve_net.write=trip@1");
    let degraded = client.query(9, 0, true).expect("short I/O still serves");
    set_plan(None);

    assert_eq!(healthy.len(), degraded.len());
    for (a, b) in healthy.iter().zip(&degraded) {
        assert_eq!(a.item, b.item);
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "byte-at-a-time I/O must be lossless");
    }

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.completed, 2);
}

/// A panic injected into the dispatcher's engine call crosses the wire as a
/// typed `Draining(detail=1)` reject — the accounting stays balanced, the
/// connection survives, and the next (fault-free) query on the *same*
/// connection is served: the panic was contained to its batch.
#[test]
fn injected_dispatch_panic_is_a_typed_wire_reject() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (net, _pause) = start_rig(64, NetServeConfig::default());
    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();

    arm("seed=2;serve_async.engine.call=panic@1");
    match client.query(5, 0, true) {
        Err(NetClientError::Rejected { reason, detail }) => {
            assert_eq!(reason, RejectReason::Draining);
            assert_eq!(detail, 1, "detail=1 marks a dispatch failure, not a drain refusal");
        }
        other => panic!("expected a typed dispatch-failure reject, got {other:?}"),
    }
    set_plan(None);

    assert!(!client.query(5, 0, true).expect("dispatcher survived the panic").is_empty());

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.drained, 1, "the felled query lands in the drained bucket");
    assert_eq!(stats.completed, 1);
}

/// Severed paths — accept refusal and forced mid-stream disconnects — bound
/// the client's retry loop with a typed error instead of hanging it, and the
/// same rig serves again the moment the fault clears.
#[test]
fn severed_paths_exhaust_retries_typed_then_recover() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (net, _pause) = start_rig(64, NetServeConfig::default());
    let policy = RetryPolicy { max_retries: 2, base_backoff_ms: 1, max_backoff_ms: 4, seed: 3 };

    for plan in ["seed=4;serve_net.accept=trip@1", "seed=5;serve_net.conn=trip@1"] {
        arm(plan);
        let mut client = NetClient::connect(net.local_addr(), policy).unwrap();
        match client.query(7, 0, true) {
            Err(NetClientError::RetriesExhausted { attempts }) => {
                assert_eq!(attempts, 3, "initial try + max_retries, then a typed surrender")
            }
            Err(NetClientError::Disconnected | NetClientError::Io(_)) => {}
            other => panic!("plan `{plan}`: expected a typed failure, got {other:?}"),
        }
        set_plan(None);
        // Fresh connection, no faults: the rig itself was never damaged.
        let mut client = NetClient::connect(net.local_addr(), policy).unwrap();
        assert!(!client.query(7, 0, true).expect("recovers once disarmed").is_empty());
    }

    let stats = net.drain();
    assert!(stats.balanced(), "books balance through severed paths: {stats:?}");
}

/// The `serve_net.write.delay` site stalls the flush in place: end-to-end
/// latency absorbs the injected delay, but the answer is still intact.
#[test]
fn injected_write_delay_slows_but_never_breaks_delivery() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (net, _pause) = start_rig(64, NetServeConfig::default());
    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();

    arm("seed=6;serve_net.write.delay=delay:60@1");
    let t0 = Instant::now();
    let items = client.query(3, 0, true).expect("delayed but served");
    let elapsed = t0.elapsed();
    set_plan(None);

    assert!(!items.is_empty());
    assert!(elapsed >= Duration::from_millis(60), "delay must be visible end-to-end: {elapsed:?}");

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.completed, 1);
}

/// The drills above arm plans programmatically; production drills arrive via
/// `MSOPDS_FAULT_PLAN`. Same grammar, same machinery.
#[test]
fn env_plan_arms_the_same_machinery() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("MSOPDS_FAULT_PLAN", "seed=8;serve_net.read=trip@1");
    msopds_faultline::arm_from_env();
    std::env::remove_var("MSOPDS_FAULT_PLAN");
    assert!(msopds_faultline::armed(), "env plan must arm");

    let (net, _pause) = start_rig(64, NetServeConfig::default());
    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();
    let items = client.query(11, 0, true).expect("short reads still serve");
    assert!(!items.is_empty());
    set_plan(None);

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
}
