//! Shared fixtures for the serve-net integration suites: a deterministic
//! LCG serving model (same family as the serve-async suites) and a helper
//! that stands up a full TCP stack — `NetServer` over `AsyncServer` — on an
//! ephemeral loopback port.

use std::time::Duration;

use msopds_autograd::Tensor;
use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotHeader};
use msopds_recsys::Backend;
use msopds_serve_async::{
    AsyncServeConfig, AsyncServer, BatcherConfig, PauseHandle, ServeConfig, ServingModel,
};
use msopds_serve_net::{NetServeConfig, NetServer};

/// A deterministic in-memory snapshot (LCG weights, fixed fingerprints).
pub fn lcg_snapshot(n_users: usize, n_items: usize, d: usize, scale: f64) -> Snapshot {
    let mut state = 0x2545F4914F6CDD1Du64 ^ scale.to_bits();
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        scale * (((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5)
    };
    let fill =
        |n: usize, next: &mut dyn FnMut() -> f64| -> Vec<f64> { (0..n).map(|_| next()).collect() };
    Snapshot {
        header: SnapshotHeader {
            kind: ModelKind::Mf,
            backend: Backend::Dense,
            seed: 17,
            social_fingerprint: 0xFEED,
            item_fingerprint: 0xF00D,
            n_users: n_users as u64,
            n_items: n_items as u64,
            mu: 3.4,
        },
        config_json: String::from("{}"),
        tensors: vec![
            (String::from("p"), Tensor::from_vec(fill(n_users * d, &mut next), &[n_users, d])),
            (String::from("q"), Tensor::from_vec(fill(n_items * d, &mut next), &[n_items, d])),
            (String::from("b_u"), Tensor::from_vec(fill(n_users, &mut next), &[n_users, 1])),
            (String::from("b_i"), Tensor::from_vec(fill(n_items, &mut next), &[n_items, 1])),
        ],
    }
}

/// [`lcg_snapshot`] loaded into a serving model.
pub fn lcg_model(n_users: usize, n_items: usize, d: usize) -> ServingModel {
    ServingModel::from_snapshot(&lcg_snapshot(n_users, n_items, d, 1.0))
        .expect("valid fixture snapshot")
}

/// The standard small rig: 64 users × 48 items, short batching deadline.
/// Precision follows `MSOPDS_PRECISION` so CI can run the whole suite on
/// both scoring paths.
pub fn rig_async_config(queue_cap: usize) -> AsyncServeConfig {
    AsyncServeConfig {
        batcher: BatcherConfig { deadline: Duration::from_micros(100), max_batch: 64, queue_cap },
        serve: ServeConfig {
            precision: msopds_serve_async::ScorePrecision::from_env(),
            ..ServeConfig::default()
        },
    }
}

/// Stands up `NetServer` over a fresh `AsyncServer` on an ephemeral loopback
/// port; returns the front end plus the dispatcher's pause handle.
pub fn start_rig(queue_cap: usize, net: NetServeConfig) -> (NetServer, PauseHandle) {
    let server = AsyncServer::start(lcg_model(64, 48, 8), rig_async_config(queue_cap));
    let pause = server.pause_handle();
    let net = NetServer::start("127.0.0.1:0", server, net).expect("bind loopback");
    (net, pause)
}
