//! The socket-level chaos suite: clients die mid-batch, overload sheds at
//! the exact cap, deadlines expire server-side, and the server drains under
//! live load — and through all of it the accounting identity
//! `offered == completed + rejected + drained` holds **exactly**, the
//! server never panics, and well-behaved clients never see a torn frame.
//!
//! Tests that pause the shared dispatcher or arm process-global state
//! serialize implicitly by using their own server instances — every test
//! stands up its own rig on an ephemeral port.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{lcg_model, rig_async_config, start_rig};
use msopds_serve_async::AsyncServer;
use msopds_serve_net::{
    Frame, FrameDecoder, NetClient, NetServeConfig, RejectReason, RetryPolicy, ScoredItem,
};

/// Reads frames off a raw socket until `n` responses arrived (5 s cap).
fn read_responses(stream: &mut TcpStream, dec: &mut FrameDecoder, n: usize) -> Vec<Frame> {
    let mut out = Vec::with_capacity(n);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 16 * 1024];
    while out.len() < n {
        while let Some(f) = dec.next().expect("well-formed server stream") {
            out.push(f);
        }
        if out.len() >= n {
            break;
        }
        assert!(Instant::now() < deadline, "timed out at {}/{} responses", out.len(), n);
        let got = stream.read(&mut buf).expect("server stream open");
        assert!(got > 0, "server closed early at {}/{} responses", out.len(), n);
        dec.extend(&buf[..got]);
    }
    out
}

/// Baseline fidelity: answers over TCP are bit-identical to the in-process
/// engine's answers for the same users.
#[test]
fn wire_answers_match_in_process_answers() {
    let (net, _pause) = start_rig(256, NetServeConfig::default());
    let reference = AsyncServer::start(lcg_model(64, 48, 8), rig_async_config(256));

    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();
    for user in [0u64, 7, 31, 63] {
        let over_wire = client.query(user, 0, true).expect("served");
        let direct: Vec<ScoredItem> =
            reference.submit(user as usize).unwrap().wait().expect("served").to_vec();
        assert_eq!(over_wire.len(), direct.len());
        for (a, b) in over_wire.iter().zip(&direct) {
            assert_eq!(a.item, b.item, "user {user}");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "user {user}: scores bit-differ");
        }
    }
    reference.shutdown();
    let stats = net.drain();
    assert!(stats.balanced(), "identity must balance: {stats:?}");
    assert_eq!(stats.offered, 4);
    assert_eq!(stats.completed, 4);
}

/// An out-of-universe user id comes back as a typed reject carrying the
/// universe size, and the connection keeps working afterwards.
#[test]
fn unknown_user_is_a_typed_reject_not_a_dead_connection() {
    let (net, _pause) = start_rig(256, NetServeConfig::default());
    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();

    match client.query(10_000, 0, true) {
        Err(msopds_serve_net::NetClientError::Rejected { reason, detail }) => {
            assert_eq!(reason, RejectReason::UnknownUser);
            assert_eq!(detail, 64, "detail carries n_users");
        }
        other => panic!("expected typed UnknownUser reject, got {other:?}"),
    }
    // Same connection still serves.
    assert!(!client.query(3, 0, true).unwrap().is_empty());

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.rejected_unknown_user, 1);
    assert_eq!(stats.completed, 1);
}

/// With the dispatcher held, admission sheds at EXACTLY the queue cap: of
/// `cap + extra` pipelined queries, `cap` are admitted and `extra` come back
/// `ResourceExhausted` with the cap as detail. Resume, and the admitted ones
/// all complete. Counts are exact, not approximate.
#[test]
fn overload_sheds_exactly_at_the_admission_cap() {
    const CAP: usize = 8;
    const EXTRA: usize = 24;
    let (net, pause) = start_rig(CAP, NetServeConfig { conn_window: 64, ..Default::default() });
    pause.pause();

    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    for i in 0..(CAP + EXTRA) as u64 {
        Frame::Query { request_id: i, user: i % 64, deadline_us: 0, idempotent: true }
            .encode(&mut wire);
    }
    stream.write_all(&wire).unwrap();

    // The paused dispatcher guarantees the first CAP queries sit in the
    // queue; the rest shed immediately and their rejects arrive first.
    let mut dec = FrameDecoder::new();
    let rejects = read_responses(&mut stream, &mut dec, EXTRA);
    for f in &rejects {
        match f {
            Frame::Reject { reason, detail, .. } => {
                assert_eq!(*reason, RejectReason::ResourceExhausted);
                assert_eq!(*detail, CAP as u64, "detail carries the configured cap");
            }
            other => panic!("expected only rejects while paused, got {other:?}"),
        }
    }

    pause.resume();
    let served = read_responses(&mut stream, &mut dec, CAP);
    assert!(served.iter().all(|f| matches!(f, Frame::TopK { .. })));

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.offered, (CAP + EXTRA) as u64);
    assert_eq!(stats.rejected_overload, EXTRA as u64, "exact shed count at the cap");
    assert_eq!(stats.completed, CAP as u64);
    assert_eq!(stats.drained, 0);
}

/// A query whose propagated deadline expires while the dispatcher is held
/// comes back `DeadlineExceeded` (with the elapsed µs), counted separately
/// from admission sheds.
#[test]
fn expired_deadline_is_shed_server_side() {
    let (net, pause) = start_rig(64, NetServeConfig::default());
    pause.pause();

    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    let q = Frame::Query { request_id: 1, user: 5, deadline_us: 1_000, idempotent: true };
    stream.write_all(&q.to_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // budget: 1 ms — long gone
    pause.resume();

    let mut dec = FrameDecoder::new();
    let resp = read_responses(&mut stream, &mut dec, 1);
    match &resp[0] {
        Frame::Reject { reason, detail, .. } => {
            assert_eq!(*reason, RejectReason::DeadlineExceeded);
            assert!(*detail >= 1_000, "detail is the elapsed µs ({detail})");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 0);
}

/// Kill a client abruptly with a full in-flight window. The server must not
/// panic, must reap the connection, and must still balance its books — the
/// dead client's answers are counted `completed` + `undelivered`.
#[test]
fn killed_client_mid_batch_leaves_exact_accounting() {
    const IN_FLIGHT: usize = 16;
    let (net, pause) = start_rig(256, NetServeConfig { conn_window: 64, ..Default::default() });
    pause.pause(); // hold dispatch so the kill lands with everything in flight

    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    let mut wire = Vec::new();
    for i in 0..IN_FLIGHT as u64 {
        Frame::Query { request_id: i, user: i % 64, deadline_us: 0, idempotent: true }
            .encode(&mut wire);
    }
    // End the stream with a TORN frame: half a query, then a hard close.
    let torn =
        Frame::Query { request_id: 99, user: 1, deadline_us: 0, idempotent: true }.to_bytes();
    wire.extend_from_slice(&torn[..torn.len() / 2]);
    stream.write_all(&wire).unwrap();

    // Wait until the server has decoded all 16 queries before killing —
    // a RST discards unread kernel buffers, and the kill must land on the
    // in-flight window, not on bytes the server never saw.
    let deadline = Instant::now() + Duration::from_secs(5);
    while net.stats().offered < IN_FLIGHT as u64 {
        assert!(Instant::now() < deadline, "queries never decoded: {:?}", net.stats());
        std::thread::sleep(Duration::from_millis(5));
    }
    // SO_LINGER(0) makes the close a hard RST — the "kill -9" of sockets.
    set_linger_zero(&stream);
    drop(stream);

    // Give the poll loop a beat to observe the disconnect, then release the
    // dispatcher so the in-flight batch completes against a dead peer.
    std::thread::sleep(Duration::from_millis(50));
    pause.resume();

    // A healthy second client is completely unaffected.
    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();
    assert!(!client.query(2, 0, true).unwrap().is_empty());
    drop(client);

    let deadline = Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let s = net.stats();
        if s.offered == IN_FLIGHT as u64 + 1 && s.completed + s.rejected + s.drained == s.offered {
            break net.drain();
        }
        assert!(Instant::now() < deadline, "accounting never settled: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.offered, IN_FLIGHT as u64 + 1, "torn trailing frame is never a query");
    assert_eq!(stats.completed, IN_FLIGHT as u64 + 1);
    assert_eq!(stats.undelivered, IN_FLIGHT as u64, "dead client's answers counted as undelivered");
    assert_eq!(stats.torn_disconnects, 1, "the mid-frame kill was seen as torn");
}

/// Drain under live load, with exact accounting. The dispatcher is held the
/// whole time, so the books are fully determined: exactly `queue_cap`
/// queries are admitted (and served by the shutdown flush at the end of the
/// drain), everything else the client offers is either an overload shed
/// (before the drain flag) or a `Draining` reject (after) — and the client
/// reads every one of its admitted answers as intact frames before EOF.
#[test]
fn drain_under_load_accounts_for_every_query() {
    const CAP: usize = 8;
    let (net, pause) =
        start_rig(CAP, NetServeConfig { conn_window: 64, drain_ms: 300, ..Default::default() });
    pause.pause(); // held through the whole test: the shutdown flush serves
    let addr = net.local_addr();

    let driver = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.set_nonblocking(true).unwrap();
        let mut dec = FrameDecoder::new();
        let mut out: Vec<u8> = Vec::new();
        let mut sent = 0u64;
        let mut topk = 0u64;
        let mut draining = 0u64;
        let mut overload = 0u64;
        let mut buf = [0u8; 16 * 1024];
        let mut closed = false;
        let mut send_open = true;
        let start = Instant::now();
        // Offer continuously until the post-drain close; 5 s safety cap.
        // A write error only stops SENDING — the final flushed answers are
        // still sitting in the receive buffer and must all be read to EOF.
        while !closed && start.elapsed() < Duration::from_secs(5) {
            let resolved = topk + draining + overload;
            if send_open && out.is_empty() && sent - resolved < 32 {
                Frame::Query {
                    request_id: sent,
                    user: sent % 64,
                    deadline_us: 0,
                    idempotent: true,
                }
                .encode(&mut out);
                sent += 1;
            }
            if send_open && !out.is_empty() {
                match stream.write(&out) {
                    Ok(n) => {
                        out.drain(..n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        // Server closed its read side post-drain; drain the
                        // responses that are already on the way.
                        send_open = false;
                        out.clear();
                    }
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => closed = true,
                Ok(n) => dec.extend(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(_) => closed = true,
            }
            // A torn or corrupt server stream would error (and fail) here.
            while let Some(f) = dec.next().expect("server never tears a frame") {
                match f {
                    Frame::TopK { .. } => topk += 1,
                    Frame::Reject { reason: RejectReason::Draining, .. } => draining += 1,
                    Frame::Reject { reason: RejectReason::ResourceExhausted, .. } => overload += 1,
                    other => panic!("unexpected frame under drain: {other:?}"),
                }
            }
        }
        (sent, topk, draining, overload)
    });

    // Let the client run against the held dispatcher (cap fills, overload
    // sheds flow), then drain under that live load.
    std::thread::sleep(Duration::from_millis(150));
    let stats = net.drain();
    let (sent, topk, draining, overload) = driver.join().expect("driver panicked");

    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(
        stats.completed, CAP as u64,
        "exactly the admitted queries are served (by the shutdown flush)"
    );
    assert_eq!(stats.rejected_overload, overload, "client and server agree on overload sheds");
    assert!(stats.drained > 0, "queries offered during the drain are refused typed");
    assert_eq!(stats.drained, draining, "client read every Draining reject before EOF");
    assert_eq!(topk, CAP as u64, "client read every admitted answer as an intact frame");
    assert_eq!(
        stats.offered,
        topk + draining + overload,
        "client resolved exactly what the server decoded (sent {sent})"
    );
    assert_eq!(stats.undelivered, 0, "nothing was cut off by the close");
}

/// Evicting a client that stops reading: fill its window with answers it
/// never drains, and the server must cut it loose within the write timeout
/// instead of buffering forever — books still exact.
#[test]
fn slow_client_is_evicted_not_buffered_forever() {
    // 4096 answers × ~136 bytes ≈ 560 KB. TCP autotuning would happily grow
    // the send buffer to absorb all of it (tcp_wmem goes to megabytes), so
    // the rig pins SO_SNDBUF at 16 KB — with the client's ~128 KB receive
    // buffer that bounds kernel absorption near 160 KB, the flush reliably
    // jams, and the backlog stays under the 1 MB read high-water so every
    // query still gets decoded.
    const BURST: usize = 4096;
    let (net, _pause) = start_rig(
        8192,
        NetServeConfig {
            conn_window: BURST,
            write_timeout_ms: 200,
            sndbuf: Some(16 * 1024),
            ..Default::default()
        },
    );

    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    let mut wire = Vec::new();
    for i in 0..BURST as u64 {
        Frame::Query { request_id: i, user: i % 64, deadline_us: 0, idempotent: true }
            .encode(&mut wire);
    }
    stream.write_all(&wire).unwrap();
    // ... and never read a byte: the server's flush stalls against the full
    // socket and the write timeout must cut the connection loose.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = net.stats();
        if s.conns_evicted == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "eviction never happened: {s:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(stream);

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.conns_evicted, 1);
    assert_eq!(stats.offered, BURST as u64);
    assert_eq!(stats.completed, BURST as u64, "the engine did all the work regardless");
}

/// The retrying client: a connection that dies mid-flight is retried with
/// backoff for idempotent queries (reconnect + resubmit, eventually served
/// by a real server), while a non-idempotent query surfaces `Disconnected`
/// without resubmitting.
#[test]
fn client_retries_idempotent_queries_only() {
    use std::net::TcpListener;

    // A saboteur front door: kills the first two connections on accept,
    // then proxies nothing — the third connect goes to the real server via
    // the retry loop reconnecting to the same address. Implemented by
    // binding the listener first, accepting + hard-closing twice, then
    // handing the listener's address traffic straight to a real NetServer…
    // which we can't re-bind on the same port. So instead: the saboteur
    // serves the third connection itself by proxying to the real rig.
    let (net, _pause) = start_rig(256, NetServeConfig::default());
    let real_addr = net.local_addr();

    let front = TcpListener::bind("127.0.0.1:0").unwrap();
    let front_addr = front.local_addr().unwrap();
    let saboteur = std::thread::spawn(move || {
        for attempt in 0..3 {
            let (stream, _) = front.accept().unwrap();
            if attempt < 2 {
                set_linger_zero(&stream);
                drop(stream); // RST in the client's face
                continue;
            }
            // Third attempt: transparent byte proxy to the real server.
            let upstream = TcpStream::connect(real_addr).unwrap();
            let (mut a, mut b) = (stream.try_clone().unwrap(), upstream.try_clone().unwrap());
            let up = std::thread::spawn(move || {
                let _ = std::io::copy(&mut a, &mut b);
                // Client side closed: shut the upstream down so the
                // server→client copy below unblocks instead of waiting for
                // the real server (which only closes at drain).
                let _ = b.shutdown(std::net::Shutdown::Both);
            });
            let (mut c, mut d) = (upstream, stream);
            let _ = std::io::copy(&mut c, &mut d);
            let _ = up.join();
            return;
        }
    });

    let policy = RetryPolicy { max_retries: 5, base_backoff_ms: 1, max_backoff_ms: 8, seed: 7 };
    let mut client = NetClient::connect(front_addr, policy).unwrap();
    // First query rides connection #1 (killed), retries onto #2 (killed),
    // then #3 (proxied) — and must come back correct.
    let items = client.query(9, 0, true).expect("idempotent query survives two RSTs");
    assert!(!items.is_empty());
    drop(client);
    saboteur.join().unwrap();

    // Non-idempotent: a dead connection is surfaced, not retried.
    let graveyard = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = graveyard.local_addr().unwrap();
    let killer = std::thread::spawn(move || {
        let (stream, _) = graveyard.accept().unwrap();
        set_linger_zero(&stream);
        drop(stream);
    });
    let mut client = NetClient::connect(dead_addr, policy).unwrap();
    killer.join().unwrap();
    match client.query(9, 0, false) {
        Err(msopds_serve_net::NetClientError::Disconnected) => {}
        other => panic!("non-idempotent mid-flight death must surface Disconnected: {other:?}"),
    }

    net.drain();
}

/// A client speaking garbage gets its connection closed (typed codec error
/// server-side), with zero panics and zero effect on other clients.
#[test]
fn corrupt_client_stream_closes_only_that_connection() {
    let (net, _pause) = start_rig(256, NetServeConfig::default());

    let mut vandal = TcpStream::connect(net.local_addr()).unwrap();
    // Valid length prefix, hostile version byte.
    let mut junk = 8u32.to_le_bytes().to_vec();
    junk.extend_from_slice(&[99, 1]);
    junk.extend_from_slice(&[0xAB; 8]);
    vandal.write_all(&junk).unwrap();
    let mut buf = [0u8; 64];
    let n = vandal.read(&mut buf).unwrap(); // 0 = clean close
    assert_eq!(n, 0, "corrupt stream must be closed, not answered");

    let mut client = NetClient::connect(net.local_addr(), RetryPolicy::default()).unwrap();
    assert!(!client.query(1, 0, true).unwrap().is_empty());

    let stats = net.drain();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.codec_errors, 1);
    assert_eq!(stats.completed, 1);
}

/// SO_LINGER(0) via raw setsockopt — the abrupt-kill switch. Declared here
/// (tests only) to keep the main crate's FFI surface at poll+signal.
fn set_linger_zero(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const Linger, len: u32) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger { l_onoff: 1, l_linger: 0 };
    // SAFETY: valid fd, valid struct pointer + length for the call duration.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            &linger,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
}
