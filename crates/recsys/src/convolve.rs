//! Graph → operator bridges for the convolution of eq. (15), plus the
//! structure cache behind the [`crate::graphops::GraphOps`] backend API.
//!
//! Representation builders (`dense_adjacency`, `sparse_adjacency`,
//! `inv_degree`) are crate-private: models go through `GraphOps`, which is
//! the only public way to obtain an adjacency operator. Derived structures
//! are memoized per thread on the graph's structural fingerprint, with a
//! process-wide generation counter so [`clear_graph_tensor_cache`] empties
//! *every* thread's cache — including pooled workers — not just the caller's.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use msopds_autograd::{SparseMatrix, SparseOperand, Tensor, Var};
use msopds_het_graph::CsrGraph;
use msopds_telemetry as telemetry;

use crate::graphops::AdjacencyOp;

/// Derived-graph-structure requests served from the thread-local LRU.
static LRU_HITS: telemetry::Counter = telemetry::Counter::new("recsys.adjacency_lru.hits");
/// Derived-graph-structure requests that rebuilt the structure.
static LRU_MISSES: telemetry::Counter = telemetry::Counter::new("recsys.adjacency_lru.misses");

/// What a cached derived structure represents; part of the cache key.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GraphTensorKind {
    Adjacency,
    InvDegree,
    SparseAdjacency,
    /// Row-range-sharded CSR adjacency; the shard count is part of the key,
    /// so differently-sharded views of one graph coexist in the cache.
    ShardedAdjacency { shards: u16 },
}

/// A cached derived structure: a dense tensor or a CSR operand pair.
#[derive(Clone)]
enum CachedValue {
    Dense(Tensor),
    Sparse(Arc<SparseOperand>),
}

/// One cached derived structure, keyed by (structural fingerprint, node
/// count, kind). The node count guards the (already negligible) fingerprint
/// collision case across differently-sized graphs.
struct CacheEntry {
    fingerprint: u64,
    n: usize,
    kind: GraphTensorKind,
    value: CachedValue,
}

const GRAPH_TENSOR_CACHE_CAP: usize = 8;

/// Process-wide cache generation. [`clear_graph_tensor_cache`] bumps it; each
/// thread-local cache records the generation it was filled at and lazily
/// empties itself when it falls behind — so a clear issued from any thread
/// reaches the pooled worker threads' caches on their next access, and long
/// sweeps cannot pin stale graph structures per worker.
static CACHE_GENERATION: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small per-thread LRU of derived graph structures, tagged with the
    /// [`CACHE_GENERATION`] it was last valid at.
    ///
    /// `build_pds` re-derives the same adjacency/inverse-degree constants on
    /// every outer MSO iteration (the graphs only change when X̂ candidates
    /// change the *candidate set*, not per iteration), and the victim's fit
    /// loop re-derives them per retrain. Tensors are `Arc`-backed, so a cache
    /// hit is a cheap clone; the cache holding a reference also means the
    /// tape's buffer reclamation (`Arc::try_unwrap`) never recycles a cached
    /// tensor's storage out from under the cache.
    static GRAPH_TENSOR_CACHE: RefCell<(u64, VecDeque<CacheEntry>)> =
        const { RefCell::new((0, VecDeque::new())) };
}

/// Looks up `(g, kind)` in the thread-local cache, computing and inserting on
/// miss. LRU order: hits move to the back, evictions pop the front.
fn cached_graph_structure(
    g: &CsrGraph,
    kind: GraphTensorKind,
    build: impl FnOnce() -> CachedValue,
) -> CachedValue {
    let fingerprint = g.fingerprint();
    let n = g.num_nodes();
    GRAPH_TENSOR_CACHE.with(|cache| {
        let mut guard = cache.borrow_mut();
        let (generation, cache) = &mut *guard;
        let current = CACHE_GENERATION.load(Ordering::Acquire);
        if *generation != current {
            cache.clear();
            *generation = current;
        }
        if let Some(pos) =
            cache.iter().position(|e| e.fingerprint == fingerprint && e.n == n && e.kind == kind)
        {
            LRU_HITS.incr();
            let entry = cache.remove(pos).expect("position came from iter");
            let value = entry.value.clone();
            cache.push_back(entry);
            return value;
        }
        LRU_MISSES.incr();
        let value = build();
        if cache.len() == GRAPH_TENSOR_CACHE_CAP {
            cache.pop_front();
        }
        cache.push_back(CacheEntry { fingerprint, n, kind, value: value.clone() });
        value
    })
}

/// Empties the graph-structure cache of **every** thread (test isolation /
/// releasing memory between experiments).
///
/// The calling thread's cache is dropped immediately; other threads —
/// including the kernel pool's workers — observe the generation bump and
/// drop theirs on their next cache access.
pub fn clear_graph_tensor_cache() {
    CACHE_GENERATION.fetch_add(1, Ordering::Release);
    GRAPH_TENSOR_CACHE.with(|cache| {
        let mut guard = cache.borrow_mut();
        guard.1.clear();
        guard.0 = CACHE_GENERATION.load(Ordering::Acquire);
    });
}

/// Dense symmetric 0/1 adjacency of `g` as a tensor.
///
/// Memoized per thread on the graph's structural fingerprint — planners call
/// this with the same base graph once per MSO iteration.
pub(crate) fn dense_adjacency(g: &CsrGraph) -> Tensor {
    match cached_graph_structure(g, GraphTensorKind::Adjacency, || {
        CachedValue::Dense(dense_adjacency_uncached(g))
    }) {
        CachedValue::Dense(t) => t,
        CachedValue::Sparse(_) => unreachable!("Adjacency entries are dense"),
    }
}

/// [`dense_adjacency`] without the cache.
pub(crate) fn dense_adjacency_uncached(g: &CsrGraph) -> Tensor {
    let n = g.num_nodes();
    let mut data = vec![0.0; n * n];
    for u in 0..n {
        for v in g.neighbors(u) {
            data[u * n + v] = 1.0;
        }
    }
    Tensor::from_vec(data, &[n, n])
}

/// The CSR adjacency of `g` paired with itself (symmetric), ready for the
/// `Spmm` tape op. Memoized per thread like [`dense_adjacency`], keyed on the
/// same structural fingerprint.
pub(crate) fn sparse_adjacency(g: &CsrGraph) -> Arc<SparseOperand> {
    match cached_graph_structure(g, GraphTensorKind::SparseAdjacency, || {
        CachedValue::Sparse(SparseOperand::symmetric(sparse_adjacency_uncached(g)))
    }) {
        CachedValue::Sparse(s) => s,
        CachedValue::Dense(_) => unreachable!("SparseAdjacency entries are sparse"),
    }
}

/// The CSR adjacency of `g` split into `shards` row-range bands, paired with
/// itself (symmetric): the million-user layout behind `Backend::Sharded`.
/// Bit-identical to [`sparse_adjacency`] under `Spmm` at any shard count;
/// cached per thread keyed on (fingerprint, n, shard count).
pub(crate) fn sparse_adjacency_sharded(g: &CsrGraph, shards: u16) -> Arc<SparseOperand> {
    match cached_graph_structure(g, GraphTensorKind::ShardedAdjacency { shards }, || {
        CachedValue::Sparse(SparseOperand::symmetric_sharded(
            sparse_adjacency_uncached(g),
            shards.max(1) as usize,
        ))
    }) {
        CachedValue::Sparse(s) => s,
        CachedValue::Dense(_) => unreachable!("ShardedAdjacency entries are sparse"),
    }
}

/// [`sparse_adjacency`] without the cache or the transpose pairing.
pub(crate) fn sparse_adjacency_uncached(g: &CsrGraph) -> SparseMatrix {
    let n = g.num_nodes();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0);
    let mut col_idx = Vec::with_capacity(2 * g.num_edges());
    for u in 0..n {
        for v in g.neighbors(u) {
            col_idx.push(v as u32);
        }
        row_ptr.push(col_idx.len());
    }
    let vals = vec![1.0; col_idx.len()];
    SparseMatrix::from_csr(n, n, row_ptr, col_idx, vals)
}

/// Per-node inverse degree `1/|N(u)|` (0 for isolated nodes) of `g`.
///
/// Used as the constant normalization of eq. (15); the degree is taken in the
/// *fully-poisoned* graph 𝒢′ (all candidate edges inserted), per Algorithm 1
/// step 2. Memoized per thread like [`dense_adjacency`].
pub(crate) fn inv_degree(g: &CsrGraph) -> Tensor {
    match cached_graph_structure(g, GraphTensorKind::InvDegree, || {
        CachedValue::Dense(inv_degree_uncached(g))
    }) {
        CachedValue::Dense(t) => t,
        CachedValue::Sparse(_) => unreachable!("InvDegree entries are dense"),
    }
}

/// [`inv_degree`] without the cache.
pub(crate) fn inv_degree_uncached(g: &CsrGraph) -> Tensor {
    let n = g.num_nodes();
    let data: Vec<f64> = (0..n)
        .map(|u| {
            let d = g.degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    Tensor::from_vec(data, &[n])
}

/// The candidate-edge contribution to a *dense* Â for one player: each
/// candidate edge `(a, b)` receives its X̂ entry symmetrically. Returns `None`
/// when the player has no edge candidates. Multiple players' patches are
/// summed onto the shared base adjacency by
/// [`crate::graphops::GraphOps::poisoned_adjacency`].
pub(crate) fn adjacency_patch<'t>(
    base: &CsrGraph,
    candidates: &[(usize, (usize, usize))],
    xhat: Var<'t>,
) -> Option<Var<'t>> {
    if candidates.is_empty() {
        return None;
    }
    let n = base.num_nodes();
    let mut gather_idx = Vec::with_capacity(candidates.len() * 2);
    let mut scatter_pos = Vec::with_capacity(candidates.len() * 2);
    for &(xi, (a, b)) in candidates {
        debug_assert!(a < n && b < n, "candidate edge ({a},{b}) out of range");
        debug_assert!(!base.has_edge(a, b), "candidate edge ({a},{b}) already real");
        gather_idx.push(xi);
        scatter_pos.push(a * n + b);
        gather_idx.push(xi);
        scatter_pos.push(b * n + a);
    }
    let weights = xhat.gather_elems(Arc::new(gather_idx));
    Some(weights.scatter_add_elems(Arc::new(scatter_pos), n * n).reshape(&[n, n]))
}

/// Mean-aggregation graph convolution of eq. (15):
/// `out = Wᵀ (H ⊕ Â·H / |N|)` row-wise, where `inv_deg` holds `1/|N(u)|` and
/// `adjacency` is any [`AdjacencyOp`] produced by the `GraphOps` backend API.
pub fn mean_convolve<'t>(
    h: Var<'t>,
    adjacency: &AdjacencyOp<'t>,
    inv_deg: Var<'t>,
    w: Var<'t>,
) -> Var<'t> {
    let d = h.value().cols();
    let agg = adjacency.matmul(h).mul(inv_deg.broadcast_cols(d));
    h.concat_cols(agg).matmul(w)
}

/// Attention-aggregation convolution used by the ConsisRec-style victim:
/// neighbor weights are a masked softmax of embedding similarity
/// ("consistency scores"), so more-consistent neighbors dominate. Inherently
/// dense — `mask` comes from [`crate::graphops::GraphOps::attention_mask`].
pub fn attention_convolve<'t>(h: Var<'t>, mask: Var<'t>, w: Var<'t>) -> Var<'t> {
    let n = h.value().rows();
    // Similarity logits, exponentiated with a detached row-max for stability,
    // then masked to the adjacency and row-normalized.
    let s = h.matmul(h.t());
    let sv = s.value();
    let mut maxes = vec![0.0f64; n];
    for (i, mx) in maxes.iter_mut().enumerate() {
        *mx = (0..n).map(|j| sv.at(i, j)).fold(f64::NEG_INFINITY, f64::max);
    }
    let max_c = s.tape().constant(Tensor::from_vec(maxes, &[n])).broadcast_cols(n);
    let e = s.sub(max_c).exp().mul(mask);
    let denom = e.sum_rows().add_scalar(1e-9);
    let att = e.div(denom.broadcast_cols(n));
    let agg = att.matmul(h);
    h.concat_cols(agg).matmul(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphops::{Backend, EdgePatch, GraphOps};
    use msopds_autograd::Tape;

    #[test]
    fn dense_adjacency_symmetric() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = dense_adjacency(&g);
        assert_eq!(a.at(0, 1), 1.0);
        assert_eq!(a.at(1, 0), 1.0);
        assert_eq!(a.at(0, 2), 0.0);
        assert_eq!(a.at(0, 0), 0.0);
    }

    #[test]
    fn sparse_adjacency_matches_dense() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 4)]);
        let sparse = sparse_adjacency_uncached(&g);
        assert_eq!(sparse.to_dense().to_vec(), dense_adjacency_uncached(&g).to_vec());
        assert_eq!(sparse.nnz(), 2 * g.num_edges());
    }

    #[test]
    fn inv_degree_handles_isolated() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let d = inv_degree(&g);
        assert_eq!(d.to_vec(), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn poisoned_adjacency_injects_candidates() {
        let tape = Tape::new();
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let xhat = tape.leaf(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        // Candidate 0 -> edge (0,2) selected; candidate 1 -> edge (1,2) unselected.
        let candidates = [(0, (0, 2)), (1, (1, 2))];
        let a = GraphOps::new(Backend::Dense).poisoned_adjacency(
            &tape,
            &g,
            &[EdgePatch { candidates: &candidates, xhat }],
        );
        // Probe Â through the operator API: Â·e_j reads column j.
        let id = tape
            .constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]));
        let av = a.matmul(id).value();
        assert_eq!(av.at(0, 1), 1.0); // real edge untouched
        assert_eq!(av.at(0, 2), 1.0); // selected candidate
        assert_eq!(av.at(2, 0), 1.0); // symmetric
        assert_eq!(av.at(1, 2), 0.0); // unselected candidate
    }

    #[test]
    fn poisoned_adjacency_gradient_reaches_xhat() {
        for backend in [Backend::Dense, Backend::Sparse] {
            let tape = Tape::new();
            let g = CsrGraph::from_edges(3, &[(0, 1)]);
            let xhat = tape.leaf(Tensor::from_vec(vec![1.0, 0.0], &[2]));
            let candidates = [(0, (0, 2)), (1, (1, 2))];
            let a = GraphOps::new(backend).poisoned_adjacency(
                &tape,
                &g,
                &[EdgePatch { candidates: &candidates, xhat }],
            );
            // Loss touching only entry (1,2): gradient must flow to x̂[1] even
            // though its value is 0 — the key PDS property (§IV-C).
            let h = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]));
            let loss = a.matmul(h).gather_rows(Arc::new(vec![1])).sum();
            let grad = tape.grad(loss, &[xhat]).remove(0);
            assert_eq!(grad.get(1), 3.0, "unselected candidate still receives gradient");
            assert_eq!(grad.get(0), 0.0, "edge (0,2) does not affect row 1");
        }
    }

    #[test]
    fn mean_convolve_shapes_and_values() {
        for backend in [Backend::Dense, Backend::Sparse] {
            let tape = Tape::new();
            let g = CsrGraph::from_edges(2, &[(0, 1)]);
            let ops = GraphOps::new(backend);
            let h = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
            let a = ops.adjacency(&tape, &g);
            let inv = ops.inv_degree(&tape, &g);
            let w = tape.leaf(Tensor::from_vec(vec![1.0, 1.0], &[2, 1])); // sums the concat
            let out = mean_convolve(h, &a, inv, w);
            // Row 0: h=1, agg = 2/1 = 2 → 3. Row 1: 2 + 1 = 3.
            assert_eq!(out.value().to_vec(), vec![3.0, 3.0]);
        }
    }

    #[test]
    fn graph_tensor_cache_hits_and_evicts() {
        clear_graph_tensor_cache();
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a1 = dense_adjacency(&g);
        let a2 = dense_adjacency(&g);
        // Hit: the same Arc-backed storage is handed back.
        assert!(std::ptr::eq(a1.data().as_ptr(), a2.data().as_ptr()));
        assert_eq!(a1.to_vec(), dense_adjacency_uncached(&g).to_vec());
        // A different kind for the same graph is a distinct entry.
        assert_eq!(inv_degree(&g).to_vec(), inv_degree_uncached(&g).to_vec());
        let s1 = sparse_adjacency(&g);
        let s2 = sparse_adjacency(&g);
        assert!(Arc::ptr_eq(&s1, &s2), "sparse operands are cached too");
        // Filling the cache with other graphs evicts the oldest entry.
        for k in 0..GRAPH_TENSOR_CACHE_CAP {
            let other = CsrGraph::from_edges(k + 4, &[(0, k + 3)]);
            let _ = dense_adjacency(&other);
        }
        let a3 = dense_adjacency(&g);
        assert!(
            !std::ptr::eq(a1.data().as_ptr(), a3.data().as_ptr()),
            "entry should have been evicted"
        );
        assert_eq!(a1.to_vec(), a3.to_vec());
        clear_graph_tensor_cache();
    }

    #[test]
    fn cache_clear_reaches_other_threads() {
        // The per-thread LRU honors clears issued by *other* threads via the
        // generation counter — the pooled-worker staleness fix.
        clear_graph_tensor_cache();
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a1 = dense_adjacency(&g);
        let a2 = dense_adjacency(&g);
        assert!(std::ptr::eq(a1.data().as_ptr(), a2.data().as_ptr()), "warm hit expected");
        std::thread::spawn(clear_graph_tensor_cache).join().unwrap();
        let a3 = dense_adjacency(&g);
        assert!(
            !std::ptr::eq(a1.data().as_ptr(), a3.data().as_ptr()),
            "a clear from another thread must invalidate this thread's cache"
        );
        clear_graph_tensor_cache();
    }

    #[test]
    fn attention_convolve_weights_sum_to_one() {
        let tape = Tape::new();
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let h = tape.leaf(Tensor::from_vec(vec![1.0, 0.5, -0.5, 0.3, 0.2, 0.9], &[3, 2]));
        let mask = GraphOps::default().attention_mask(&tape, &g);
        let w = tape.leaf(Tensor::from_vec(vec![1.0; 8], &[4, 2]));
        let out = attention_convolve(h, mask, w);
        assert_eq!(out.value().shape(), &[3, 2]);
        assert!(out.value().all_finite());
    }
}
