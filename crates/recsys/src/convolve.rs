//! Graph → tensor bridges for the convolution of eq. (15).
//!
//! Adjacency matrices are materialized densely (the experiment scale of this
//! reproduction keeps `n` in the hundreds; see DESIGN.md §2). The poisoned
//! adjacency Â of the PDS surrogate is the constant base adjacency plus the
//! binarized importance entries scattered into candidate-edge positions, all
//! recorded on the tape so gradients flow from the convolution back to X̂.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;

use msopds_autograd::{Tape, Tensor, Var};
use msopds_het_graph::CsrGraph;
use msopds_telemetry as telemetry;

/// Derived-graph-tensor requests served from the thread-local LRU.
static LRU_HITS: telemetry::Counter = telemetry::Counter::new("recsys.adjacency_lru.hits");
/// Derived-graph-tensor requests that rebuilt the tensor.
static LRU_MISSES: telemetry::Counter = telemetry::Counter::new("recsys.adjacency_lru.misses");

/// What a cached derived tensor represents; part of the cache key.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GraphTensorKind {
    Adjacency,
    InvDegree,
}

/// One cached derived tensor, keyed by (structural fingerprint, node count,
/// kind). The node count guards the (already negligible) fingerprint
/// collision case across differently-sized graphs.
struct CacheEntry {
    fingerprint: u64,
    n: usize,
    kind: GraphTensorKind,
    tensor: Tensor,
}

const GRAPH_TENSOR_CACHE_CAP: usize = 8;

thread_local! {
    /// Small per-thread LRU of derived graph tensors.
    ///
    /// `build_pds` re-derives the same adjacency/inverse-degree constants on
    /// every outer MSO iteration (the graphs only change when X̂ candidates
    /// change the *candidate set*, not per iteration), and the victim's fit
    /// loop re-derives them per retrain. Tensors are `Arc`-backed, so a cache
    /// hit is a cheap clone; the cache holding a reference also means the
    /// tape's buffer reclamation (`Arc::try_unwrap`) never recycles a cached
    /// tensor's storage out from under the cache.
    static GRAPH_TENSOR_CACHE: RefCell<VecDeque<CacheEntry>> =
        const { RefCell::new(VecDeque::new()) };
}

/// Looks up `(g, kind)` in the thread-local cache, computing and inserting on
/// miss. LRU order: hits move to the back, evictions pop the front.
fn cached_graph_tensor(
    g: &CsrGraph,
    kind: GraphTensorKind,
    build: impl FnOnce() -> Tensor,
) -> Tensor {
    let fingerprint = g.fingerprint();
    let n = g.num_nodes();
    GRAPH_TENSOR_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) =
            cache.iter().position(|e| e.fingerprint == fingerprint && e.n == n && e.kind == kind)
        {
            LRU_HITS.incr();
            let entry = cache.remove(pos).expect("position came from iter");
            let tensor = entry.tensor.clone();
            cache.push_back(entry);
            return tensor;
        }
        LRU_MISSES.incr();
        let tensor = build();
        if cache.len() == GRAPH_TENSOR_CACHE_CAP {
            cache.pop_front();
        }
        cache.push_back(CacheEntry { fingerprint, n, kind, tensor: tensor.clone() });
        tensor
    })
}

/// Empties the thread-local graph-tensor cache (test isolation / releasing
/// memory between experiments).
pub fn clear_graph_tensor_cache() {
    GRAPH_TENSOR_CACHE.with(|cache| cache.borrow_mut().clear());
}

/// Dense symmetric 0/1 adjacency of `g` as a tensor.
///
/// Memoized per thread on the graph's structural fingerprint — planners call
/// this with the same base graph once per MSO iteration.
pub fn dense_adjacency(g: &CsrGraph) -> Tensor {
    cached_graph_tensor(g, GraphTensorKind::Adjacency, || dense_adjacency_uncached(g))
}

/// [`dense_adjacency`] without the cache.
pub fn dense_adjacency_uncached(g: &CsrGraph) -> Tensor {
    let n = g.num_nodes();
    let mut data = vec![0.0; n * n];
    for u in 0..n {
        for v in g.neighbors(u) {
            data[u * n + v] = 1.0;
        }
    }
    Tensor::from_vec(data, &[n, n])
}

/// Per-node inverse degree `1/|N(u)|` (0 for isolated nodes) of `g`.
///
/// Used as the constant normalization of eq. (15); the degree is taken in the
/// *fully-poisoned* graph 𝒢′ (all candidate edges inserted), per Algorithm 1
/// step 2. Memoized per thread like [`dense_adjacency`].
pub fn inv_degree(g: &CsrGraph) -> Tensor {
    cached_graph_tensor(g, GraphTensorKind::InvDegree, || inv_degree_uncached(g))
}

/// [`inv_degree`] without the cache.
pub fn inv_degree_uncached(g: &CsrGraph) -> Tensor {
    let n = g.num_nodes();
    let data: Vec<f64> = (0..n)
        .map(|u| {
            let d = g.degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    Tensor::from_vec(data, &[n])
}

/// Builds the modulated adjacency Â of eq. (15) on the tape:
/// base (real) edges enter with weight 1 (the `1_C` selector default), and
/// each candidate edge `(a, b)` enters with its binarized importance value,
/// symmetric in both orientations. Candidate weights come from gathering
/// `positions` out of the player's X̂ leaf, so Â is differentiable in X̂.
///
/// `candidates` pairs each edge with the index of its entry in `xhat`.
pub fn poisoned_adjacency<'t>(
    tape: &'t Tape,
    base: &CsrGraph,
    candidates: &[(usize, (usize, usize))],
    xhat: Var<'t>,
) -> Var<'t> {
    let a0 = tape.constant(dense_adjacency(base));
    match adjacency_patch(base, candidates, xhat) {
        Some(patch) => a0.add(patch),
        None => a0,
    }
}

/// The candidate-edge contribution to Â for one player: each candidate edge
/// `(a, b)` receives its X̂ entry symmetrically. Returns `None` when the
/// player has no edge candidates. Multiple players' patches are summed onto
/// the shared base adjacency by the PDS builder.
pub fn adjacency_patch<'t>(
    base: &CsrGraph,
    candidates: &[(usize, (usize, usize))],
    xhat: Var<'t>,
) -> Option<Var<'t>> {
    if candidates.is_empty() {
        return None;
    }
    let n = base.num_nodes();
    let mut gather_idx = Vec::with_capacity(candidates.len() * 2);
    let mut scatter_pos = Vec::with_capacity(candidates.len() * 2);
    for &(xi, (a, b)) in candidates {
        debug_assert!(a < n && b < n, "candidate edge ({a},{b}) out of range");
        debug_assert!(!base.has_edge(a, b), "candidate edge ({a},{b}) already real");
        gather_idx.push(xi);
        scatter_pos.push(a * n + b);
        gather_idx.push(xi);
        scatter_pos.push(b * n + a);
    }
    let weights = xhat.gather_elems(Arc::new(gather_idx));
    Some(weights.scatter_add_elems(Arc::new(scatter_pos), n * n).reshape(&[n, n]))
}

/// Mean-aggregation graph convolution of eq. (15):
/// `out = Wᵀ (H ⊕ Â·H / |N|)` row-wise, where `inv_deg` holds `1/|N(u)|`.
pub fn mean_convolve<'t>(h: Var<'t>, adjacency: Var<'t>, inv_deg: Var<'t>, w: Var<'t>) -> Var<'t> {
    let d = h.value().cols();
    let agg = adjacency.matmul(h).mul(inv_deg.broadcast_cols(d));
    h.concat_cols(agg).matmul(w)
}

/// Attention-aggregation convolution used by the ConsisRec-style victim:
/// neighbor weights are a masked softmax of embedding similarity
/// ("consistency scores"), so more-consistent neighbors dominate.
pub fn attention_convolve<'t>(h: Var<'t>, mask: Var<'t>, w: Var<'t>) -> Var<'t> {
    let n = h.value().rows();
    // Similarity logits, exponentiated with a detached row-max for stability,
    // then masked to the adjacency and row-normalized.
    let s = h.matmul(h.t());
    let sv = s.value();
    let mut maxes = vec![0.0f64; n];
    for (i, mx) in maxes.iter_mut().enumerate() {
        *mx = (0..n).map(|j| sv.at(i, j)).fold(f64::NEG_INFINITY, f64::max);
    }
    let max_c = s.tape().constant(Tensor::from_vec(maxes, &[n])).broadcast_cols(n);
    let e = s.sub(max_c).exp().mul(mask);
    let denom = e.sum_rows().add_scalar(1e-9);
    let att = e.div(denom.broadcast_cols(n));
    let agg = att.matmul(h);
    h.concat_cols(agg).matmul(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::Tape;

    #[test]
    fn dense_adjacency_symmetric() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = dense_adjacency(&g);
        assert_eq!(a.at(0, 1), 1.0);
        assert_eq!(a.at(1, 0), 1.0);
        assert_eq!(a.at(0, 2), 0.0);
        assert_eq!(a.at(0, 0), 0.0);
    }

    #[test]
    fn inv_degree_handles_isolated() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let d = inv_degree(&g);
        assert_eq!(d.to_vec(), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn poisoned_adjacency_injects_candidates() {
        let tape = Tape::new();
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let xhat = tape.leaf(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        // Candidate 0 -> edge (0,2) selected; candidate 1 -> edge (1,2) unselected.
        let a = poisoned_adjacency(&tape, &g, &[(0, (0, 2)), (1, (1, 2))], xhat);
        let av = a.value();
        assert_eq!(av.at(0, 1), 1.0); // real edge untouched
        assert_eq!(av.at(0, 2), 1.0); // selected candidate
        assert_eq!(av.at(2, 0), 1.0); // symmetric
        assert_eq!(av.at(1, 2), 0.0); // unselected candidate
    }

    #[test]
    fn poisoned_adjacency_gradient_reaches_xhat() {
        let tape = Tape::new();
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let xhat = tape.leaf(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        let a = poisoned_adjacency(&tape, &g, &[(0, (0, 2)), (1, (1, 2))], xhat);
        // Loss touching only entry (1,2): gradient must flow to x̂[1] even
        // though its value is 0 — the key PDS property (§IV-C).
        let h = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]));
        let loss = a.matmul(h).gather_rows(Arc::new(vec![1])).sum();
        let grad = tape.grad(loss, &[xhat]).remove(0);
        assert_eq!(grad.get(1), 3.0, "unselected candidate still receives gradient");
        assert_eq!(grad.get(0), 0.0, "edge (0,2) does not affect row 1");
    }

    #[test]
    fn mean_convolve_shapes_and_values() {
        let tape = Tape::new();
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let h = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        let a = tape.constant(dense_adjacency(&g));
        let inv = tape.constant(inv_degree(&g));
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 1.0], &[2, 1])); // sums the concat
        let out = mean_convolve(h, a, inv, w);
        // Row 0: h=1, agg = 2/1 = 2 → 3. Row 1: 2 + 1 = 3.
        assert_eq!(out.value().to_vec(), vec![3.0, 3.0]);
    }

    #[test]
    fn graph_tensor_cache_hits_and_evicts() {
        clear_graph_tensor_cache();
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a1 = dense_adjacency(&g);
        let a2 = dense_adjacency(&g);
        // Hit: the same Arc-backed storage is handed back.
        assert!(std::ptr::eq(a1.data().as_ptr(), a2.data().as_ptr()));
        assert_eq!(a1.to_vec(), dense_adjacency_uncached(&g).to_vec());
        // A different kind for the same graph is a distinct entry.
        assert_eq!(inv_degree(&g).to_vec(), inv_degree_uncached(&g).to_vec());
        // Filling the cache with other graphs evicts the oldest entry.
        for k in 0..GRAPH_TENSOR_CACHE_CAP {
            let other = CsrGraph::from_edges(k + 4, &[(0, k + 3)]);
            let _ = dense_adjacency(&other);
        }
        let a3 = dense_adjacency(&g);
        assert!(
            !std::ptr::eq(a1.data().as_ptr(), a3.data().as_ptr()),
            "entry should have been evicted"
        );
        assert_eq!(a1.to_vec(), a3.to_vec());
        clear_graph_tensor_cache();
    }

    #[test]
    fn attention_convolve_weights_sum_to_one() {
        let tape = Tape::new();
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let h = tape.leaf(Tensor::from_vec(vec![1.0, 0.5, -0.5, 0.3, 0.2, 0.9], &[3, 2]));
        let mask = tape.constant(dense_adjacency(&g));
        let w = tape.leaf(Tensor::from_vec(vec![1.0; 8], &[4, 2]));
        let out = attention_convolve(h, mask, w);
        assert_eq!(out.value().shape(), &[3, 2]);
        assert!(out.value().all_finite());
    }
}
