//! The victim Het-RecSys: a ConsisRec-style attention GNN (§VI-A.1).
//!
//! Per-node embeddings are refined by one round of graph convolution — users
//! over the social network 𝒢ᵤ, items over the item graph 𝒢ᵢ — with
//! consistency-score attention (masked softmax of embedding similarity),
//! following ConsisRec [12]. Predictions are dot products of final embeddings
//! and training minimizes the MSE of eq. (1) with L2 regularization.

use std::sync::Arc;

use msopds_autograd::optim::Adam;
use msopds_autograd::{Tape, Tensor, Var};
use msopds_recdata::Dataset;
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Full-batch training epochs run across all victim fits.
static HETREC_EPOCHS: telemetry::Counter = telemetry::Counter::new("recsys.hetrec.epochs");

use crate::bias::{damped_biases, DEFAULT_DAMPING};
use crate::convolve::{attention_convolve, mean_convolve};
use crate::graphops::{Backend, GraphOps};
use crate::snapshot::{ModelKind, Snapshot, SnapshotError, SnapshotHeader};

/// Hyperparameters of the victim model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HetRecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Training epochs (full-batch Adam).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 regularization strength λ of eq. (1).
    pub lambda: f64,
    /// Embedding init standard deviation.
    pub init_std: f64,
    /// Use consistency attention (`true`, ConsisRec-style) or plain mean
    /// aggregation (`false`).
    pub attention: bool,
    /// Graph-operation backend for the mean-aggregation path. Attention
    /// always materializes densely (see [`GraphOps::attention_mask`]).
    pub backend: Backend,
    /// Parameter init seed.
    pub seed: u64,
}

impl Default for HetRecConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            epochs: 50,
            lr: 0.05,
            lambda: 1e-2,
            init_std: 0.1,
            attention: true,
            backend: Backend::from_env(),
            seed: 0,
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Training MSE after each epoch.
    pub epoch_loss: Vec<f64>,
}

/// The trained victim recommender.
#[derive(Clone, Debug)]
pub struct HetRec {
    cfg: HetRecConfig,
    user_emb: Tensor,
    item_emb: Tensor,
    w_u: Tensor,
    w_i: Tensor,
    /// Damped-mean user bias, recomputed from the data at fit time.
    b_u: Tensor,
    /// Damped-mean item bias, recomputed from the data at fit time.
    b_i: Tensor,
    /// Global-mean rating anchor μ: predictions are `μ + b_u + b_i + h_uᶠ·h_iᶠ`.
    mu: f64,
    /// Final embeddings after the last fit; `None` before training.
    finals: Option<(Tensor, Tensor)>,
}

impl HetRec {
    /// Initializes parameters for a `n_users × n_items` universe.
    pub fn new(cfg: HetRecConfig, n_users: usize, n_items: usize) -> Self {
        let mut rng = rand::SeedableRng::seed_from_u64(cfg.seed);
        let rng: &mut rand::rngs::StdRng = &mut rng;
        let d = cfg.dim;
        Self {
            cfg,
            user_emb: Tensor::randn(&[n_users, d], cfg.init_std, rng),
            item_emb: Tensor::randn(&[n_items, d], cfg.init_std, rng),
            w_u: glorot(2 * d, d, rng),
            w_i: glorot(2 * d, d, rng),
            b_u: Tensor::zeros(&[n_users]),
            b_i: Tensor::zeros(&[n_items]),
            mu: 0.0,
            finals: None,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &HetRecConfig {
        &self.cfg
    }

    /// Trains on `data` (eq. 1) and caches final embeddings for prediction.
    ///
    /// # Panics
    /// Panics if `data` dimensions disagree with the construction sizes or the
    /// dataset has no ratings.
    pub fn fit(&mut self, data: &Dataset) -> TrainReport {
        let _span = telemetry::span("hetrec_fit");
        assert_eq!(data.n_users(), self.user_emb.rows(), "user count changed since new()");
        assert_eq!(data.n_items(), self.item_emb.rows(), "item count changed since new()");
        assert!(!data.ratings.is_empty(), "cannot train on an empty rating matrix");
        self.mu = data.ratings.global_mean().expect("non-empty ratings");
        let (bu_t, bi_t) = damped_biases(data, self.mu, DEFAULT_DAMPING);
        self.b_u = bu_t;
        self.b_i = bi_t;

        let gops = GraphOps::new(self.cfg.backend);
        let (user_idx, item_idx, values) = rating_triplets(data);
        let target = Tensor::from_vec(values, &[user_idx.len()]);
        let user_idx = Arc::new(user_idx);
        let item_idx = Arc::new(item_idx);

        let mut adam = Adam::new(self.cfg.lr, 4);
        adam.weight_decay = self.cfg.lambda;
        let mut epoch_loss = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let _epoch_span = telemetry::span("epoch");
            HETREC_EPOCHS.incr();
            let tape = Tape::new();
            let (hu, hi, wu, wi) = (
                tape.leaf(self.user_emb.clone()),
                tape.leaf(self.item_emb.clone()),
                tape.leaf(self.w_u.clone()),
                tape.leaf(self.w_i.clone()),
            );
            let (bu, bi) = (tape.constant(self.b_u.clone()), tape.constant(self.b_i.clone()));
            let (uf, if_) = self.forward(&tape, &gops, data, hu, hi, wu, wi);
            let pred = uf
                .gather_rows(Arc::clone(&user_idx))
                .rowwise_dot(if_.gather_rows(Arc::clone(&item_idx)))
                .add(bu.gather_elems(Arc::clone(&user_idx)))
                .add(bi.gather_elems(Arc::clone(&item_idx)))
                .add_scalar(self.mu);
            let loss = pred.sub(tape.constant(target.clone())).square().mean();
            epoch_loss.push(loss.item());

            let grads = tape.grad(loss, &[hu, hi, wu, wi]);
            adam.tick();
            adam.step(0, &mut self.user_emb, &grads[0]);
            adam.step(1, &mut self.item_emb, &grads[1]);
            adam.step(2, &mut self.w_u, &grads[2]);
            adam.step(3, &mut self.w_i, &grads[3]);
        }

        // Cache final embeddings with the trained parameters.
        let tape = Tape::new();
        let (hu, hi, wu, wi) = (
            tape.constant(self.user_emb.clone()),
            tape.constant(self.item_emb.clone()),
            tape.constant(self.w_u.clone()),
            tape.constant(self.w_i.clone()),
        );
        let (uf, if_) = self.forward(&tape, &gops, data, hu, hi, wu, wi);
        self.finals = Some((uf.value(), if_.value()));
        TrainReport { epoch_loss }
    }

    /// One convolution round over both graphs, through the backend-agnostic
    /// `GraphOps` API. The per-graph derived structures (dense masks, CSR
    /// operands, inverse degrees) are memoized on the graph fingerprint, so
    /// calling this per epoch costs one cache hit each.
    #[allow(clippy::too_many_arguments)]
    fn forward<'t>(
        &self,
        tape: &'t Tape,
        gops: &GraphOps,
        data: &Dataset,
        hu: Var<'t>,
        hi: Var<'t>,
        wu: Var<'t>,
        wi: Var<'t>,
    ) -> (Var<'t>, Var<'t>) {
        if self.cfg.attention {
            let mask_u = gops.attention_mask(tape, &data.social);
            let mask_i = gops.attention_mask(tape, &data.item_graph);
            (attention_convolve(hu, mask_u, wu), attention_convolve(hi, mask_i, wi))
        } else {
            let au = gops.adjacency(tape, &data.social);
            let ai = gops.adjacency(tape, &data.item_graph);
            let du = gops.inv_degree(tape, &data.social);
            let di = gops.inv_degree(tape, &data.item_graph);
            (mean_convolve(hu, &au, du, wu), mean_convolve(hi, &ai, di, wi))
        }
    }

    /// Predicted rating `ℛ₍ᵤ,ᵢ₎` from the cached final embeddings.
    ///
    /// # Panics
    /// Panics if called before [`HetRec::fit`].
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        let (uf, if_) = self.finals.as_ref().expect("call fit() before predict()");
        let d = uf.cols();
        self.mu
            + self.b_u.get(user)
            + self.b_i.get(item)
            + (0..d).map(|k| uf.at(user, k) * if_.at(item, k)).sum::<f64>()
    }

    /// Predicted ratings of `item` for every user in `users`.
    pub fn predict_users(&self, users: &[usize], item: usize) -> Vec<f64> {
        users.iter().map(|&u| self.predict(u, item)).collect()
    }

    /// The global-mean rating anchor μ learned from the last fit.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The damped user/item bias vectors from the last fit.
    pub fn biases(&self) -> (&Tensor, &Tensor) {
        (&self.b_u, &self.b_i)
    }

    /// The final (post-convolution) user/item embeddings; `None` before
    /// [`HetRec::fit`]. These are what [`HetRec::predict`] — and the serving
    /// layer — score with.
    pub fn final_embeddings(&self) -> Option<(&Tensor, &Tensor)> {
        self.finals.as_ref().map(|(u, i)| (u, i))
    }

    /// Exports the trained model as a [`Snapshot`] (DESIGN.md §12), stamping
    /// the CSR fingerprints of `data`'s graphs for invalidation checks.
    ///
    /// # Panics
    /// Panics if called before [`HetRec::fit`] — an unfitted model has no
    /// final embeddings to serve.
    pub fn snapshot(&self, data: &Dataset) -> Snapshot {
        let (uf, if_) = self.finals.as_ref().expect("call fit() before snapshot()");
        let (social_fingerprint, item_fingerprint) = Snapshot::fingerprints_of(data);
        Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::HetRec,
                backend: self.cfg.backend,
                seed: self.cfg.seed,
                social_fingerprint,
                item_fingerprint,
                n_users: self.user_emb.rows() as u64,
                n_items: self.item_emb.rows() as u64,
                mu: self.mu,
            },
            config_json: serde_json::to_string(&self.cfg).expect("HetRecConfig serializes"),
            tensors: vec![
                ("user_emb".to_string(), self.user_emb.clone()),
                ("item_emb".to_string(), self.item_emb.clone()),
                ("w_u".to_string(), self.w_u.clone()),
                ("w_i".to_string(), self.w_i.clone()),
                ("b_u".to_string(), self.b_u.clone()),
                ("b_i".to_string(), self.b_i.clone()),
                ("finals.user".to_string(), uf.clone()),
                ("finals.item".to_string(), if_.clone()),
            ],
        }
    }

    /// Rebuilds a trained model from a [`Snapshot`], bit-identical to the
    /// instance that saved it (same predictions without retraining).
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, SnapshotError> {
        if snap.header.kind != ModelKind::HetRec {
            return Err(SnapshotError::Corrupt {
                context: format!("expected a HetRec snapshot, found {:?}", snap.header.kind),
            });
        }
        let cfg: HetRecConfig = serde_json::from_str(&snap.config_json)
            .map_err(|e| SnapshotError::Corrupt { context: format!("config JSON: {e}") })?;
        let grab = |name: &str| snap.require(name).cloned();
        let model = Self {
            cfg,
            user_emb: grab("user_emb")?,
            item_emb: grab("item_emb")?,
            w_u: grab("w_u")?,
            w_i: grab("w_i")?,
            b_u: grab("b_u")?,
            b_i: grab("b_i")?,
            mu: snap.header.mu,
            finals: Some((grab("finals.user")?, grab("finals.item")?)),
        };
        let (n_users, n_items) = (snap.header.n_users as usize, snap.header.n_items as usize);
        let d = model.cfg.dim;
        let shapes = [
            ("user_emb", model.user_emb.shape(), vec![n_users, d]),
            ("item_emb", model.item_emb.shape(), vec![n_items, d]),
            ("b_u", model.b_u.shape(), vec![n_users]),
            ("b_i", model.b_i.shape(), vec![n_items]),
        ];
        for (name, found, want) in shapes {
            if found != want.as_slice() {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "tensor {name:?} has shape {found:?}, header implies {want:?}"
                    ),
                });
            }
        }
        let (uf, if_) = model.finals.as_ref().expect("set above");
        if uf.shape() != [n_users, uf.cols()]
            || if_.shape() != [n_items, if_.cols()]
            || uf.cols() != if_.cols()
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "final embeddings {:?} / {:?} disagree with header {n_users}×{n_items}",
                    uf.shape(),
                    if_.shape()
                ),
            });
        }
        Ok(model)
    }

    /// Root-mean-squared error over the dataset's stored ratings.
    pub fn rmse(&self, data: &Dataset) -> f64 {
        let mut se = 0.0;
        for r in data.ratings.ratings() {
            let p = self.predict(r.user as usize, r.item as usize);
            se += (p - r.value) * (p - r.value);
        }
        (se / data.ratings.len() as f64).sqrt()
    }
}

/// Glorot-uniform-ish init (scaled normal) for projection matrices.
fn glorot<R: rand::Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f64).sqrt();
    Tensor::randn(&[fan_in, fan_out], std, rng)
}

/// Splits the rating matrix into parallel index/value arrays.
pub(crate) fn rating_triplets(data: &Dataset) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let n = data.ratings.len();
    let mut users = Vec::with_capacity(n);
    let mut items = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for r in data.ratings.ratings() {
        users.push(r.user as usize);
        items.push(r.item as usize);
        values.push(r.value);
    }
    (users, items, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;

    fn micro_data() -> Dataset {
        DatasetSpec::micro().generate(3)
    }

    fn quick_cfg(attention: bool) -> HetRecConfig {
        HetRecConfig { epochs: 30, dim: 8, attention, ..Default::default() }
    }

    #[test]
    fn training_reduces_loss() {
        let data = micro_data();
        let mut model = HetRec::new(quick_cfg(false), data.n_users(), data.n_items());
        let report = model.fit(&data);
        let first = report.epoch_loss[0];
        let last = *report.epoch_loss.last().unwrap();
        assert!(last < 0.6 * first, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn attention_training_reduces_loss() {
        let data = micro_data();
        let mut model = HetRec::new(quick_cfg(true), data.n_users(), data.n_items());
        let report = model.fit(&data);
        assert!(report.epoch_loss.last().unwrap() < &report.epoch_loss[0]);
    }

    #[test]
    fn rmse_beats_global_mean_baseline() {
        let data = micro_data();
        let mut model = HetRec::new(quick_cfg(true), data.n_users(), data.n_items());
        model.fit(&data);
        let mean = data.ratings.global_mean().unwrap();
        let baseline = {
            let mut se = 0.0;
            for r in data.ratings.ratings() {
                se += (mean - r.value) * (mean - r.value);
            }
            (se / data.ratings.len() as f64).sqrt()
        };
        let rmse = model.rmse(&data);
        assert!(rmse < baseline, "model rmse {rmse} vs baseline {baseline}");
    }

    #[test]
    fn fit_is_seed_deterministic() {
        let data = micro_data();
        let mut m1 = HetRec::new(quick_cfg(false), data.n_users(), data.n_items());
        let mut m2 = HetRec::new(quick_cfg(false), data.n_users(), data.n_items());
        m1.fit(&data);
        m2.fit(&data);
        assert_eq!(m1.predict(0, 0), m2.predict(0, 0));
    }

    #[test]
    fn snapshot_restores_bit_identical_predictions() {
        let data = micro_data();
        let mut model = HetRec::new(quick_cfg(true), data.n_users(), data.n_items());
        model.fit(&data);
        let snap = model.snapshot(&data);
        assert!(snap.matches_dataset(&data));
        let back = HetRec::from_snapshot(&snap).unwrap();
        for u in 0..5 {
            for i in 0..5 {
                assert_eq!(
                    model.predict(u, i).to_bits(),
                    back.predict(u, i).to_bits(),
                    "prediction ({u},{i}) drifted through the snapshot"
                );
            }
        }
        // Poisoning the graphs invalidates the fingerprints.
        let actions =
            vec![msopds_recdata::PoisonAction::SocialEdge { a: 0, b: data.n_users() as u32 - 1 }];
        let poisoned = data.apply_poison(&actions);
        if poisoned.social.fingerprint() != data.social.fingerprint() {
            assert!(!snap.matches_dataset(&poisoned));
        }
    }

    #[test]
    #[should_panic(expected = "before snapshot")]
    fn snapshot_before_fit_panics() {
        let data = micro_data();
        let model = HetRec::new(quick_cfg(false), data.n_users(), data.n_items());
        let _ = model.snapshot(&data);
    }

    #[test]
    #[should_panic(expected = "before predict")]
    fn predict_before_fit_panics() {
        let model = HetRec::new(HetRecConfig::default(), 5, 5);
        let _ = model.predict(0, 0);
    }

    #[test]
    fn promoted_item_rating_rises() {
        // Poisoning the data with 5-star ratings on an item should raise its
        // retrained prediction — a sanity check of attack observability.
        let data = micro_data();
        let target = 3usize;
        let mut clean = HetRec::new(quick_cfg(false), data.n_users(), data.n_items());
        clean.fit(&data);
        let users: Vec<usize> = (0..10).collect();
        let before: f64 =
            clean.predict_users(&users, target).iter().sum::<f64>() / users.len() as f64;

        let actions: Vec<_> = (0..10u32)
            .map(|u| msopds_recdata::PoisonAction::Rating {
                user: u,
                item: target as u32,
                value: 5.0,
            })
            .collect();
        let poisoned = data.apply_poison(&actions);
        let mut dirty = HetRec::new(quick_cfg(false), poisoned.n_users(), poisoned.n_items());
        dirty.fit(&poisoned);
        let after: f64 =
            dirty.predict_users(&users, target).iter().sum::<f64>() / users.len() as f64;
        assert!(after > before, "promotion had no effect: {before} -> {after}");
    }
}
