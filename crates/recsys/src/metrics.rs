//! Evaluation metrics of §VI-A.6: average predicted rating r̄ and HitRate@k.

use crate::hetrec::HetRec;

/// Average predicted rating of `item` over `users` (the paper's r̄), computed
/// on the trained victim model.
pub fn avg_predicted_rating(model: &HetRec, users: &[usize], item: usize) -> f64 {
    assert!(!users.is_empty(), "r̄ needs at least one user");
    users.iter().map(|&u| model.predict(u, item)).sum::<f64>() / users.len() as f64
}

/// HitRate@k (§VI-A.6): the fraction of `users` for whom `target` ranks in
/// the top `k` positions among `competing` items by predicted rating.
///
/// `target` must be a member of `competing` (it competes against the rest).
/// Ties are counted pessimistically (a tie does not beat the target).
pub fn hit_rate_at_k(
    model: &HetRec,
    users: &[usize],
    target: usize,
    competing: &[usize],
    k: usize,
) -> f64 {
    assert!(!users.is_empty(), "HR@k needs at least one user");
    assert!(competing.contains(&target), "target must be in the competing pool");
    let mut hits = 0usize;
    for &u in users {
        let target_score = model.predict(u, target);
        let better = competing
            .iter()
            .filter(|&&i| i != target && model.predict(u, i) > target_score)
            .count();
        if better < k {
            hits += 1;
        }
    }
    hits as f64 / users.len() as f64
}

/// Clamps a raw dot-product prediction into the 1–5 star range; reported
/// alongside raw values in experiment summaries.
pub fn clamp_stars(x: f64) -> f64 {
    x.clamp(1.0, 5.0)
}

/// Precision@k over a user set: the fraction of (user, top-k) slots occupied
/// by items from `relevant` when ranking `pool` by predicted rating.
pub fn precision_at_k(
    model: &HetRec,
    users: &[usize],
    pool: &[usize],
    relevant: &[usize],
    k: usize,
) -> f64 {
    assert!(!users.is_empty() && k > 0);
    let relevant: std::collections::HashSet<usize> = relevant.iter().copied().collect();
    let mut hits = 0usize;
    let mut slots = 0usize;
    for &u in users {
        let mut scored: Vec<(f64, usize)> =
            pool.iter().map(|&i| (model.predict(u, i), i)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite predictions"));
        for &(_, i) in scored.iter().take(k) {
            slots += 1;
            if relevant.contains(&i) {
                hits += 1;
            }
        }
    }
    hits as f64 / slots as f64
}

/// NDCG@k of a single `target` item within `pool`, averaged over `users`:
/// `1 / log2(rank + 1)` when the target ranks within the top `k`, else 0.
/// (With a single relevant item the ideal DCG is 1.)
pub fn ndcg_at_k(model: &HetRec, users: &[usize], target: usize, pool: &[usize], k: usize) -> f64 {
    assert!(!users.is_empty() && k > 0);
    assert!(pool.contains(&target), "target must be in the ranking pool");
    let mut total = 0.0;
    for &u in users {
        let target_score = model.predict(u, target);
        let rank =
            1 + pool.iter().filter(|&&i| i != target && model.predict(u, i) > target_score).count();
        if rank <= k {
            total += 1.0 / ((rank as f64 + 1.0).log2());
        }
    }
    total / users.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetrec::{HetRec, HetRecConfig};
    use msopds_recdata::DatasetSpec;

    fn trained() -> (msopds_recdata::Dataset, HetRec) {
        let data = DatasetSpec::micro().generate(4);
        let mut model = HetRec::new(
            HetRecConfig { epochs: 25, dim: 8, attention: false, ..Default::default() },
            data.n_users(),
            data.n_items(),
        );
        model.fit(&data);
        (data, model)
    }

    #[test]
    fn avg_rating_is_mean_of_predictions() {
        let (_, model) = trained();
        let users = [0usize, 1, 2];
        let avg = avg_predicted_rating(&model, &users, 5);
        let manual: f64 = users.iter().map(|&u| model.predict(u, 5)).sum::<f64>() / 3.0;
        assert!((avg - manual).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_bounds() {
        let (_, model) = trained();
        let users: Vec<usize> = (0..10).collect();
        let competing: Vec<usize> = (0..8).collect();
        let hr1 = hit_rate_at_k(&model, &users, 3, &competing, 1);
        let hr8 = hit_rate_at_k(&model, &users, 3, &competing, 8);
        assert!((0.0..=1.0).contains(&hr1));
        assert_eq!(hr8, 1.0, "k = pool size must always hit");
        assert!(hr1 <= hit_rate_at_k(&model, &users, 3, &competing, 3));
    }

    #[test]
    #[should_panic(expected = "competing pool")]
    fn target_must_compete() {
        let (_, model) = trained();
        let _ = hit_rate_at_k(&model, &[0], 50, &[1, 2, 3], 3);
    }

    #[test]
    fn clamp() {
        assert_eq!(clamp_stars(7.3), 5.0);
        assert_eq!(clamp_stars(-2.0), 1.0);
        assert_eq!(clamp_stars(3.3), 3.3);
    }

    #[test]
    fn ndcg_bounds_and_consistency_with_hit_rate() {
        let (_, model) = trained();
        let users: Vec<usize> = (0..10).collect();
        let pool: Vec<usize> = (0..8).collect();
        let ndcg1 = ndcg_at_k(&model, &users, 3, &pool, 1);
        let ndcg8 = ndcg_at_k(&model, &users, 3, &pool, 8);
        assert!((0.0..=1.0).contains(&ndcg1));
        assert!(ndcg8 >= ndcg1, "NDCG grows with k");
        // A rank-1 hit contributes 1/log2(2) = 1; with k = pool size every
        // user contributes something positive.
        assert!(ndcg8 > 0.0);
        // HR@k and NDCG@k agree on emptiness: if HR@1 is 0 then NDCG@1 is 0.
        let hr1 = hit_rate_at_k(&model, &users, 3, &pool, 1);
        if hr1 == 0.0 {
            assert_eq!(ndcg1, 0.0);
        }
    }

    #[test]
    fn precision_counts_relevant_slots() {
        let (_, model) = trained();
        let users: Vec<usize> = (0..6).collect();
        let pool: Vec<usize> = (0..10).collect();
        // With everything relevant precision is 1; with nothing relevant 0.
        assert_eq!(precision_at_k(&model, &users, &pool, &pool, 3), 1.0);
        assert_eq!(precision_at_k(&model, &users, &pool, &[], 3), 0.0);
        let p = precision_at_k(&model, &users, &pool, &[0, 1, 2], 5);
        assert!((0.0..=1.0).contains(&p));
    }
}
