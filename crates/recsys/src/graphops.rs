//! The `GraphOps` backend API: graph convolutions without a representation
//! commitment.
//!
//! Models ask for *graph operations* — "aggregate neighbors", "normalize by
//! degree", "patch candidate edges" — and the backend decides how the
//! adjacency is materialized:
//!
//! * [`Backend::Dense`]: the adjacency is an O(n²) tensor constant, exactly
//!   as the original reproduction built it. Numerically bit-identical to the
//!   pre-backend code, so every existing seed test still anchors correctness.
//! * [`Backend::Sparse`]: the adjacency is a CSR constant multiplied through
//!   the `Spmm` tape op of `msopds-autograd` in O(nnz·d), and the poisoned
//!   delta (candidate edges modulated by X̂) is applied as a *sparse* op
//!   chain — gather the touched rows, weight them by the gathered X̂
//!   entries, scatter-add back — so Â stays differentiable in X̂ without
//!   ever densifying. The two backends agree to ≤1e-10 (they differ only in
//!   floating-point summation order); see `tests/backend_equivalence.rs`.
//!
//! The attention victim (`attention_convolve`) is inherently dense — its
//! masked softmax normalizes over *all* pairs — so [`GraphOps::attention_mask`]
//! always materializes the dense 0/1 mask regardless of backend. Choosing
//! `Backend::Sparse` therefore accelerates the mean-aggregation paths (the
//! PDS surrogate and the `attention: false` victim), which are the O(n²)
//! bottlenecks of Algorithm 1.
//!
//! Derived structures (dense tensors, CSR operands, inverse degrees) are
//! memoized on the graph's structural fingerprint; see `crate::convolve`.

use std::sync::Arc;

use msopds_autograd::{sparse, SparseMatrixF32, SparseOperand, Tape, Var};
use msopds_het_graph::CsrGraph;
use serde::{Deserialize, Serialize};

use crate::convolve::{
    adjacency_patch, dense_adjacency, inv_degree, sparse_adjacency, sparse_adjacency_sharded,
};

/// How a [`GraphOps`] materializes adjacency operators.
///
/// Serialized by variant name (`"Dense"` / `"Sparse"` / `"Sharded"`); parsed
/// case-insensitively from strings via [`FromStr`](std::str::FromStr).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// O(n²) dense adjacency tensors (the original representation).
    #[default]
    Dense,
    /// CSR adjacency through the `Spmm` tape op; O(nnz·d) per aggregation.
    Sparse,
    /// CSR adjacency split into the given number of row-range shards. Same
    /// `Spmm` math as `Sparse` — per-row CSR-order accumulation makes any
    /// row partition bit-identical — but each shard owns a contiguous band
    /// of rows, the layout million-user worlds stream into and the worker
    /// pool parallelizes over.
    Sharded(u16),
}

impl Backend {
    /// The backend named by the `MSOPDS_BACKEND` environment variable
    /// (`dense` | `sparse` | `sharded[:k]`), or `Dense` when unset. This is
    /// what config defaults use, so `MSOPDS_BACKEND=sparse cargo test` runs
    /// the whole suite on the sparse path (the CI backend matrix).
    ///
    /// # Panics
    /// Panics on an unrecognized value — a misspelled backend must not
    /// silently fall back to dense.
    pub fn from_env() -> Self {
        match std::env::var("MSOPDS_BACKEND") {
            Ok(s) => s.parse().unwrap_or_else(|e: String| panic!("MSOPDS_BACKEND: {e}")),
            Err(_) => Backend::Dense,
        }
    }

    /// Canonical lowercase family name (`dense` | `sparse` | `sharded`).
    /// Drops the shard count; use `Display` for the round-trippable form.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::Sparse => "sparse",
            Backend::Sharded(_) => "sharded",
        }
    }
}

/// Shard count used when `"sharded"` is parsed without an explicit `:k`.
pub const DEFAULT_SHARDS: u16 = 4;

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        match norm.as_str() {
            "dense" => Ok(Backend::Dense),
            "sparse" => Ok(Backend::Sparse),
            "sharded" => Ok(Backend::Sharded(DEFAULT_SHARDS)),
            other => match other.strip_prefix("sharded:") {
                Some(k) => match k.parse::<u16>() {
                    Ok(k) if k >= 1 => Ok(Backend::Sharded(k)),
                    _ => Err(format!("bad shard count {k:?} (expected 1..=65535)")),
                },
                None => {
                    Err(format!("unknown backend {other:?} (expected dense|sparse|sharded[:k])"))
                }
            },
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Sharded(k) => write!(f, "sharded:{k}"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// One player's candidate-edge contribution to a poisoned adjacency: each
/// candidate edge `(a, b)` enters Â symmetrically, weighted by its entry of
/// the player's X̂ leaf.
#[derive(Clone, Copy)]
pub struct EdgePatch<'a, 't> {
    /// `(xhat index, (a, b))` per candidate edge, as partitioned by the PDS
    /// builder. Edges must be absent from the base graph.
    pub candidates: &'a [(usize, (usize, usize))],
    /// The player's importance-vector leaf.
    pub xhat: Var<'t>,
}

/// Factory for adjacency operators under a chosen [`Backend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphOps {
    backend: Backend,
}

impl GraphOps {
    /// A factory producing `backend`-flavored operators.
    pub const fn new(backend: Backend) -> Self {
        Self { backend }
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The (constant) adjacency operator of `g`.
    pub fn adjacency<'t>(&self, tape: &'t Tape, g: &CsrGraph) -> AdjacencyOp<'t> {
        self.poisoned_adjacency(tape, g, &[])
    }

    /// The poisoned adjacency Â of eq. (15): the base graph plus every
    /// player's candidate edges weighted by their X̂ entries, differentiable
    /// in each X̂.
    pub fn poisoned_adjacency<'t>(
        &self,
        tape: &'t Tape,
        g: &CsrGraph,
        patches: &[EdgePatch<'_, 't>],
    ) -> AdjacencyOp<'t> {
        let n = g.num_nodes();
        let repr = match self.backend {
            Backend::Dense => {
                let base = tape.constant(dense_adjacency(g));
                let a = patches.iter().fold(base, |acc, p| {
                    match adjacency_patch(g, p.candidates, p.xhat) {
                        Some(patch) => acc.add(patch),
                        None => acc,
                    }
                });
                Repr::Dense(a)
            }
            Backend::Sparse | Backend::Sharded(_) => {
                let deltas = patches
                    .iter()
                    .filter(|p| !p.candidates.is_empty())
                    .map(|p| SparseDelta::build(g, p))
                    .collect();
                let base = match self.backend {
                    Backend::Sharded(k) => sparse_adjacency_sharded(g, k),
                    _ => sparse_adjacency(g),
                };
                Repr::Sparse { base, deltas }
            }
        };
        AdjacencyOp { n, repr }
    }

    /// Per-node inverse degree `1/|N(u)|` of `g` as a tape constant — the
    /// normalization of eq. (15). A dense vector under every backend (it is
    /// O(n), never the bottleneck).
    pub fn inv_degree<'t>(&self, tape: &'t Tape, g: &CsrGraph) -> Var<'t> {
        tape.constant(inv_degree(g))
    }

    /// The dense 0/1 mask consumed by `attention_convolve`. Attention is a
    /// masked softmax over all node pairs and cannot be sparsified here, so
    /// this materializes densely under every backend.
    pub fn attention_mask<'t>(&self, tape: &'t Tape, g: &CsrGraph) -> Var<'t> {
        tape.constant(dense_adjacency(g))
    }

    /// An `f32` aggregation operator for the opt-in fast path: the CSR
    /// adjacency of `g` with values downcast to single precision, applied by
    /// the fused lane kernel of [`SparseMatrixF32`].
    ///
    /// This is a *precision* choice, not a representation choice, so it is
    /// available under every backend (the dense backend's adjacency is the
    /// same matrix, just materialized). It lives outside the tape — no
    /// gradients, no poisoned deltas — and is meant for inference-style
    /// sweeps (serving-adjacent scoring, candidate screening) where a
    /// documented ≤1e-4-relative deviation from the exact `f64` aggregation
    /// is acceptable. The planner's exact path never routes through it.
    pub fn fast_adjacency(&self, g: &CsrGraph) -> FastAdjacency {
        FastAdjacency { n: g.num_nodes(), matrix: sparse_adjacency(g).matrix().to_f32() }
    }
}

/// An `f32` CSR adjacency for tolerance-bounded aggregation
/// ([`GraphOps::fast_adjacency`]).
#[derive(Clone, Debug)]
pub struct FastAdjacency {
    n: usize,
    matrix: SparseMatrixF32,
}

impl FastAdjacency {
    /// Node count of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Stored entries (directed; two per undirected edge).
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// The aggregation `A·H` over row-major `h` with `d` feature columns,
    /// returning a row-major `[n, d]` buffer. Accumulation follows CSR entry
    /// order per row — the same association order as the exact backend, in
    /// `f32`.
    ///
    /// # Panics
    /// Panics when `h.len()` is not `num_nodes()·d`.
    pub fn apply(&self, h: &[f32], d: usize) -> Vec<f32> {
        self.matrix.spmm(h, d)
    }
}

/// A (possibly X̂-poisoned) adjacency operator tied to a tape.
///
/// The only consumer-facing operation is [`AdjacencyOp::matmul`] — models
/// never see the representation.
pub struct AdjacencyOp<'t> {
    n: usize,
    repr: Repr<'t>,
}

enum Repr<'t> {
    /// The fully-materialized adjacency (base + patches) as one tape node.
    Dense(Var<'t>),
    /// CSR base plus per-player sparse deltas, combined at multiply time.
    Sparse { base: Arc<SparseOperand>, deltas: Vec<SparseDelta<'t>> },
}

/// One player's candidate edges in multiply-ready form: entry `k` adds
/// `weights[k] · H[cols[k], :]` into row `rows[k]` of Â·H.
struct SparseDelta<'t> {
    /// X̂ entries gathered per directed entry (two per undirected edge), so
    /// gradients flow back to the player's leaf through `GatherElems`.
    weights: Var<'t>,
    rows: Arc<Vec<usize>>,
    cols: Arc<Vec<usize>>,
}

impl<'t> SparseDelta<'t> {
    fn build(base: &CsrGraph, patch: &EdgePatch<'_, 't>) -> Self {
        let n = base.num_nodes();
        let k = patch.candidates.len();
        let mut gather_idx = Vec::with_capacity(2 * k);
        let mut rows = Vec::with_capacity(2 * k);
        let mut cols = Vec::with_capacity(2 * k);
        for &(xi, (a, b)) in patch.candidates {
            debug_assert!(a < n && b < n, "candidate edge ({a},{b}) out of range");
            debug_assert!(!base.has_edge(a, b), "candidate edge ({a},{b}) already real");
            gather_idx.push(xi);
            rows.push(a);
            cols.push(b);
            gather_idx.push(xi);
            rows.push(b);
            cols.push(a);
        }
        Self {
            weights: patch.xhat.gather_elems(Arc::new(gather_idx)),
            rows: Arc::new(rows),
            cols: Arc::new(cols),
        }
    }
}

impl<'t> AdjacencyOp<'t> {
    /// Node count of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The neighbor aggregation `Â·H`, recorded on the tape.
    ///
    /// Dense: one `Matmul` against the materialized Â. Sparse: an `Spmm`
    /// against the CSR base plus, per player, a gather → weight → scatter-add
    /// chain for the candidate edges — every piece is an existing tape op
    /// with higher-order-capable VJPs, so HVPs through Â work identically on
    /// both backends.
    pub fn matmul(&self, h: Var<'t>) -> Var<'t> {
        match &self.repr {
            Repr::Dense(a) => a.matmul(h),
            Repr::Sparse { base, deltas } => {
                let d = h.value().cols();
                let mut out = sparse::spmm(base, h);
                for delta in deltas {
                    let contribution = h
                        .gather_rows(Arc::clone(&delta.cols))
                        .mul(delta.weights.broadcast_cols(d))
                        .scatter_add_rows(Arc::clone(&delta.rows), self.n);
                    out = out.add(contribution);
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::Tensor;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("dense".parse::<Backend>().unwrap(), Backend::Dense);
        assert_eq!("SPARSE".parse::<Backend>().unwrap(), Backend::Sparse);
        assert_eq!("sharded".parse::<Backend>().unwrap(), Backend::Sharded(DEFAULT_SHARDS));
        assert_eq!("Sharded:9".parse::<Backend>().unwrap(), Backend::Sharded(9));
        assert!("dens".parse::<Backend>().is_err());
        assert!("sharded:0".parse::<Backend>().is_err());
        assert!("sharded:lots".parse::<Backend>().is_err());
        assert_eq!(Backend::Sparse.to_string(), "sparse");
        assert_eq!(Backend::Sharded(9).to_string(), "sharded:9");
        assert_eq!(Backend::Sharded(9).as_str(), "sharded");
        assert_eq!("sharded:9".parse::<Backend>().unwrap().to_string(), "sharded:9");
        assert_eq!(Backend::default(), Backend::Dense);
    }

    #[test]
    fn dense_and_sparse_adjacency_agree() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let h0 = Tensor::from_vec((0..10).map(|i| i as f64 * 0.3 - 1.0).collect(), &[5, 2]);
        let tape = Tape::new();
        let h = tape.constant(h0);
        let dense = GraphOps::new(Backend::Dense).adjacency(&tape, &g).matmul(h);
        let sparse = GraphOps::new(Backend::Sparse).adjacency(&tape, &g).matmul(h);
        assert!(dense.value().max_abs_diff(&sparse.value()) < 1e-12);
        // Sharded is the same math partitioned by row band: bit-identical to
        // sparse, not merely close.
        for k in [1u16, 2, 3, 5] {
            let sharded = GraphOps::new(Backend::Sharded(k)).adjacency(&tape, &g).matmul(h);
            let (a, b) = (sparse.value(), sharded.value());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "shard count {k} drifted");
            }
        }
    }

    #[test]
    fn poisoned_adjacency_backends_agree_with_gradients() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let candidates = [(0usize, (0usize, 2usize)), (1, (1, 3))];
        let h0 = Tensor::from_vec((0..8).map(|i| (i as f64).cos()).collect(), &[4, 2]);
        let xhat0 = Tensor::from_vec(vec![0.7, 0.0], &[2]);

        let run = |backend: Backend| -> (Tensor, Tensor) {
            let tape = Tape::new();
            let xhat = tape.leaf(xhat0.clone());
            let h = tape.constant(h0.clone());
            let ops = GraphOps::new(backend);
            let a =
                ops.poisoned_adjacency(&tape, &g, &[EdgePatch { candidates: &candidates, xhat }]);
            let out = a.matmul(h);
            let loss = out.square().sum();
            let grad = tape.grad(loss, &[xhat]).remove(0);
            (out.value(), grad)
        };
        let (dense_out, dense_grad) = run(Backend::Dense);
        let (sparse_out, sparse_grad) = run(Backend::Sparse);
        assert!(dense_out.max_abs_diff(&sparse_out) < 1e-12);
        assert!(dense_grad.max_abs_diff(&sparse_grad) < 1e-12);
        // The unselected candidate (x̂ = 0) still receives gradient — the key
        // PDS property — on both backends.
        assert!(sparse_grad.get(1).abs() > 1e-12);
        // The sharded base composes with the same delta chain, bit-for-bit.
        let (sharded_out, sharded_grad) = run(Backend::Sharded(3));
        for (x, y) in sparse_out.data().iter().zip(sharded_out.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in sparse_grad.data().iter().zip(sharded_grad.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fast_adjacency_tracks_exact_aggregation() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let d = 3;
        let h0 = Tensor::from_vec((0..18).map(|i| (i as f64 * 0.61).sin()).collect(), &[6, d]);
        let tape = Tape::new();
        let h = tape.constant(h0.clone());
        for backend in [Backend::Dense, Backend::Sparse, Backend::Sharded(2)] {
            let ops = GraphOps::new(backend);
            let exact = ops.adjacency(&tape, &g).matmul(h).value();
            let fast = ops.fast_adjacency(&g);
            assert_eq!(fast.num_nodes(), 6);
            assert_eq!(fast.nnz(), 14);
            let h32: Vec<f32> = h0.data().iter().map(|&v| v as f32).collect();
            let out = fast.apply(&h32, d);
            for (i, (&f, &e)) in out.iter().zip(exact.data().iter()).enumerate() {
                assert!((f as f64 - e).abs() < 1e-4, "[{i}] fast {f} vs exact {e}");
            }
        }
    }

    #[test]
    fn attention_mask_is_dense_under_both_backends() {
        let g = CsrGraph::from_edges(3, &[(0, 2)]);
        for backend in [Backend::Dense, Backend::Sparse, Backend::Sharded(2)] {
            let tape = Tape::new();
            let mask = GraphOps::new(backend).attention_mask(&tape, &g);
            assert_eq!(mask.value().shape(), &[3, 3]);
            assert_eq!(mask.value().at(0, 2), 1.0);
        }
    }
}
