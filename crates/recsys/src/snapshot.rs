//! Versioned binary model snapshots (DESIGN.md §12).
//!
//! A snapshot is the persisted artifact of a trained recommender: everything
//! the serving layer needs to answer top-K queries without retraining, plus
//! enough provenance (backend, seed, CSR fingerprints of the graphs the model
//! was fitted on) to detect when a snapshot no longer matches the data it
//! claims to describe.
//!
//! ## On-disk layout (format version 1)
//!
//! All integers are little-endian; all floats are IEEE-754 `f64` LE.
//!
//! ```text
//! magic            8 B   b"MSOSNAP\0"
//! format version   u32   1
//! model kind       u8    0 = HetRec, 1 = MatrixFactorization
//! backend tag      u8    0 = dense, 1 = sparse (training-time GraphOps)
//! reserved         u16   0
//! seed             u64   model init seed
//! social fp        u64   CsrGraph::fingerprint of 𝒢ᵤ at fit time
//! item fp          u64   CsrGraph::fingerprint of 𝒢ᵢ at fit time
//! n_users          u64
//! n_items          u64
//! mu               f64   global-mean rating anchor
//! config len       u32   followed by that many bytes of config JSON
//! tensor count     u32
//! per tensor:
//!   name len       u16   followed by that many bytes of UTF-8 name
//!   rank           u8    0, 1 or 2
//!   rows, cols     u64 × 2
//!   data           f64 × rows·cols (row-major)
//! checksum         u64   FNV-1a over every preceding byte
//! ```
//!
//! The format is hand-rolled (like the telemetry JSON sink) so the workspace
//! stays dependency-free. Parsing never panics: malformed input — bad magic,
//! unknown version, truncation, checksum mismatch, inconsistent shapes —
//! comes back as a typed [`SnapshotError`]. Tensor payloads round-trip
//! bit-exactly ([`Tensor::to_le_bytes`]), which is what makes served top-K
//! lists bit-identical to in-process predictions.

use std::fmt;
use std::path::Path;

use msopds_autograd::Tensor;
use msopds_recdata::Dataset;

use crate::graphops::Backend;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"MSOSNAP\0";

/// The current (and only) snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Which model family a snapshot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// The Het-RecSys victim ([`crate::HetRec`]).
    HetRec,
    /// The MF surrogate ([`crate::MatrixFactorization`]).
    Mf,
}

impl ModelKind {
    fn tag(self) -> u8 {
        match self {
            ModelKind::HetRec => 0,
            ModelKind::Mf => 1,
        }
    }

    fn from_tag(t: u8) -> Result<Self, SnapshotError> {
        match t {
            0 => Ok(ModelKind::HetRec),
            1 => Ok(ModelKind::Mf),
            other => Err(SnapshotError::Corrupt { context: format!("unknown model kind {other}") }),
        }
    }
}

/// Everything a snapshot records besides the parameter tensors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotHeader {
    /// Model family.
    pub kind: ModelKind,
    /// GraphOps backend the model was trained on. Serving math is
    /// backend-independent; this is provenance for experiment bookkeeping.
    pub backend: Backend,
    /// Parameter-init seed.
    pub seed: u64,
    /// Structural fingerprint of the social graph 𝒢ᵤ at fit time.
    pub social_fingerprint: u64,
    /// Structural fingerprint of the item graph 𝒢ᵢ at fit time.
    pub item_fingerprint: u64,
    /// User universe size (real + fake accounts).
    pub n_users: u64,
    /// Item universe size.
    pub n_items: u64,
    /// Global-mean rating anchor μ.
    pub mu: f64,
}

/// A complete persisted model: header + config JSON + named tensors.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Provenance and dimensions.
    pub header: SnapshotHeader,
    /// The model's hyperparameter struct, serialized as JSON.
    pub config_json: String,
    /// Named parameter tensors in write order.
    pub tensors: Vec<(String, Tensor)>,
}

/// Why a snapshot could not be read (or did not describe a usable model).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The 8 bytes actually found (zero-padded if the file is shorter).
        found: [u8; 8],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ended before a field could be read.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A structurally invalid field (bad UTF-8, impossible shape, …).
    Corrupt {
        /// Human-readable description.
        context: String,
    },
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// A tensor the model kind requires is absent.
    MissingTensor {
        /// The required tensor's name.
        name: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic {found:?}, expected {MAGIC:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} unsupported (this build reads ≤ {supported})"
                )
            }
            SnapshotError::Truncated { context, needed, have } => {
                write!(
                    f,
                    "snapshot truncated reading {context}: needed {needed} bytes, {have} left"
                )
            }
            SnapshotError::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapshotError::MissingTensor { name } => {
                write!(f, "snapshot is missing required tensor {name:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over a byte slice — same family as the CSR fingerprint, so the
/// whole stack shares one hashing idiom.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Snapshot {
    /// The fingerprints a snapshot of `data` would carry — used both at save
    /// time and by [`Snapshot::matches_dataset`].
    pub fn fingerprints_of(data: &Dataset) -> (u64, u64) {
        (data.social.fingerprint(), data.item_graph.fingerprint())
    }

    /// Looks up a tensor by name.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Looks up a tensor by name, failing with [`SnapshotError::MissingTensor`].
    pub fn require(&self, name: &str) -> Result<&Tensor, SnapshotError> {
        self.tensor(name).ok_or_else(|| SnapshotError::MissingTensor { name: name.to_string() })
    }

    /// True when the snapshot's CSR fingerprints match `data`'s graphs — the
    /// invalidation test: a served model is only valid for the exact graph
    /// structure it was fitted on (DESIGN.md §12).
    pub fn matches_dataset(&self, data: &Dataset) -> bool {
        let (social, item) = Self::fingerprints_of(data);
        self.header.social_fingerprint == social && self.header.item_fingerprint == item
    }

    /// Serializes the snapshot into the format-version-1 byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize =
            self.tensors.iter().map(|(n, t)| 2 + n.len() + 1 + 16 + t.numel() * 8).sum::<usize>()
                + 64
                + self.config_json.len();
        let mut out = Vec::with_capacity(payload + 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.header.kind.tag());
        out.push(match self.header.backend {
            Backend::Dense => 0,
            Backend::Sparse => 1,
        });
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.header.seed.to_le_bytes());
        out.extend_from_slice(&self.header.social_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.header.item_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.header.n_users.to_le_bytes());
        out.extend_from_slice(&self.header.n_items.to_le_bytes());
        out.extend_from_slice(&self.header.mu.to_le_bytes());
        out.extend_from_slice(&(self.config_json.len() as u32).to_le_bytes());
        out.extend_from_slice(self.config_json.as_bytes());
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for (name, t) in &self.tensors {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(t.rank());
            out.extend_from_slice(&(t.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(t.cols() as u64).to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses a snapshot from bytes, validating magic, version, structure and
    /// checksum. Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take::<8>("magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(r.take::<4>("format version")?);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // The checksum guards everything after the (already validated) magic
        // and version, so verify it before trusting any length field.
        if bytes.len() < r.pos + 8 {
            return Err(SnapshotError::Truncated {
                context: "checksum trailer",
                needed: 8,
                have: bytes.len().saturating_sub(r.pos),
            });
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte trailer"));
        let computed = fnv1a(&bytes[..body_end]);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        r.bytes = &bytes[..body_end];

        let kind = ModelKind::from_tag(u8::from_le_bytes(r.take::<1>("model kind")?))?;
        let backend = match u8::from_le_bytes(r.take::<1>("backend tag")?) {
            0 => Backend::Dense,
            1 => Backend::Sparse,
            other => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown backend tag {other}"),
                })
            }
        };
        let _reserved = r.take::<2>("reserved")?;
        let seed = u64::from_le_bytes(r.take::<8>("seed")?);
        let social_fingerprint = u64::from_le_bytes(r.take::<8>("social fingerprint")?);
        let item_fingerprint = u64::from_le_bytes(r.take::<8>("item fingerprint")?);
        let n_users = u64::from_le_bytes(r.take::<8>("n_users")?);
        let n_items = u64::from_le_bytes(r.take::<8>("n_items")?);
        let mu = f64::from_le_bytes(r.take::<8>("mu")?);

        let config_len = u32::from_le_bytes(r.take::<4>("config length")?) as usize;
        let config_bytes = r.slice(config_len, "config JSON")?;
        let config_json = std::str::from_utf8(config_bytes)
            .map_err(|_| SnapshotError::Corrupt { context: "config JSON is not UTF-8".into() })?
            .to_string();

        let count = u32::from_le_bytes(r.take::<4>("tensor count")?) as usize;
        let mut tensors = Vec::with_capacity(count.min(64));
        for i in 0..count {
            let name_len = u16::from_le_bytes(r.take::<2>("tensor name length")?) as usize;
            let name = std::str::from_utf8(r.slice(name_len, "tensor name")?)
                .map_err(|_| SnapshotError::Corrupt {
                    context: format!("tensor {i} name is not UTF-8"),
                })?
                .to_string();
            let rank = u8::from_le_bytes(r.take::<1>("tensor rank")?);
            let rows = u64::from_le_bytes(r.take::<8>("tensor rows")?) as usize;
            let cols = u64::from_le_bytes(r.take::<8>("tensor cols")?) as usize;
            if rank > 2 || (rank == 0 && (rows != 1 || cols != 1)) || (rank == 1 && cols != 1) {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "tensor {name:?} has impossible shape rank={rank} [{rows}, {cols}]"
                    ),
                });
            }
            let numel = rows.checked_mul(cols).ok_or_else(|| SnapshotError::Corrupt {
                context: format!("tensor {name:?} shape overflows"),
            })?;
            let data = r.slice(numel * 8, "tensor data")?;
            let shape: &[usize] = match rank {
                0 => &[],
                1 => &[rows],
                _ => &[rows, cols],
            };
            let t = Tensor::from_le_bytes(data, shape).ok_or_else(|| SnapshotError::Corrupt {
                context: format!("tensor {name:?} payload/shape mismatch"),
            })?;
            tensors.push((name, t));
        }
        if r.pos != r.bytes.len() {
            return Err(SnapshotError::Corrupt {
                context: format!("{} trailing bytes after the last tensor", r.bytes.len() - r.pos),
            });
        }
        Ok(Snapshot {
            header: SnapshotHeader {
                kind,
                backend,
                seed,
                social_fingerprint,
                item_fingerprint,
                n_users,
                n_items,
                mu,
            },
            config_json,
            tensors,
        })
    }

    /// Writes the snapshot to `path` (atomically: temp file + rename, so a
    /// crash mid-write never leaves a half-snapshot behind).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and parses a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// A bounds-checked little-endian cursor; every read failure carries the field
/// being read and the byte deficit.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], SnapshotError> {
        let s = self.slice(N, context)?;
        Ok(s.try_into().expect("slice of requested length"))
    }

    fn slice(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let have = self.bytes.len().saturating_sub(self.pos);
        if have < n {
            return Err(SnapshotError::Truncated { context, needed: n, have });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::HetRec,
                backend: Backend::Sparse,
                seed: 42,
                social_fingerprint: 0xdead,
                item_fingerprint: 0xbeef,
                n_users: 3,
                n_items: 2,
                mu: 3.25,
            },
            config_json: "{\"dim\":2}".to_string(),
            tensors: vec![
                ("a".to_string(), Tensor::from_vec(vec![1.0, -0.0, f64::MIN, 4.5e-300], &[2, 2])),
                ("b".to_string(), Tensor::from_vec(vec![0.5, 1.5, 2.5], &[3])),
                ("s".to_string(), Tensor::scalar(7.0)),
            ],
        }
    }

    #[test]
    fn byte_round_trip_is_bit_exact() {
        let snap = tiny_snapshot();
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.header, snap.header);
        assert_eq!(back.config_json, snap.config_json);
        assert_eq!(back.tensors.len(), 3);
        for ((n1, t1), (n2, t2)) in snap.tensors.iter().zip(&back.tensors) {
            assert_eq!(n1, n2);
            assert!(t1.bit_eq(t2), "tensor {n1} changed bits");
        }
    }

    #[test]
    fn file_round_trip() {
        let snap = tiny_snapshot();
        let path =
            std::env::temp_dir().join(format!("msopds-snap-test-{}.snap", std::process::id()));
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.header, snap.header);
        assert!(back.tensor("a").unwrap().bit_eq(snap.tensor("a").unwrap()));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = tiny_snapshot().to_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut} gave unexpected error {err}"
            );
        }
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let mut bytes = tiny_snapshot().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn missing_tensor_is_typed() {
        let snap = tiny_snapshot();
        assert!(snap.tensor("a").is_some());
        assert!(matches!(
            snap.require("nope"),
            Err(SnapshotError::MissingTensor { name }) if name == "nope"
        ));
    }
}
