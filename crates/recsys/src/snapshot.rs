//! Versioned binary model snapshots (DESIGN.md §12, §16).
//!
//! A snapshot is the persisted artifact of a trained recommender: everything
//! the serving layer needs to answer top-K queries without retraining, plus
//! enough provenance (backend, seed, CSR fingerprints of the graphs the model
//! was fitted on) to detect when a snapshot no longer matches the data it
//! claims to describe.
//!
//! Two format versions exist. Both are little-endian and hand-rolled (like
//! the telemetry JSON sink) so the workspace stays dependency-free, and both
//! share the same 64-byte fixed prefix:
//!
//! ```text
//! magic            8 B   b"MSOSNAP\0"
//! format version   u32   1 or 2
//! model kind       u8    0 = HetRec, 1 = MatrixFactorization
//! backend tag      u8    0 = dense, 1 = sparse, 2 = sharded
//! reserved         u16   shard count when backend tag = 2, else 0
//! seed             u64   model init seed
//! social fp        u64   CsrGraph::fingerprint of 𝒢ᵤ at fit time
//! item fp          u64   CsrGraph::fingerprint of 𝒢ᵢ at fit time
//! n_users          u64
//! n_items          u64
//! mu               f64   global-mean rating anchor
//! ```
//!
//! **Version 1** (read-compat only) follows the prefix with config JSON
//! (u32 length), a tensor count, then inline per-tensor records (name, rank,
//! rows, cols, `f64` data) and a trailing FNV-1a checksum over every
//! preceding byte. Loading it requires reading — and copying — the whole
//! file.
//!
//! **Version 2** (what [`Snapshot::to_bytes`] writes) separates *header*
//! from *payloads* so a million-user model can be memory-mapped with zero
//! deserialization copy:
//!
//! ```text
//! prefix           64 B  as above, version = 2
//! config len       u32   followed by that many bytes of config JSON
//! tensor count     u32
//! per tensor (directory entry):
//!   name len       u16   followed by that many bytes of UTF-8 name
//!   rank           u8    0, 1 or 2
//!   rows, cols     u64 × 2
//!   offset         u64   absolute, 64-byte aligned payload position
//!   payload fnv    u64   FNV-1a over [previous section end, payload end)
//! header checksum  u64   FNV-1a over every preceding byte
//! zero padding     to the first 64-byte boundary
//! payloads         f64 × rows·cols each, 64-byte aligned, zero padding
//!                  between; the file ends exactly at the last payload end
//! ```
//!
//! Because every payload section's checksum covers its *leading padding*
//! too, every byte of a v2 file is covered by exactly one checksum (the
//! header's or one section's): any flipped byte is detected. The header is
//! self-validating without touching payloads, which is what makes
//! [`MappedSnapshot::open`] O(header) — load time is flat in model size.
//! Payload verification is opt-in via [`MappedSnapshot::verify_payloads`].
//!
//! The 64-byte section alignment plus a page-aligned (or `u64`-backed heap)
//! base guarantees payload pointers are 8-byte aligned, so
//! [`TensorView::data`] can hand out `&[f64]` straight into the map —
//! tensors round-trip bit-exactly, which is what makes served top-K lists
//! bit-identical to in-process predictions.
//!
//! Parsing never panics: malformed input — bad magic, unknown version,
//! truncation, checksum mismatch, inconsistent shapes, misaligned sections —
//! comes back as a typed [`SnapshotError`]. All read paths funnel through
//! [`Snapshot::open`] on a [`SnapshotSource`]; `load`/`from_bytes` are thin
//! wrappers. [`Snapshot::peek`] reads only the 64-byte prefix, so
//! fingerprint checks need not touch the rest of the file.

use std::fmt;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use msopds_autograd::Tensor;
use msopds_recdata::Dataset;

use crate::graphops::Backend;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"MSOSNAP\0";

/// The snapshot format version this build writes. Versions 1 and 2 are read.
pub const FORMAT_VERSION: u32 = 2;

/// Alignment of every v2 tensor payload (and of cache lines).
pub const SECTION_ALIGN: usize = 64;

/// Length of the fixed prefix shared by both format versions.
const PREFIX_LEN: usize = 64;

/// Which model family a snapshot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// The Het-RecSys victim ([`crate::HetRec`]).
    HetRec,
    /// The MF surrogate ([`crate::MatrixFactorization`]).
    Mf,
}

impl ModelKind {
    fn tag(self) -> u8 {
        match self {
            ModelKind::HetRec => 0,
            ModelKind::Mf => 1,
        }
    }

    fn from_tag(t: u8) -> Result<Self, SnapshotError> {
        match t {
            0 => Ok(ModelKind::HetRec),
            1 => Ok(ModelKind::Mf),
            other => Err(SnapshotError::Corrupt { context: format!("unknown model kind {other}") }),
        }
    }
}

/// Everything a snapshot records besides the parameter tensors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotHeader {
    /// Model family.
    pub kind: ModelKind,
    /// GraphOps backend the model was trained on. Serving math is
    /// backend-independent; this is provenance for experiment bookkeeping.
    pub backend: Backend,
    /// Parameter-init seed.
    pub seed: u64,
    /// Structural fingerprint of the social graph 𝒢ᵤ at fit time.
    pub social_fingerprint: u64,
    /// Structural fingerprint of the item graph 𝒢ᵢ at fit time.
    pub item_fingerprint: u64,
    /// User universe size (real + fake accounts).
    pub n_users: u64,
    /// Item universe size.
    pub n_items: u64,
    /// Global-mean rating anchor μ.
    pub mu: f64,
}

impl SnapshotHeader {
    /// True when this header's CSR fingerprints match `data`'s graphs — the
    /// invalidation test, answerable from a [`Snapshot::peek`] without
    /// reading tensor payloads.
    pub fn matches_dataset(&self, data: &Dataset) -> bool {
        let (social, item) = Snapshot::fingerprints_of(data);
        self.social_fingerprint == social && self.item_fingerprint == item
    }
}

/// A complete persisted model: header + config JSON + named tensors.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Provenance and dimensions.
    pub header: SnapshotHeader,
    /// The model's hyperparameter struct, serialized as JSON.
    pub config_json: String,
    /// Named parameter tensors in write order.
    pub tensors: Vec<(String, Tensor)>,
}

/// Where snapshot bytes come from — the single argument of
/// [`Snapshot::open`], [`Snapshot::peek`] and the serving loaders.
#[derive(Clone, Debug)]
pub enum SnapshotSource {
    /// Bytes already in memory (e.g. received over the wire).
    Owned(Vec<u8>),
    /// Read the whole file into the heap, then parse.
    File(PathBuf),
    /// Memory-map the file; v2 tensor payloads are consumed in place with
    /// zero deserialization copy. v1 files silently fall back to the heap
    /// path (their payloads are unaligned and inline).
    Mmap(PathBuf),
}

impl SnapshotSource {
    /// A [`SnapshotSource::File`] for `path`.
    pub fn file(path: impl AsRef<Path>) -> Self {
        SnapshotSource::File(path.as_ref().to_path_buf())
    }

    /// A [`SnapshotSource::Mmap`] for `path`.
    pub fn mmap(path: impl AsRef<Path>) -> Self {
        SnapshotSource::Mmap(path.as_ref().to_path_buf())
    }

    /// Reads up to `buf.len()` leading bytes without consuming the source.
    fn read_head(&self, buf: &mut [u8]) -> Result<usize, SnapshotError> {
        match self {
            SnapshotSource::Owned(b) => {
                let n = b.len().min(buf.len());
                buf[..n].copy_from_slice(&b[..n]);
                Ok(n)
            }
            SnapshotSource::File(p) | SnapshotSource::Mmap(p) => {
                let mut f = std::fs::File::open(p)?;
                let mut filled = 0;
                while filled < buf.len() {
                    let n = f.read(&mut buf[filled..])?;
                    if n == 0 {
                        break;
                    }
                    filled += n;
                }
                Ok(filled)
            }
        }
    }
}

/// Why a snapshot could not be read (or did not describe a usable model).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The 8 bytes actually found (zero-padded if the file is shorter).
        found: [u8; 8],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ended before a field could be read.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A structurally invalid field (bad UTF-8, impossible shape, a
    /// misaligned or out-of-order payload section, …).
    Corrupt {
        /// Human-readable description.
        context: String,
    },
    /// A stored FNV-1a checksum (v1 trailer, v2 header or payload section)
    /// does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// A tensor the model kind requires is absent.
    MissingTensor {
        /// The required tensor's name.
        name: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic {found:?}, expected {MAGIC:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} unsupported (this build reads ≤ {supported})"
                )
            }
            SnapshotError::Truncated { context, needed, have } => {
                write!(
                    f,
                    "snapshot truncated reading {context}: needed {needed} bytes, {have} left"
                )
            }
            SnapshotError::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapshotError::MissingTensor { name } => {
                write!(f, "snapshot is missing required tensor {name:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Incremental FNV-1a 64 — same family as the CSR fingerprint, so the whole
/// stack shares one hashing idiom.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.finish()
}

fn align_up(x: usize) -> usize {
    x.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

fn encode_backend(b: Backend) -> (u8, u16) {
    match b {
        Backend::Dense => (0, 0),
        Backend::Sparse => (1, 0),
        Backend::Sharded(k) => (2, k),
    }
}

fn decode_backend(tag: u8, reserved: u16) -> Result<Backend, SnapshotError> {
    match (tag, reserved) {
        (0, _) => Ok(Backend::Dense),
        (1, _) => Ok(Backend::Sparse),
        (2, k) if k >= 1 => Ok(Backend::Sharded(k)),
        (2, _) => Err(SnapshotError::Corrupt {
            context: "sharded backend tag with zero shard count".into(),
        }),
        (other, _) => {
            Err(SnapshotError::Corrupt { context: format!("unknown backend tag {other}") })
        }
    }
}

fn shape_ok(rank: u8, rows: usize, cols: usize) -> bool {
    rank <= 2 && !(rank == 0 && (rows != 1 || cols != 1)) && !(rank == 1 && cols != 1)
}

/// The declared shape of one tensor a [`SnapshotWriter`] will stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorDecl {
    /// Tensor name (the lookup key of [`Snapshot::tensor`]).
    pub name: String,
    /// 0 (scalar), 1 (vector) or 2 (matrix).
    pub rank: u8,
    /// Row count (1 for scalars).
    pub rows: usize,
    /// Column count (1 for scalars and vectors).
    pub cols: usize,
}

impl TensorDecl {
    /// A rank-0 declaration.
    pub fn scalar(name: impl Into<String>) -> Self {
        Self { name: name.into(), rank: 0, rows: 1, cols: 1 }
    }

    /// A rank-1 declaration of length `n`.
    pub fn vector(name: impl Into<String>, n: usize) -> Self {
        Self { name: name.into(), rank: 1, rows: n, cols: 1 }
    }

    /// A rank-2 declaration.
    pub fn matrix(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        Self { name: name.into(), rank: 2, rows, cols }
    }

    /// The declaration matching an existing tensor.
    pub fn of(name: impl Into<String>, t: &Tensor) -> Self {
        Self { name: name.into(), rank: t.rank(), rows: t.rows(), cols: t.cols() }
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.rows * self.cols
    }
}

/// One parsed v2 directory entry.
#[derive(Clone, Debug)]
struct DirEntry {
    name: String,
    rank: u8,
    rows: usize,
    cols: usize,
    /// Absolute, 64-aligned payload position.
    offset: usize,
    /// FNV-1a over `[payload_start, end)` — leading padding included.
    checksum: u64,
    /// End of the previous section (header region for the first entry).
    payload_start: usize,
}

impl DirEntry {
    fn numel(&self) -> usize {
        self.rows * self.cols
    }

    fn end(&self) -> usize {
        self.offset + self.numel() * 8
    }

    fn shape(&self) -> Vec<usize> {
        match self.rank {
            0 => vec![],
            1 => vec![self.rows],
            _ => vec![self.rows, self.cols],
        }
    }
}

/// Appends the shared 64-byte prefix.
fn write_prefix(out: &mut Vec<u8>, version: u32, header: &SnapshotHeader) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(header.kind.tag());
    let (tag, reserved) = encode_backend(header.backend);
    out.push(tag);
    out.extend_from_slice(&reserved.to_le_bytes());
    out.extend_from_slice(&header.seed.to_le_bytes());
    out.extend_from_slice(&header.social_fingerprint.to_le_bytes());
    out.extend_from_slice(&header.item_fingerprint.to_le_bytes());
    out.extend_from_slice(&header.n_users.to_le_bytes());
    out.extend_from_slice(&header.n_items.to_le_bytes());
    out.extend_from_slice(&header.mu.to_le_bytes());
    debug_assert_eq!(out.len() % PREFIX_LEN, 0, "prefix must be exactly {PREFIX_LEN} bytes");
}

/// Reads the 52 prefix bytes after magic + version.
fn read_header_fields(r: &mut Reader<'_>) -> Result<SnapshotHeader, SnapshotError> {
    let kind = ModelKind::from_tag(u8::from_le_bytes(r.take::<1>("model kind")?))?;
    let backend_tag = u8::from_le_bytes(r.take::<1>("backend tag")?);
    let reserved = u16::from_le_bytes(r.take::<2>("reserved")?);
    let backend = decode_backend(backend_tag, reserved)?;
    let seed = u64::from_le_bytes(r.take::<8>("seed")?);
    let social_fingerprint = u64::from_le_bytes(r.take::<8>("social fingerprint")?);
    let item_fingerprint = u64::from_le_bytes(r.take::<8>("item fingerprint")?);
    let n_users = u64::from_le_bytes(r.take::<8>("n_users")?);
    let n_items = u64::from_le_bytes(r.take::<8>("n_items")?);
    let mu = f64::from_le_bytes(r.take::<8>("mu")?);
    Ok(SnapshotHeader {
        kind,
        backend,
        seed,
        social_fingerprint,
        item_fingerprint,
        n_users,
        n_items,
        mu,
    })
}

/// v2 header-region length for the given config / declarations.
fn header_region_len(config_len: usize, decls: &[TensorDecl]) -> usize {
    PREFIX_LEN
        + 4
        + config_len
        + 4
        + decls.iter().map(|d| 35 + d.name.len()).sum::<usize>()
        + 8
}

/// 64-aligned payload offsets and the exact total file length.
fn payload_offsets(header_len: usize, decls: &[TensorDecl]) -> (Vec<usize>, usize) {
    let mut offsets = Vec::with_capacity(decls.len());
    let mut end = header_len;
    for d in decls {
        let off = align_up(end);
        offsets.push(off);
        end = off + d.numel() * 8;
    }
    (offsets, if decls.is_empty() { header_len } else { end })
}

/// The complete v2 header region: prefix, config, directory, checksum.
fn build_header_region(
    header: &SnapshotHeader,
    config_json: &str,
    decls: &[TensorDecl],
    offsets: &[usize],
    checksums: &[u64],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(header_region_len(config_json.len(), decls));
    write_prefix(&mut out, 2, header);
    out.extend_from_slice(&(config_json.len() as u32).to_le_bytes());
    out.extend_from_slice(config_json.as_bytes());
    out.extend_from_slice(&(decls.len() as u32).to_le_bytes());
    for ((d, &off), &ck) in decls.iter().zip(offsets).zip(checksums) {
        out.extend_from_slice(&(d.name.len() as u16).to_le_bytes());
        out.extend_from_slice(d.name.as_bytes());
        out.push(d.rank);
        out.extend_from_slice(&(d.rows as u64).to_le_bytes());
        out.extend_from_slice(&(d.cols as u64).to_le_bytes());
        out.extend_from_slice(&(off as u64).to_le_bytes());
        out.extend_from_slice(&ck.to_le_bytes());
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

impl Snapshot {
    /// The fingerprints a snapshot of `data` would carry — used both at save
    /// time and by [`Snapshot::matches_dataset`].
    pub fn fingerprints_of(data: &Dataset) -> (u64, u64) {
        (data.social.fingerprint(), data.item_graph.fingerprint())
    }

    /// Looks up a tensor by name.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Looks up a tensor by name, failing with [`SnapshotError::MissingTensor`].
    pub fn require(&self, name: &str) -> Result<&Tensor, SnapshotError> {
        self.tensor(name).ok_or_else(|| SnapshotError::MissingTensor { name: name.to_string() })
    }

    /// True when the snapshot's CSR fingerprints match `data`'s graphs — the
    /// invalidation test: a served model is only valid for the exact graph
    /// structure it was fitted on (DESIGN.md §12).
    pub fn matches_dataset(&self, data: &Dataset) -> bool {
        self.header.matches_dataset(data)
    }

    /// Serializes the snapshot into the current (version 2) byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let decls: Vec<TensorDecl> =
            self.tensors.iter().map(|(n, t)| TensorDecl::of(n.clone(), t)).collect();
        let header_len = header_region_len(self.config_json.len(), &decls);
        let (offsets, total) = payload_offsets(header_len, &decls);
        let mut out = vec![0u8; header_len];
        out.reserve(total - header_len);
        let mut checksums = Vec::with_capacity(decls.len());
        let mut prev_end = header_len;
        for ((_, t), &off) in self.tensors.iter().zip(&offsets) {
            out.resize(off, 0);
            out.extend_from_slice(&t.to_le_bytes());
            checksums.push(fnv1a(&out[prev_end..]));
            prev_end = out.len();
        }
        debug_assert_eq!(out.len(), total);
        let region = build_header_region(&self.header, &self.config_json, &decls, &offsets, &checksums);
        out[..header_len].copy_from_slice(&region);
        out
    }

    /// Serializes into the legacy version-1 stream (inline payloads, single
    /// trailing checksum). Kept for read-compat tests and tooling that must
    /// produce files for older builds.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let payload: usize =
            self.tensors.iter().map(|(n, t)| 2 + n.len() + 1 + 16 + t.numel() * 8).sum::<usize>()
                + PREFIX_LEN
                + self.config_json.len();
        let mut out = Vec::with_capacity(payload + 16);
        write_prefix(&mut out, 1, &self.header);
        out.extend_from_slice(&(self.config_json.len() as u32).to_le_bytes());
        out.extend_from_slice(self.config_json.as_bytes());
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for (name, t) in &self.tensors {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(t.rank());
            out.extend_from_slice(&(t.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(t.cols() as u64).to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses a snapshot from bytes (version 1 or 2), validating magic,
    /// version, structure and every checksum. Never panics on malformed
    /// input. Equivalent to [`Snapshot::open`] on [`SnapshotSource::Owned`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take::<8>("magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        match u32::from_le_bytes(r.take::<4>("format version")?) {
            1 => parse_v1(bytes),
            2 => parse_v2_full(bytes),
            found => {
                Err(SnapshotError::UnsupportedVersion { found, supported: FORMAT_VERSION })
            }
        }
    }

    /// The single full-parse entry point: every loader routes here.
    ///
    /// `Owned`/`File` parse on the heap; `Mmap` maps v2 files, verifies
    /// payloads, then materializes owned tensors (use [`MappedSnapshot`]
    /// directly to keep the zero-copy view). A v1 file behind `Mmap` falls
    /// back to the heap path.
    pub fn open(source: &SnapshotSource) -> Result<Self, SnapshotError> {
        match source {
            SnapshotSource::Owned(b) => Self::from_bytes(b),
            SnapshotSource::File(p) => Self::from_bytes(&std::fs::read(p)?),
            SnapshotSource::Mmap(p) => match Self::peek_version(source)? {
                2 => {
                    let mapped = MappedSnapshot::open(p)?;
                    mapped.verify_payloads()?;
                    Ok(mapped.to_owned_snapshot())
                }
                _ => Self::from_bytes(&std::fs::read(p)?),
            },
        }
    }

    /// Reads only the 64-byte prefix and returns the header — O(1) in model
    /// size, so fingerprint checks ([`SnapshotHeader::matches_dataset`],
    /// hot-swap guards) need not read tensor payloads.
    ///
    /// The prefix is *not* covered by a checksum on its own, so a peeked
    /// header is unauthenticated; full validation happens at
    /// [`Snapshot::open`] time.
    pub fn peek(source: &SnapshotSource) -> Result<SnapshotHeader, SnapshotError> {
        let mut buf = [0u8; PREFIX_LEN];
        let n = source.read_head(&mut buf)?;
        let mut r = Reader { bytes: &buf[..n], pos: 0 };
        let magic = r.take::<8>("magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(r.take::<4>("format version")?);
        if !(1..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        read_header_fields(&mut r)
    }

    /// Reads only magic + version (12 bytes). Returns the raw stored version
    /// without range-checking it, so callers can dispatch (e.g. mmap for 2,
    /// heap for 1) and let the full parser reject unknown versions.
    pub fn peek_version(source: &SnapshotSource) -> Result<u32, SnapshotError> {
        let mut buf = [0u8; 12];
        let n = source.read_head(&mut buf)?;
        let mut r = Reader { bytes: &buf[..n], pos: 0 };
        let magic = r.take::<8>("magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        Ok(u32::from_le_bytes(r.take::<4>("format version")?))
    }

    /// Writes the snapshot to `path` (atomically: temp file + rename, so a
    /// crash mid-write never leaves a half-snapshot behind).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and parses a snapshot from `path` — a thin wrapper over
    /// [`Snapshot::open`] with a [`SnapshotSource::File`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::open(&SnapshotSource::file(path))
    }
}

/// The legacy version-1 parser: trailing checksum first, then inline tensors.
fn parse_v1(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut r = Reader { bytes, pos: 12 };
    // The checksum guards everything after the (already validated) magic
    // and version, so verify it before trusting any length field.
    if bytes.len() < r.pos + 8 {
        return Err(SnapshotError::Truncated {
            context: "checksum trailer",
            needed: 8,
            have: bytes.len().saturating_sub(r.pos),
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte trailer"));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    r.bytes = &bytes[..body_end];

    let header = read_header_fields(&mut r)?;
    let config_len = u32::from_le_bytes(r.take::<4>("config length")?) as usize;
    let config_bytes = r.slice(config_len, "config JSON")?;
    let config_json = std::str::from_utf8(config_bytes)
        .map_err(|_| SnapshotError::Corrupt { context: "config JSON is not UTF-8".into() })?
        .to_string();

    let count = u32::from_le_bytes(r.take::<4>("tensor count")?) as usize;
    let mut tensors = Vec::with_capacity(count.min(64));
    for i in 0..count {
        let name_len = u16::from_le_bytes(r.take::<2>("tensor name length")?) as usize;
        let name = std::str::from_utf8(r.slice(name_len, "tensor name")?)
            .map_err(|_| SnapshotError::Corrupt {
                context: format!("tensor {i} name is not UTF-8"),
            })?
            .to_string();
        let rank = u8::from_le_bytes(r.take::<1>("tensor rank")?);
        let rows = u64::from_le_bytes(r.take::<8>("tensor rows")?) as usize;
        let cols = u64::from_le_bytes(r.take::<8>("tensor cols")?) as usize;
        if !shape_ok(rank, rows, cols) {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "tensor {name:?} has impossible shape rank={rank} [{rows}, {cols}]"
                ),
            });
        }
        let numel = rows.checked_mul(cols).ok_or_else(|| SnapshotError::Corrupt {
            context: format!("tensor {name:?} shape overflows"),
        })?;
        let data = r.slice(numel * 8, "tensor data")?;
        let shape: &[usize] = match rank {
            0 => &[],
            1 => &[rows],
            _ => &[rows, cols],
        };
        let t = Tensor::from_le_bytes(data, shape).ok_or_else(|| SnapshotError::Corrupt {
            context: format!("tensor {name:?} payload/shape mismatch"),
        })?;
        tensors.push((name, t));
    }
    if r.pos != r.bytes.len() {
        return Err(SnapshotError::Corrupt {
            context: format!("{} trailing bytes after the last tensor", r.bytes.len() - r.pos),
        });
    }
    Ok(Snapshot { header, config_json, tensors })
}

/// Parsed v2 header region plus layout facts; payloads untouched.
struct ParsedV2 {
    header: SnapshotHeader,
    config_json: String,
    entries: Vec<DirEntry>,
    total_len: usize,
}

/// Parses and validates the v2 header region (prefix, config, directory,
/// header checksum) and checks the declared layout against `bytes.len()`
/// — O(header), independent of payload size.
fn parse_v2_header(bytes: &[u8]) -> Result<ParsedV2, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take::<8>("magic")?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic { found: magic });
    }
    match u32::from_le_bytes(r.take::<4>("format version")?) {
        2 => {}
        1 => {
            return Err(SnapshotError::Corrupt {
                context: "format version 1 payloads are inline and unaligned; \
                          re-save as version 2 or load through the heap path"
                    .into(),
            })
        }
        found => {
            return Err(SnapshotError::UnsupportedVersion { found, supported: FORMAT_VERSION })
        }
    }
    let header = read_header_fields(&mut r)?;
    let config_len = u32::from_le_bytes(r.take::<4>("config length")?) as usize;
    let config_bytes = r.slice(config_len, "config JSON")?;
    let config_json = std::str::from_utf8(config_bytes)
        .map_err(|_| SnapshotError::Corrupt { context: "config JSON is not UTF-8".into() })?
        .to_string();

    let count = u32::from_le_bytes(r.take::<4>("tensor count")?) as usize;
    let mut raw = Vec::with_capacity(count.min(64));
    for i in 0..count {
        let name_len = u16::from_le_bytes(r.take::<2>("tensor name length")?) as usize;
        let name = std::str::from_utf8(r.slice(name_len, "tensor name")?)
            .map_err(|_| SnapshotError::Corrupt {
                context: format!("tensor {i} name is not UTF-8"),
            })?
            .to_string();
        let rank = u8::from_le_bytes(r.take::<1>("tensor rank")?);
        let rows = u64::from_le_bytes(r.take::<8>("tensor rows")?) as usize;
        let cols = u64::from_le_bytes(r.take::<8>("tensor cols")?) as usize;
        let offset = u64::from_le_bytes(r.take::<8>("tensor offset")?) as usize;
        let checksum = u64::from_le_bytes(r.take::<8>("tensor checksum")?);
        raw.push((name, rank, rows, cols, offset, checksum));
    }
    let computed = fnv1a(&bytes[..r.pos]);
    let stored = u64::from_le_bytes(r.take::<8>("header checksum")?);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let header_len = r.pos;

    // The directory is now authenticated; validate shapes and the section
    // layout (monotone, 64-aligned, gap-free up to padding).
    let mut entries = Vec::with_capacity(raw.len());
    let mut prev_end = header_len;
    for (name, rank, rows, cols, offset, checksum) in raw {
        if !shape_ok(rank, rows, cols) {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "tensor {name:?} has impossible shape rank={rank} [{rows}, {cols}]"
                ),
            });
        }
        let numel = rows.checked_mul(cols).ok_or_else(|| SnapshotError::Corrupt {
            context: format!("tensor {name:?} shape overflows"),
        })?;
        let expected = align_up(prev_end);
        if offset != expected {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "tensor {name:?} payload at byte {offset}, expected the \
                     {SECTION_ALIGN}-aligned offset {expected}"
                ),
            });
        }
        let end = numel
            .checked_mul(8)
            .and_then(|b| offset.checked_add(b))
            .ok_or_else(|| SnapshotError::Corrupt {
                context: format!("tensor {name:?} payload extent overflows"),
            })?;
        entries.push(DirEntry { name, rank, rows, cols, offset, checksum, payload_start: prev_end });
        prev_end = end;
    }
    let total_len = if entries.is_empty() { header_len } else { prev_end };
    if bytes.len() < total_len {
        return Err(SnapshotError::Truncated {
            context: "tensor payload section",
            needed: total_len,
            have: bytes.len(),
        });
    }
    if bytes.len() > total_len {
        return Err(SnapshotError::Corrupt {
            context: format!("{} trailing bytes after the last payload", bytes.len() - total_len),
        });
    }
    Ok(ParsedV2 { header, config_json, entries, total_len })
}

/// Full v2 parse: header region plus payload checksums and tensor copies.
fn parse_v2_full(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let parsed = parse_v2_header(bytes)?;
    let mut tensors = Vec::with_capacity(parsed.entries.len());
    for e in &parsed.entries {
        let computed = fnv1a(&bytes[e.payload_start..e.end()]);
        if computed != e.checksum {
            return Err(SnapshotError::ChecksumMismatch { stored: e.checksum, computed });
        }
        let t = Tensor::from_le_bytes(&bytes[e.offset..e.end()], &e.shape()).ok_or_else(|| {
            SnapshotError::Corrupt {
                context: format!("tensor {:?} payload/shape mismatch", e.name),
            }
        })?;
        tensors.push((e.name.clone(), t));
    }
    Ok(Snapshot { header: parsed.header, config_json: parsed.config_json, tensors })
}

/// A bounds-checked little-endian cursor; every read failure carries the field
/// being read and the byte deficit.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], SnapshotError> {
        let s = self.slice(N, context)?;
        Ok(s.try_into().expect("slice of requested length"))
    }

    fn slice(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let have = self.bytes.len().saturating_sub(self.pos);
        if have < n {
            return Err(SnapshotError::Truncated { context, needed: n, have });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Hand-rolled read-only `mmap`, following the workspace's no-libc-crate
/// precedent (serve-net's raw socket FFI): the symbols resolve through the
/// C library `std` already links on unix.
#[cfg(unix)]
mod mapping {
    use std::os::fd::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file. Page-aligned base, so
    /// any 64-aligned offset into it is `f64`-aligned.
    pub(super) struct MmapRegion {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The mapping is PROT_READ and owned: sharing &self across threads only
    // ever reads immutable pages.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps `len` bytes of `file`, or `None` when the kernel refuses
        /// (callers fall back to an aligned heap read).
        pub(super) fn map(file: &std::fs::File, len: usize) -> Option<Self> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return None;
            }
            Some(Self { ptr, len })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// The bytes behind a [`MappedSnapshot`]: a file mapping when the platform
/// grants one, else a `u64`-backed heap buffer. Both keep the base 8-byte
/// aligned (`Vec<u8>` would not), which together with 64-aligned section
/// offsets makes the `&[f64]` payload casts sound.
enum Backing {
    #[cfg(unix)]
    Mapped(mapping::MmapRegion),
    Heap {
        buf: Vec<u64>,
        len: usize,
    },
}

impl Backing {
    fn map_or_read(file: &std::fs::File, len: usize) -> Result<Self, SnapshotError> {
        #[cfg(unix)]
        if let Some(m) = mapping::MmapRegion::map(file, len) {
            return Ok(Backing::Mapped(m));
        }
        let mut buf = vec![0u64; len.div_ceil(8)];
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        let mut f = file;
        f.read_exact(dst)?;
        Ok(Backing::Heap { buf, len })
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Heap { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            Backing::Heap { .. } => false,
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            #[cfg(unix)]
            Backing::Mapped(_) => 0,
            Backing::Heap { buf, .. } => buf.len() * 8,
        }
    }
}

/// A zero-copy view of one tensor inside a [`MappedSnapshot`].
#[derive(Clone, Copy)]
pub struct TensorView<'a> {
    rank: u8,
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> TensorView<'a> {
    /// 0, 1 or 2.
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// Row count (1 for scalars).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count (1 for scalars and vectors).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The row-major payload, straight out of the mapping — no copy.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// An owned copy as a [`Tensor`] (bit-exact).
    pub fn to_tensor(&self) -> Tensor {
        let shape: &[usize] = match self.rank {
            0 => &[],
            1 => &[self.rows],
            _ => &[self.rows, self.cols],
        };
        Tensor::from_vec(self.data.to_vec(), shape)
    }
}

/// A version-2 snapshot consumed in place: the header region is parsed and
/// authenticated at [`MappedSnapshot::open`] time (O(header), flat in model
/// size), while tensor payloads stay in the file mapping and are handed out
/// as [`TensorView`]s without deserialization.
///
/// Payloads are *not* checksummed at open time — call
/// [`MappedSnapshot::verify_payloads`] when integrity matters more than
/// latency. Requires a little-endian host (payloads are IEEE-754 `f64` LE);
/// v1 files are refused — route them through [`Snapshot::open`].
pub struct MappedSnapshot {
    header: SnapshotHeader,
    config_json: String,
    entries: Vec<DirEntry>,
    backing: Backing,
}

impl MappedSnapshot {
    /// Maps `path` and validates its header region (magic, version = 2,
    /// directory shapes/offsets/alignment, header checksum, exact file
    /// length). Falls back to an aligned heap read when `mmap` is
    /// unavailable — the API contract is unchanged, only residency differs.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        if cfg!(target_endian = "big") {
            return Err(SnapshotError::Corrupt {
                context: "zero-copy snapshots require a little-endian host".into(),
            });
        }
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let backing = Backing::map_or_read(&file, len)?;
        let parsed = parse_v2_header(backing.bytes())?;
        debug_assert_eq!(parsed.total_len, len);
        Ok(Self {
            header: parsed.header,
            config_json: parsed.config_json,
            entries: parsed.entries,
            backing,
        })
    }

    /// Provenance and dimensions.
    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// The model's hyperparameter JSON.
    pub fn config_json(&self) -> &str {
        &self.config_json
    }

    /// Tensor names in directory order.
    pub fn tensor_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// A zero-copy view of the named tensor, if present.
    pub fn view(&self, name: &str) -> Option<TensorView<'_>> {
        let e = self.entries.iter().find(|e| e.name == name)?;
        let bytes = &self.backing.bytes()[e.offset..e.end()];
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "section alignment violated");
        let data = unsafe {
            std::slice::from_raw_parts(bytes.as_ptr() as *const f64, e.numel())
        };
        Some(TensorView { rank: e.rank, rows: e.rows, cols: e.cols, data })
    }

    /// Like [`MappedSnapshot::view`], failing with
    /// [`SnapshotError::MissingTensor`].
    pub fn require_view(&self, name: &str) -> Result<TensorView<'_>, SnapshotError> {
        self.view(name).ok_or_else(|| SnapshotError::MissingTensor { name: name.to_string() })
    }

    /// Verifies every payload section's FNV-1a checksum (padding included) —
    /// the full-integrity pass [`MappedSnapshot::open`] deliberately skips.
    pub fn verify_payloads(&self) -> Result<(), SnapshotError> {
        let bytes = self.backing.bytes();
        for e in &self.entries {
            let computed = fnv1a(&bytes[e.payload_start..e.end()]);
            if computed != e.checksum {
                return Err(SnapshotError::ChecksumMismatch { stored: e.checksum, computed });
            }
        }
        Ok(())
    }

    /// Materializes an owned [`Snapshot`] (copies every payload).
    pub fn to_owned_snapshot(&self) -> Snapshot {
        let tensors = self
            .entries
            .iter()
            .map(|e| {
                let v = self.view(&e.name).expect("entry name views itself");
                (e.name.clone(), v.to_tensor())
            })
            .collect();
        Snapshot { header: self.header, config_json: self.config_json.clone(), tensors }
    }

    /// True when payloads live in a file mapping rather than the heap.
    pub fn is_zero_copy(&self) -> bool {
        self.backing.is_mapped()
    }

    /// Heap bytes held for payloads: 0 when mapped, the buffer size on the
    /// fallback path. Directory strings are excluded (O(header)).
    pub fn heap_resident_bytes(&self) -> usize {
        self.backing.heap_bytes()
    }
}

/// Streams a version-2 snapshot to disk without materializing any tensor:
/// declare shapes up front, then [`SnapshotWriter::write`] values in
/// declaration order (row-major, in as many calls as convenient — a
/// million-user embedding goes out chunk by chunk). [`SnapshotWriter::finish`]
/// back-patches the directory checksums and atomically renames into place.
pub struct SnapshotWriter {
    out: std::io::BufWriter<std::fs::File>,
    tmp: PathBuf,
    path: PathBuf,
    header: SnapshotHeader,
    config_json: String,
    decls: Vec<TensorDecl>,
    offsets: Vec<usize>,
    pos: usize,
    current: usize,
    remaining: usize,
    open: bool,
    fnv: Fnv,
    checksums: Vec<u64>,
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot at `path` (via a `.snap.tmp` sibling). The header
    /// region is reserved with placeholder checksums and rewritten at
    /// [`SnapshotWriter::finish`] time.
    pub fn create(
        path: impl AsRef<Path>,
        header: SnapshotHeader,
        config_json: &str,
        decls: Vec<TensorDecl>,
    ) -> Result<Self, SnapshotError> {
        for d in &decls {
            if !shape_ok(d.rank, d.rows, d.cols) {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "declared tensor {:?} has impossible shape rank={} [{}, {}]",
                        d.name, d.rank, d.rows, d.cols
                    ),
                });
            }
        }
        let path = path.as_ref().to_path_buf();
        let tmp = path.with_extension("snap.tmp");
        let header_len = header_region_len(config_json.len(), &decls);
        let (offsets, _total) = payload_offsets(header_len, &decls);
        let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        out.write_all(&vec![0u8; header_len])?;
        Ok(Self {
            out,
            tmp,
            path,
            header,
            config_json: config_json.to_string(),
            decls,
            offsets,
            pos: header_len,
            current: 0,
            remaining: 0,
            open: false,
            fnv: Fnv::new(),
            checksums: Vec::new(),
            buf: Vec::with_capacity(8 * 4096),
        })
    }

    /// Opens the next undrained tensor section (writing its leading
    /// padding); returns false when all declared tensors are complete.
    fn ensure_open(&mut self) -> Result<bool, SnapshotError> {
        while !self.open {
            if self.current >= self.decls.len() {
                return Ok(false);
            }
            let off = self.offsets[self.current];
            let pad = off - self.pos;
            let zeros = [0u8; SECTION_ALIGN];
            self.fnv.update(&zeros[..pad]);
            self.out.write_all(&zeros[..pad])?;
            self.pos = off;
            self.remaining = self.decls[self.current].numel();
            self.open = true;
            if self.remaining == 0 {
                self.close_current();
            }
        }
        Ok(true)
    }

    fn close_current(&mut self) {
        self.checksums.push(self.fnv.finish());
        self.fnv = Fnv::new();
        self.current += 1;
        self.open = false;
    }

    /// Appends `vals` to the payload stream, crossing tensor boundaries in
    /// declaration order. Fails with [`SnapshotError::Corrupt`] when more
    /// values arrive than were declared.
    pub fn write(&mut self, mut vals: &[f64]) -> Result<(), SnapshotError> {
        while !vals.is_empty() {
            if !self.ensure_open()? {
                return Err(SnapshotError::Corrupt {
                    context: "snapshot writer received more values than declared".into(),
                });
            }
            let take = vals.len().min(self.remaining);
            for chunk in vals[..take].chunks(4096) {
                self.buf.clear();
                for v in chunk {
                    self.buf.extend_from_slice(&v.to_le_bytes());
                }
                self.fnv.update(&self.buf);
                self.out.write_all(&self.buf)?;
            }
            self.pos += take * 8;
            self.remaining -= take;
            if self.remaining == 0 {
                self.close_current();
            }
            vals = &vals[take..];
        }
        Ok(())
    }

    /// Convenience: streams a whole tensor (must align with the declaration
    /// boundary, i.e. the previous tensor is complete).
    pub fn write_tensor(&mut self, t: &Tensor) -> Result<(), SnapshotError> {
        self.write(t.data())
    }

    /// Seals the file: verifies every declared tensor was fully written,
    /// rewrites the header region with the real checksums, and renames the
    /// temp file over `path`.
    pub fn finish(mut self) -> Result<(), SnapshotError> {
        if self.ensure_open()? {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "snapshot writer finished with tensor {:?} missing {} values",
                    self.decls[self.current].name, self.remaining
                ),
            });
        }
        debug_assert_eq!(self.checksums.len(), self.decls.len());
        let region = build_header_region(
            &self.header,
            &self.config_json,
            &self.decls,
            &self.offsets,
            &self.checksums,
        );
        self.out.flush()?;
        let mut file = self
            .out
            .into_inner()
            .map_err(|e| SnapshotError::Io(std::io::Error::other(e.to_string())))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&region)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::HetRec,
                backend: Backend::Sparse,
                seed: 42,
                social_fingerprint: 0xdead,
                item_fingerprint: 0xbeef,
                n_users: 3,
                n_items: 2,
                mu: 3.25,
            },
            config_json: "{\"dim\":2}".to_string(),
            tensors: vec![
                ("a".to_string(), Tensor::from_vec(vec![1.0, -0.0, f64::MIN, 4.5e-300], &[2, 2])),
                ("b".to_string(), Tensor::from_vec(vec![0.5, 1.5, 2.5], &[3])),
                ("s".to_string(), Tensor::scalar(7.0)),
            ],
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("msopds-snap-{tag}-{}.snap", std::process::id()))
    }

    fn assert_same(a: &Snapshot, b: &Snapshot) {
        assert_eq!(a.header, b.header);
        assert_eq!(a.config_json, b.config_json);
        assert_eq!(a.tensors.len(), b.tensors.len());
        for ((n1, t1), (n2, t2)) in a.tensors.iter().zip(&b.tensors) {
            assert_eq!(n1, n2);
            assert!(t1.bit_eq(t2), "tensor {n1} changed bits");
        }
    }

    #[test]
    fn byte_round_trip_is_bit_exact() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        assert_same(&snap, &Snapshot::from_bytes(&bytes).unwrap());
    }

    #[test]
    fn v1_byte_round_trip_still_loads() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes_v1();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        assert_same(&snap, &Snapshot::from_bytes(&bytes).unwrap());
    }

    #[test]
    fn file_round_trip() {
        let snap = tiny_snapshot();
        let path = temp_path("file");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.header, snap.header);
        assert!(back.tensor("a").unwrap().bit_eq(snap.tensor("a").unwrap()));
    }

    #[test]
    fn open_reads_every_source_kind() {
        let snap = tiny_snapshot();
        let path = temp_path("open");
        snap.save(&path).unwrap();
        let owned = Snapshot::open(&SnapshotSource::Owned(snap.to_bytes())).unwrap();
        let file = Snapshot::open(&SnapshotSource::file(&path)).unwrap();
        let mapped = Snapshot::open(&SnapshotSource::mmap(&path)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_same(&snap, &owned);
        assert_same(&snap, &file);
        assert_same(&snap, &mapped);
    }

    #[test]
    fn open_mmap_falls_back_for_v1_files() {
        let snap = tiny_snapshot();
        let path = temp_path("v1-compat");
        std::fs::write(&path, snap.to_bytes_v1()).unwrap();
        assert!(matches!(MappedSnapshot::open(&path), Err(SnapshotError::Corrupt { .. })));
        let back = Snapshot::open(&SnapshotSource::mmap(&path)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_same(&snap, &back);
    }

    #[test]
    fn peek_reads_header_without_payloads() {
        let snap = tiny_snapshot();
        for bytes in [snap.to_bytes(), snap.to_bytes_v1()] {
            // The prefix alone is enough — hand peek a 64-byte stub.
            let stub = SnapshotSource::Owned(bytes[..64].to_vec());
            assert_eq!(Snapshot::peek(&stub).unwrap(), snap.header);
        }
        assert_eq!(
            Snapshot::peek_version(&SnapshotSource::Owned(snap.to_bytes())).unwrap(),
            2
        );
        let mut short = snap.to_bytes();
        short.truncate(40);
        assert!(matches!(
            Snapshot::peek(&SnapshotSource::Owned(short)),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn sharded_backend_round_trips_in_both_formats() {
        let mut snap = tiny_snapshot();
        snap.header.backend = Backend::Sharded(6);
        for bytes in [snap.to_bytes(), snap.to_bytes_v1()] {
            let back = Snapshot::from_bytes(&bytes).unwrap();
            assert_eq!(back.header.backend, Backend::Sharded(6));
        }
        assert_eq!(
            Snapshot::peek(&SnapshotSource::Owned(snap.to_bytes())).unwrap().backend,
            Backend::Sharded(6)
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        for bytes in [tiny_snapshot().to_bytes(), tiny_snapshot().to_bytes_v1()] {
            for cut in 0..bytes.len() {
                let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(
                        err,
                        SnapshotError::Truncated { .. }
                            | SnapshotError::BadMagic { .. }
                            | SnapshotError::ChecksumMismatch { .. }
                    ),
                    "cut at {cut} gave unexpected error {err}"
                );
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let reference = tiny_snapshot().to_bytes();
        // Past the header region every byte (padding included) is covered by
        // exactly one payload-section checksum.
        let first_payload = align_up(header_region_len(
            tiny_snapshot().config_json.len(),
            &tiny_snapshot()
                .tensors
                .iter()
                .map(|(n, t)| TensorDecl::of(n.clone(), t))
                .collect::<Vec<_>>(),
        ));
        for pos in 0..reference.len() {
            let mut bytes = reference.clone();
            bytes[pos] ^= 0x40;
            let err = Snapshot::from_bytes(&bytes)
                .err()
                .unwrap_or_else(|| panic!("flip at {pos} went undetected"));
            if pos >= first_payload {
                assert!(
                    matches!(err, SnapshotError::ChecksumMismatch { .. }),
                    "payload flip at {pos} gave {err}"
                );
            }
        }
    }

    #[test]
    fn misaligned_section_offset_is_corrupt() {
        let snap = tiny_snapshot();
        let mut bytes = snap.to_bytes();
        // Directory entry 0's offset field position is fully determined by
        // the layout: prefix + config(len+json) + count + name(len+"a") +
        // rank + rows + cols.
        let field = 64 + 4 + snap.config_json.len() + 4 + 2 + 1 + 1 + 8 + 8;
        let stored = u64::from_le_bytes(bytes[field..field + 8].try_into().unwrap());
        bytes[field..field + 8].copy_from_slice(&(stored + 8).to_le_bytes());
        // Re-authenticate the header so only the alignment rule can object.
        let decls: Vec<TensorDecl> =
            snap.tensors.iter().map(|(n, t)| TensorDecl::of(n.clone(), t)).collect();
        let header_len = header_region_len(snap.config_json.len(), &decls);
        let ck = fnv1a(&bytes[..header_len - 8]);
        bytes[header_len - 8..header_len].copy_from_slice(&ck.to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "got {err}");
        let path = temp_path("misaligned");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedSnapshot::open(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(mapped, Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn mapped_views_match_heap_tensors() {
        let snap = tiny_snapshot();
        let path = temp_path("mmap");
        snap.save(&path).unwrap();
        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(mapped.header(), &snap.header);
        assert_eq!(mapped.config_json(), snap.config_json);
        assert_eq!(mapped.tensor_names().collect::<Vec<_>>(), ["a", "b", "s"]);
        for (name, t) in &snap.tensors {
            let v = mapped.require_view(name).unwrap();
            assert_eq!(v.data().as_ptr() as usize % 8, 0, "unaligned view");
            assert_eq!((v.rank(), v.rows(), v.cols()), (t.rank(), t.rows(), t.cols()));
            assert!(v.to_tensor().bit_eq(t), "view of {name} changed bits");
        }
        mapped.verify_payloads().unwrap();
        #[cfg(unix)]
        {
            assert!(mapped.is_zero_copy());
            assert_eq!(mapped.heap_resident_bytes(), 0);
        }
        assert!(matches!(
            mapped.require_view("nope"),
            Err(SnapshotError::MissingTensor { .. })
        ));
        assert_same(&snap, &mapped.to_owned_snapshot());
        // A payload flip is invisible to open() but caught by the opt-in pass.
        let mut bytes = snap.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let tampered = MappedSnapshot::open(&path).unwrap();
        assert!(matches!(
            tampered.verify_payloads(),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_streams_byte_identical_files() {
        let snap = tiny_snapshot();
        let path = temp_path("writer");
        let decls: Vec<TensorDecl> =
            snap.tensors.iter().map(|(n, t)| TensorDecl::of(n.clone(), t)).collect();
        let mut w =
            SnapshotWriter::create(&path, snap.header, &snap.config_json, decls).unwrap();
        // Deliberately ragged writes: cross tensor boundaries mid-call.
        let all: Vec<f64> =
            snap.tensors.iter().flat_map(|(_, t)| t.data().iter().copied()).collect();
        w.write(&all[..3]).unwrap();
        w.write(&all[3..5]).unwrap();
        w.write(&all[5..]).unwrap();
        w.finish().unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, snap.to_bytes(), "streamed file differs from to_bytes");
    }

    #[test]
    fn writer_rejects_wrong_cardinality() {
        let snap = tiny_snapshot();
        let path = temp_path("writer-err");
        let decls: Vec<TensorDecl> =
            snap.tensors.iter().map(|(n, t)| TensorDecl::of(n.clone(), t)).collect();
        let mut w =
            SnapshotWriter::create(&path, snap.header, &snap.config_json, decls.clone()).unwrap();
        w.write(&[0.0; 4]).unwrap();
        assert!(matches!(w.finish(), Err(SnapshotError::Corrupt { .. })));
        let mut w =
            SnapshotWriter::create(&path, snap.header, &snap.config_json, decls).unwrap();
        assert!(matches!(w.write(&[0.0; 9]), Err(SnapshotError::Corrupt { .. })));
        std::fs::remove_file(path.with_extension("snap.tmp")).ok();
    }

    #[test]
    fn missing_tensor_is_typed() {
        let snap = tiny_snapshot();
        assert!(snap.tensor("a").is_some());
        assert!(matches!(
            snap.require("nope"),
            Err(SnapshotError::MissingTensor { name }) if name == "nope"
        ));
    }
}
