//! # msopds-recsys
//!
//! Recommender models for the MSOPDS reproduction:
//!
//! * [`HetRec`] — the *victim* heterogeneous recommender (ConsisRec-style
//!   attention GNN, §VI-A.1) retrained from scratch on poisoned data for
//!   evaluation;
//! * [`pds`] — the Progressive Differentiable Surrogate (§IV-C): an unrolled,
//!   importance-vector-modulated training run recorded on the autodiff tape;
//! * [`MatrixFactorization`] — the MF surrogate for the PGA baseline;
//! * [`losses`] — the IA (eq. 3) and CA (eq. 5) adversarial objectives;
//! * [`metrics`] — r̄ and HitRate@k (§VI-A.6).

#![warn(missing_docs)]

pub mod bias;
pub mod convolve;
pub mod graphops;
pub mod hetrec;
pub mod losses;
pub mod metrics;
pub mod mf;
pub mod pds;
pub mod snapshot;

pub use graphops::{AdjacencyOp, Backend, EdgePatch, FastAdjacency, GraphOps, DEFAULT_SHARDS};
pub use hetrec::{HetRec, HetRecConfig, TrainReport};
pub use mf::{MatrixFactorization, MfConfig};
pub use pds::{build_pds, PdsBuild, PdsConfig, PlayerInput};
pub use snapshot::{
    MappedSnapshot, ModelKind, Snapshot, SnapshotError, SnapshotHeader, SnapshotSource,
    SnapshotWriter, TensorDecl, TensorView,
};
