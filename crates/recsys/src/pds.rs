//! Progressive Differentiable Surrogate (§IV-C, Algorithm 1 steps 2–7).
//!
//! The surrogate is a mean-aggregation GNN recommender whose *training run is
//! recorded on the autodiff tape*:
//!
//! * candidate **edge** actions enter the graph convolution of eq. (15) as
//!   adjacency entries holding their binarized importance value X̂ (real edges
//!   enter with the `1_C` default of 1);
//! * candidate **rating** actions enter the training loss of eq. (16) as
//!   X̂-weighted squared-error terms toward the preset rating r̂;
//! * the inner loop performs `L` differentiable SGD steps
//!   `θ⁽ˡ⁺¹⁾ = θ⁽ˡ⁾ − η·∇_θ 𝓛`, with the gradient nodes kept on the tape.
//!
//! Because *every* element of X̂ participates (selected or not), first- and
//! second-order derivatives with respect to the whole importance vector are
//! available by backpropagation through the recorded process — exactly the
//! quantities Algorithm 1 steps 8–10 consume.

use std::sync::Arc;

use msopds_autograd::{Tape, Tensor, Var};
use msopds_faultline as faultline;
use msopds_recdata::{Dataset, PoisonAction};
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Unrolled differentiable SGD steps recorded across all PDS builds.
static PDS_UNROLL_STEPS: telemetry::Counter = telemetry::Counter::new("recsys.pds.unroll_steps");
/// Completed PDS surrogate builds.
static PDS_BUILDS: telemetry::Counter = telemetry::Counter::new("recsys.pds.builds");
/// Unroll steps where the loss or a parameter gradient went non-finite.
static PDS_NONFINITE_STEPS: telemetry::Counter =
    telemetry::Counter::new("recsys.pds.nonfinite_steps");

use crate::bias::{pds_biases, CandidateRatings, DEFAULT_DAMPING};
use crate::convolve::mean_convolve;
use crate::graphops::{Backend, EdgePatch, GraphOps};
use crate::hetrec::rating_triplets;

/// What the unrolled trainer does when a step's loss or parameter gradient
/// goes non-finite (overflow in the recorded SGD, an injected NaN, …).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NonFinitePolicy {
    /// Stop unrolling at the offending step; the surrogate keeps the last
    /// finite parameters. Conservative and fully deterministic — the default.
    #[default]
    Abort,
    /// Skip the offending SGD update but keep stepping (rescues *transient*
    /// corruption; a persistent one degenerates into `Abort` with extra
    /// recorded steps).
    SkipStep,
    /// Sanitize the offending gradients — NaN/±∞ → 0, magnitudes clamped to
    /// [`GRAD_CLAMP_LIMIT`] — and apply the update. Keeps training moving at
    /// the cost of cutting higher-order X̂-derivatives through the sanitized
    /// gradient for that step.
    Clamp,
}

/// Magnitude bound applied by [`NonFinitePolicy::Clamp`].
pub const GRAD_CLAMP_LIMIT: f64 = 1e6;

/// Surrogate hyperparameters (§VI-A.7: `L = 5` inner steps).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PdsConfig {
    /// Embedding dimensionality of the surrogate.
    pub dim: usize,
    /// Inner training steps `L`.
    pub inner_steps: usize,
    /// Inner SGD learning rate.
    pub inner_lr: f64,
    /// L2 regularization λ (eq. 1).
    pub lambda: f64,
    /// Embedding init std.
    pub init_std: f64,
    /// Parameter init seed.
    pub seed: u64,
    /// Reaction to a non-finite loss/gradient during the unroll.
    pub nonfinite_policy: NonFinitePolicy,
    /// Graph-operation backend for the poisoned convolutions of eq. (15).
    pub backend: Backend,
}

impl Default for PdsConfig {
    fn default() -> Self {
        Self {
            dim: 8,
            inner_steps: 5,
            inner_lr: 0.5,
            lambda: 1e-4,
            init_std: 0.1,
            seed: 0,
            nonfinite_policy: NonFinitePolicy::Abort,
            backend: Backend::from_env(),
        }
    }
}

/// One player's candidate set with binarized importance values.
#[derive(Clone, Debug)]
pub struct PlayerInput<'a> {
    /// Candidate poisoning actions, in importance-vector order.
    pub candidates: &'a [PoisonAction],
    /// Binarized importance vector X̂ (same length as `candidates`).
    pub xhat: Tensor,
}

/// The recorded surrogate: handles into the tape for every quantity the MSO
/// update rules differentiate.
pub struct PdsBuild<'t> {
    /// X̂ leaf per player (differentiate losses w.r.t. these).
    pub xhats: Vec<Var<'t>>,
    /// Final user embeddings h_u^f after `L` inner steps.
    pub user_final: Var<'t>,
    /// Final item embeddings h_i^f after `L` inner steps.
    pub item_final: Var<'t>,
    /// Trained per-user bias `[n_users]`.
    pub user_bias: Var<'t>,
    /// Trained per-item bias `[n_items]`.
    pub item_bias: Var<'t>,
    /// Inner-loop training loss after each step (diagnostics).
    pub inner_losses: Vec<f64>,
    /// Numeric-guardrail report for this build.
    pub numeric: PdsNumeric,
}

/// What the non-finite guardrails saw during one PDS build.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PdsNumeric {
    /// Unroll steps (0-based) whose loss or gradients were non-finite.
    pub nonfinite_steps: Vec<usize>,
    /// Step the unroll stopped at, when [`NonFinitePolicy::Abort`] fired.
    pub aborted_at: Option<usize>,
}

impl<'t> PdsBuild<'t> {
    /// The differentiable score model over the trained surrogate.
    pub fn scores(&self) -> crate::losses::Scores<'t> {
        crate::losses::Scores {
            user_final: self.user_final,
            item_final: self.item_final,
            user_bias: self.user_bias,
            item_bias: self.item_bias,
        }
    }
}

/// Records a full PDS training run on `tape`.
///
/// `data` must already contain every fake account the players use, but *not*
/// the candidate edges/ratings — those are injected here, modulated by X̂
/// (Algorithm 1 step 2 inserts all candidates; the binarized values regulate
/// them during training).
///
/// # Panics
/// Panics if an X̂ length disagrees with its candidate list or the dataset has
/// no ratings.
pub fn build_pds<'t>(
    tape: &'t Tape,
    data: &Dataset,
    players: &[PlayerInput<'_>],
    cfg: &PdsConfig,
) -> PdsBuild<'t> {
    let _span = telemetry::span("build_pds");
    PDS_BUILDS.incr();
    assert!(!data.ratings.is_empty(), "PDS needs a non-empty rating matrix");
    for p in players {
        assert_eq!(p.candidates.len(), p.xhat.numel(), "X̂ length must match the candidate count");
    }
    let n_users = data.n_users();
    let n_items = data.n_items();

    // ---- partition candidates per player -------------------------------------
    struct Partition {
        social: Vec<(usize, (usize, usize))>,
        item: Vec<(usize, (usize, usize))>,
        ratings: Vec<(usize, (usize, usize, f64))>,
    }
    let partitions: Vec<Partition> = players
        .iter()
        .map(|p| {
            let mut part = Partition { social: Vec::new(), item: Vec::new(), ratings: Vec::new() };
            for (xi, action) in p.candidates.iter().enumerate() {
                match *action {
                    PoisonAction::SocialEdge { a, b } => {
                        if !data.social.has_edge(a as usize, b as usize) {
                            part.social.push((xi, (a as usize, b as usize)));
                        }
                    }
                    PoisonAction::ItemEdge { a, b } => {
                        if !data.item_graph.has_edge(a as usize, b as usize) {
                            part.item.push((xi, (a as usize, b as usize)));
                        }
                    }
                    PoisonAction::Rating { user, item, value } => {
                        part.ratings.push((xi, (user as usize, item as usize, value)));
                    }
                }
            }
            part
        })
        .collect();

    // ---- fully-poisoned graphs 𝒢′ for the constant degree normalization ------
    let all_social: Vec<(usize, usize)> =
        partitions.iter().flat_map(|p| p.social.iter().map(|&(_, e)| e)).collect();
    let all_item: Vec<(usize, usize)> =
        partitions.iter().flat_map(|p| p.item.iter().map(|&(_, e)| e)).collect();
    let g_u_prime = data.social.with_edges(n_users, &all_social);
    let g_i_prime = data.item_graph.with_edges(n_items, &all_item);

    // ---- tape leaves ----------------------------------------------------------
    let xhats: Vec<Var<'t>> = players.iter().map(|p| tape.leaf(p.xhat.clone())).collect();

    let gops = GraphOps::new(cfg.backend);
    let social_patches: Vec<EdgePatch<'_, 't>> = partitions
        .iter()
        .zip(&xhats)
        .map(|(part, &xh)| EdgePatch { candidates: &part.social, xhat: xh })
        .collect();
    let item_patches: Vec<EdgePatch<'_, 't>> = partitions
        .iter()
        .zip(&xhats)
        .map(|(part, &xh)| EdgePatch { candidates: &part.item, xhat: xh })
        .collect();
    let a_u = gops.poisoned_adjacency(tape, &data.social, &social_patches);
    let a_i = gops.poisoned_adjacency(tape, &data.item_graph, &item_patches);
    let inv_du = gops.inv_degree(tape, &g_u_prime);
    let inv_di = gops.inv_degree(tape, &g_i_prime);

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
    let d = cfg.dim;
    let mut hu = tape.leaf(Tensor::randn(&[n_users, d], cfg.init_std, &mut rng));
    let mut hi = tape.leaf(Tensor::randn(&[n_items, d], cfg.init_std, &mut rng));
    let glorot_std = (2.0 / (3.0 * d as f64)).sqrt();
    let mut wu = tape.leaf(Tensor::randn(&[2 * d, d], glorot_std, &mut rng));
    let mut wi = tape.leaf(Tensor::randn(&[2 * d, d], glorot_std, &mut rng));

    // ---- real-rating index tensors ---------------------------------------------
    let (ru, ri, rv) = rating_triplets(data);
    let n_real = ru.len();
    let ru = Arc::new(ru);
    let ri = Arc::new(ri);
    let target = Tensor::from_vec(rv, &[n_real]);

    // Candidate-rating index tensors per player.
    struct RatingIdx {
        x_idx: Arc<Vec<usize>>,
        users: Arc<Vec<usize>>,
        items: Arc<Vec<usize>>,
        rhat: Tensor,
    }
    let mu = data.ratings.global_mean().expect("non-empty ratings");
    let rating_idx: Vec<Option<RatingIdx>> = partitions
        .iter()
        .map(|part| {
            if part.ratings.is_empty() {
                return None;
            }
            let x_idx = Arc::new(part.ratings.iter().map(|&(xi, _)| xi).collect::<Vec<_>>());
            let users = Arc::new(part.ratings.iter().map(|&(_, (u, _, _))| u).collect::<Vec<_>>());
            let items = Arc::new(part.ratings.iter().map(|&(_, (_, i, _))| i).collect::<Vec<_>>());
            let rhat = Tensor::from_vec(
                part.ratings.iter().map(|&(_, (_, _, r))| r).collect::<Vec<_>>(),
                &[part.ratings.len()],
            );
            Some(RatingIdx { x_idx, users, items, rhat })
        })
        .collect();

    // X̂-differentiable damped baseline biases (see crate::bias): the poison
    // ratings shift b_u/b_i in closed form, exactly as they would shift the
    // retrained victim's baselines.
    let bias_candidates: Vec<CandidateRatings> = rating_idx
        .iter()
        .flatten()
        .map(|idx| CandidateRatings {
            x_idx: Arc::clone(&idx.x_idx),
            users: Arc::clone(&idx.users),
            items: Arc::clone(&idx.items),
            residuals: idx.rhat.map(|r| r - mu),
        })
        .collect();
    let bias_pairs: Vec<(Var<'t>, &CandidateRatings)> = {
        // Pair each player's xhat leaf with their candidate ratings, skipping
        // players that have none (flatten order matches rating_idx order).
        let mut pairs = Vec::new();
        let mut k = 0;
        for (p, idx) in rating_idx.iter().enumerate() {
            if idx.is_some() {
                pairs.push((xhats[p], &bias_candidates[k]));
                k += 1;
            }
        }
        pairs
    };
    let (bu, bi) = pds_biases(tape, data, &bias_pairs, mu, DEFAULT_DAMPING);

    // ---- unrolled differentiable inner loop (Algorithm 1 steps 5–6) ----------
    // Predictions are anchored at μ + b_u + b_i (see crate::bias); the
    // embeddings fit the residual structure.
    let norm = 1.0 / n_real as f64;
    let mut inner_losses = Vec::with_capacity(cfg.inner_steps);
    let mut numeric = PdsNumeric::default();
    for step in 0..cfg.inner_steps {
        let _step_span = telemetry::span("unroll_step");
        PDS_UNROLL_STEPS.incr();
        faultline::fault_point!("pds.unroll");
        let uf = mean_convolve(hu, &a_u, inv_du, wu);
        let if_ = mean_convolve(hi, &a_i, inv_di, wi);

        // Real-rating MSE term of eq. (16).
        let pred = uf
            .gather_rows(Arc::clone(&ru))
            .rowwise_dot(if_.gather_rows(Arc::clone(&ri)))
            .add(bu.gather_elems(Arc::clone(&ru)))
            .add(bi.gather_elems(Arc::clone(&ri)))
            .add_scalar(mu);
        let mut loss = pred.sub(tape.constant(target.clone())).square().sum().scale(norm);

        // X̂-modulated poison-rating terms of eq. (16).
        for (p, idx) in rating_idx.iter().enumerate() {
            let Some(idx) = idx else { continue };
            let xv = xhats[p].gather_elems(Arc::clone(&idx.x_idx));
            let predc = uf
                .gather_rows(Arc::clone(&idx.users))
                .rowwise_dot(if_.gather_rows(Arc::clone(&idx.items)))
                .add(bu.gather_elems(Arc::clone(&idx.users)))
                .add(bi.gather_elems(Arc::clone(&idx.items)))
                .add_scalar(mu);
            let term =
                predc.sub(tape.constant(idx.rhat.clone())).square().mul(xv).sum().scale(norm);
            loss = loss.add(term);
        }

        // L2 regularization (eq. 1).
        let reg = hu
            .square()
            .sum()
            .add(hi.square().sum())
            .add(wu.square().sum())
            .add(wi.square().sum())
            .scale(cfg.lambda);
        let loss = loss.add(reg);
        // The fault site corrupts only the *checked* value, which is exactly
        // what an upstream overflow looks like to the guardrail.
        let loss_item = faultline::corrupt_f64("pds.unroll.loss", loss.item());
        inner_losses.push(loss_item);

        // Differentiable SGD step: the gradient nodes stay on the tape.
        let mut grads = tape.grad_vars(loss, &[hu, hi, wu, wi]);

        // ---- non-finite guardrail (graceful degradation, never NaN-out) ----
        let bad_step = !loss_item.is_finite() || grads.iter().any(|g| !g.value().all_finite());
        if bad_step {
            PDS_NONFINITE_STEPS.incr();
            numeric.nonfinite_steps.push(step);
            match cfg.nonfinite_policy {
                NonFinitePolicy::Abort => {
                    numeric.aborted_at = Some(step);
                    break; // keep the last finite parameters
                }
                NonFinitePolicy::SkipStep => continue, // drop this update only
                NonFinitePolicy::Clamp => {
                    for g in grads.iter_mut() {
                        let val = g.value();
                        if !val.all_finite() {
                            // Sanitized gradients re-enter as constants: the
                            // step still trains, but X̂ no longer differentiates
                            // through this (already meaningless) gradient.
                            *g = tape.constant(val.map(|v| {
                                if v.is_finite() {
                                    v.clamp(-GRAD_CLAMP_LIMIT, GRAD_CLAMP_LIMIT)
                                } else {
                                    0.0
                                }
                            }));
                        }
                    }
                }
            }
        }

        hu = hu.sub(grads[0].scale(cfg.inner_lr));
        hi = hi.sub(grads[1].scale(cfg.inner_lr));
        wu = wu.sub(grads[2].scale(cfg.inner_lr));
        wi = wi.sub(grads[3].scale(cfg.inner_lr));
    }

    // Final embeddings with the trained parameters (Algorithm 1 step 7).
    let user_final = mean_convolve(hu, &a_u, inv_du, wu);
    let item_final = mean_convolve(hi, &a_i, inv_di, wi);

    PdsBuild { xhats, user_final, item_final, user_bias: bu, item_bias: bi, inner_losses, numeric }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;

    fn micro() -> Dataset {
        DatasetSpec::micro().generate(5)
    }

    fn cfg() -> PdsConfig {
        PdsConfig { inner_steps: 4, ..Default::default() }
    }

    #[test]
    fn inner_training_reduces_loss() {
        let data = micro();
        let tape = Tape::new();
        let build = build_pds(&tape, &data, &[], &cfg());
        assert_eq!(build.inner_losses.len(), 4);
        assert!(
            build.inner_losses.last().unwrap() < &build.inner_losses[0],
            "inner losses {:?}",
            build.inner_losses
        );
    }

    #[test]
    fn gradient_reaches_rating_candidates() {
        let data = micro();
        let target_item = 3u32;
        // Candidates are 5-star ratings *from the audience itself*, so their
        // promotion effect on the IA loss has a determined (negative) sign.
        let users: Vec<usize> = (0..10).collect();
        let candidates: Vec<PoisonAction> = users
            .iter()
            .map(|&u| PoisonAction::Rating { user: u as u32, item: target_item, value: 5.0 })
            .collect();
        let tape = Tape::new();
        let build = build_pds(
            &tape,
            &data,
            &[PlayerInput { candidates: &candidates, xhat: Tensor::zeros(&[10]) }],
            &cfg(),
        );
        // Gradient must be non-zero even though every candidate is unselected
        // (x̂ = 0) — the key PDS property (§IV-C).
        let loss = crate::losses::ia_loss(&build.scores(), &users, target_item as usize);
        let g = tape.grad(loss, &[build.xhats[0]]).remove(0);
        assert!(g.norm() > 1e-12, "no gradient for unselected rating candidates");
        // Promoting with 5-star ratings reduces the IA loss in aggregate.
        assert!(
            g.sum() < 0.0,
            "5-star candidates should have negative mean gradient: {:?}",
            g.to_vec()
        );
    }

    #[test]
    fn gradient_reaches_edge_candidates() {
        let data = micro();
        // Social edge between two users and an item edge to the target item.
        let (a, b) = {
            let mut found = (0, 1);
            'outer: for a in 0..data.n_users() {
                for b in (a + 1)..data.n_users() {
                    if !data.social.has_edge(a, b) {
                        found = (a, b);
                        break 'outer;
                    }
                }
            }
            found
        };
        let candidates = vec![
            PoisonAction::SocialEdge { a: a as u32, b: b as u32 },
            PoisonAction::ItemEdge { a: 0, b: 5 },
        ];
        let tape = Tape::new();
        let build = build_pds(
            &tape,
            &data,
            &[PlayerInput { candidates: &candidates, xhat: Tensor::zeros(&[2]) }],
            &cfg(),
        );
        let users: Vec<usize> = (0..8).collect();
        let loss = crate::losses::ia_loss(&build.scores(), &users, 5);
        let g = tape.grad(loss, &[build.xhats[0]]).remove(0);
        assert!(g.get(0).abs() > 0.0 || g.get(1).abs() > 0.0, "no gradient for edge candidates");
        assert!(g.get(1).abs() > 0.0, "item edge to target must matter: {:?}", g.to_vec());
    }

    #[test]
    fn selected_rating_candidate_raises_target_score() {
        let data = micro();
        let target_item = 2usize;
        let users: Vec<usize> = (0..15).collect();
        let candidates: Vec<PoisonAction> = users
            .iter()
            .map(|&u| PoisonAction::Rating { user: u as u32, item: target_item as u32, value: 5.0 })
            .collect();

        let score_with = |xval: f64| -> f64 {
            let tape = Tape::new();
            let build = build_pds(
                &tape,
                &data,
                &[PlayerInput {
                    candidates: &candidates,
                    xhat: Tensor::full(&[candidates.len()], xval),
                }],
                &PdsConfig { inner_steps: 5, ..Default::default() },
            );
            -crate::losses::ia_loss(&build.scores(), &users, target_item).item()
        };
        let off = score_with(0.0);
        let on = score_with(1.0);
        assert!(on > off, "selected 5-star ratings must raise the mean score: {off} -> {on}");
    }

    #[test]
    fn two_players_have_separate_leaves() {
        let data = micro();
        let audience: Vec<usize> = (0..8).collect();
        // Both players act through audience users on the same item but with
        // opposite preset ratings, so their aggregate gradients have opposite
        // determined signs.
        let c1: Vec<PoisonAction> = audience
            .iter()
            .map(|&u| PoisonAction::Rating { user: u as u32, item: 1, value: 5.0 })
            .collect();
        let c2: Vec<PoisonAction> = audience
            .iter()
            .map(|&u| PoisonAction::Rating { user: u as u32, item: 1, value: 1.0 })
            .collect();
        let tape = Tape::new();
        let build = build_pds(
            &tape,
            &data,
            &[
                PlayerInput { candidates: &c1, xhat: Tensor::zeros(&[8]) },
                PlayerInput { candidates: &c2, xhat: Tensor::zeros(&[8]) },
            ],
            &cfg(),
        );
        assert_eq!(build.xhats.len(), 2);
        let loss = crate::losses::ia_loss(&build.scores(), &audience, 1);
        let g = tape.grad(loss, &[build.xhats[0], build.xhats[1]]);
        // Opposite rating values push the loss in opposite directions.
        assert!(g[0].sum() < 0.0, "5-star grads should be negative in sum, got {}", g[0].sum());
        assert!(g[1].sum() > 0.0, "1-star grads should be positive in sum, got {}", g[1].sum());
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn xhat_length_mismatch_panics() {
        let data = micro();
        let c = vec![PoisonAction::Rating { user: 0, item: 1, value: 5.0 }];
        let tape = Tape::new();
        let _ = build_pds(
            &tape,
            &data,
            &[PlayerInput { candidates: &c, xhat: Tensor::zeros(&[3]) }],
            &cfg(),
        );
    }

    fn params_finite(build: &PdsBuild) -> bool {
        build.user_final.value().all_finite()
            && build.item_final.value().all_finite()
            && build.user_bias.value().all_finite()
            && build.item_bias.value().all_finite()
    }

    fn divergent_cfg(policy: NonFinitePolicy) -> PdsConfig {
        // A catastrophically large inner learning rate overflows the squared
        // error within a couple of unrolled steps — a cheap, deterministic
        // stand-in for real-world numeric blowups.
        PdsConfig {
            inner_steps: 6,
            inner_lr: 1e150,
            nonfinite_policy: policy,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_build_reports_clean_numerics() {
        let data = micro();
        let tape = Tape::new();
        let build = build_pds(&tape, &data, &[], &cfg());
        assert!(build.numeric.nonfinite_steps.is_empty(), "{:?}", build.numeric);
        assert_eq!(build.numeric.aborted_at, None);
        assert!(params_finite(&build));
    }

    #[test]
    fn abort_policy_stops_at_first_nonfinite_step() {
        let data = micro();
        let tape = Tape::new();
        let build = build_pds(&tape, &data, &[], &divergent_cfg(NonFinitePolicy::Abort));
        let at = build.numeric.aborted_at.expect("divergent lr must trip the guardrail");
        assert_eq!(build.numeric.nonfinite_steps, vec![at]);
        // The loop broke before applying the poisoned update.
        assert_eq!(build.inner_losses.len(), at + 1);
        assert!(params_finite(&build), "abort must keep the last finite parameters");
    }

    #[test]
    fn skip_step_policy_completes_with_finite_parameters() {
        let data = micro();
        let tape = Tape::new();
        let build = build_pds(&tape, &data, &[], &divergent_cfg(NonFinitePolicy::SkipStep));
        assert_eq!(build.numeric.aborted_at, None);
        assert!(!build.numeric.nonfinite_steps.is_empty());
        // Every step still records a loss sample; bad ones only skip the update.
        assert_eq!(build.inner_losses.len(), 6);
        assert!(params_finite(&build), "skipped updates must never poison parameters");
    }

    #[test]
    fn clamp_policy_sanitizes_gradients_and_finishes() {
        let data = micro();
        let tape = Tape::new();
        let build = build_pds(&tape, &data, &[], &divergent_cfg(NonFinitePolicy::Clamp));
        assert_eq!(build.numeric.aborted_at, None);
        assert!(!build.numeric.nonfinite_steps.is_empty());
        assert_eq!(build.inner_losses.len(), 6);
        assert!(params_finite(&build), "clamped updates must stay finite");
    }
}
