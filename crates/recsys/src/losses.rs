//! Adversarial losses: Injection Attack (eq. 3) and Comprehensive Attack
//! (eq. 5), built from the surrogate's score components so they are
//! differentiable all the way back to the importance vectors.

use std::sync::Arc;

use msopds_autograd::{Tensor, Var};

/// The differentiable score model `ℛ(u,i) = μ + b_u + b_i + h_uᶠ·h_iᶠ`
/// (μ is a constant and cancels in every adversarial objective, so it is not
/// carried here).
#[derive(Clone, Copy)]
pub struct Scores<'t> {
    /// Final user embeddings `[n_users, d]`.
    pub user_final: Var<'t>,
    /// Final item embeddings `[n_items, d]`.
    pub item_final: Var<'t>,
    /// Per-user bias `[n_users]`.
    pub user_bias: Var<'t>,
    /// Per-item bias `[n_items]`.
    pub item_bias: Var<'t>,
}

impl<'t> Scores<'t> {
    /// A score model with zero (constant) biases — used by tests and models
    /// without bias terms.
    pub fn without_bias(user_final: Var<'t>, item_final: Var<'t>) -> Self {
        let tape = user_final.tape();
        let nu = user_final.value().rows();
        let ni = item_final.value().rows();
        Self {
            user_final,
            item_final,
            user_bias: tape.constant(Tensor::zeros(&[nu])),
            item_bias: tape.constant(Tensor::zeros(&[ni])),
        }
    }

    /// Scores of one `item` for a list of `users`: `[k]`.
    pub fn users_item(&self, users: &[usize], item: usize) -> Var<'t> {
        let k = users.len();
        let d = self.user_final.value().cols();
        let users_idx = Arc::new(users.to_vec());
        let uf = self.user_final.gather_rows(Arc::clone(&users_idx));
        let it = self.item_final.gather_rows(Arc::new(vec![item]));
        uf.mul(it.reshape(&[d]).broadcast_rows(k))
            .sum_rows()
            .add(self.user_bias.gather_elems(users_idx))
            .add(self.item_bias.gather_elems(Arc::new(vec![item])).expand(&[k]))
    }

    /// Score matrix `[k, m]` of `items` for `users`.
    pub fn users_items(&self, users: &[usize], items: &[usize]) -> Var<'t> {
        let (k, m) = (users.len(), items.len());
        let users_idx = Arc::new(users.to_vec());
        let items_idx = Arc::new(items.to_vec());
        let uf = self.user_final.gather_rows(Arc::clone(&users_idx));
        let itf = self.item_final.gather_rows(Arc::clone(&items_idx));
        uf.matmul(itf.t())
            .add(self.user_bias.gather_elems(users_idx).broadcast_cols(m))
            .add(self.item_bias.gather_elems(items_idx).broadcast_rows(k))
    }
}

/// Injection Attack loss (eq. 3): the negative mean predicted rating of the
/// target item across `users`.
pub fn ia_loss<'t>(scores: &Scores<'t>, users: &[usize], target_item: usize) -> Var<'t> {
    assert!(!users.is_empty(), "IA loss needs at least one user");
    scores.users_item(users, target_item).mean().neg()
}

/// Comprehensive Attack loss (eq. 5):
/// `1/|U_TA| Σ_u Σ_c SELU( ℛ(u,c) − ℛ(u,i_t) )`,
/// which penalizes every (user, competitor) pair where the target item loses.
pub fn ca_loss<'t>(
    scores: &Scores<'t>,
    target_audience: &[usize],
    target_item: usize,
    competing: &[usize],
) -> Var<'t> {
    assert!(!target_audience.is_empty(), "CA loss needs a target audience");
    assert!(!competing.is_empty(), "CA loss needs competing items");
    let k = target_audience.len();
    let m = competing.len();
    let comp_scores = scores.users_items(target_audience, competing); // [k, m]
    let target_scores = scores.users_item(target_audience, target_item); // [k]
    let diff = comp_scores.sub(target_scores.broadcast_cols(m));
    diff.selu().sum().scale(1.0 / k as f64)
}

/// Demotion variant of the CA objective used by opponents (§VI-A.4): the
/// *positive* mean predicted rating of the (attacker's) target item over the
/// audience — minimizing it pushes the item down.
pub fn demotion_loss<'t>(scores: &Scores<'t>, users: &[usize], target_item: usize) -> Var<'t> {
    ia_loss(scores, users, target_item).neg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::{Tape, Tensor};

    /// Embeddings where user 0 loves item 0 and hates item 1.
    fn fixture(tape: &Tape) -> Scores<'_> {
        let uf = tape.leaf(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]));
        let if_ = tape.leaf(Tensor::from_vec(vec![4.0, 0.0, -2.0, 1.0, 3.0, 3.0], &[3, 2]));
        Scores::without_bias(uf, if_)
    }

    #[test]
    fn ia_loss_is_negative_mean_rating() {
        let tape = Tape::new();
        let s = fixture(&tape);
        // Scores of item 0: user0 = 4, user1 = 0. Mean = 2 → loss = −2.
        let l = ia_loss(&s, &[0, 1], 0);
        assert!((l.item() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn item_bias_shifts_all_users() {
        let tape = Tape::new();
        let base = fixture(&tape);
        let biased =
            Scores { item_bias: tape.leaf(Tensor::from_vec(vec![0.7, 0.0, 0.0], &[3])), ..base };
        let l0 = ia_loss(&base, &[0, 1], 0).item();
        let l1 = ia_loss(&biased, &[0, 1], 0).item();
        assert!((l0 - l1 - 0.7).abs() < 1e-12, "bias must shift the mean by 0.7");
    }

    #[test]
    fn user_bias_cancels_in_ca_loss() {
        let tape = Tape::new();
        let base = fixture(&tape);
        let shifted =
            Scores { user_bias: tape.leaf(Tensor::from_vec(vec![5.0, -2.0], &[2])), ..base };
        let a = ca_loss(&base, &[0, 1], 0, &[1, 2]).item();
        let b = ca_loss(&shifted, &[0, 1], 0, &[1, 2]).item();
        assert!((a - b).abs() < 1e-9, "CA loss compares items per user: {a} vs {b}");
    }

    #[test]
    fn ca_loss_zero_when_target_dominates() {
        let tape = Tape::new();
        let uf = tape.leaf(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]));
        let if_ = tape.leaf(Tensor::from_vec(vec![10.0, 0.0, 0.0, 0.0], &[2, 2]));
        let s = Scores::without_bias(uf, if_);
        let dominated = ca_loss(&s, &[0], 0, &[1]);
        let losing = ca_loss(&s, &[0], 1, &[0]);
        assert!(dominated.item() < 0.0);
        assert!(losing.item() > 5.0, "losing target should incur a large loss");
        assert!(losing.item() > dominated.item());
    }

    #[test]
    fn ca_loss_gradient_pushes_target_up() {
        let tape = Tape::new();
        let uf = tape.leaf(Tensor::from_vec(vec![1.0, 0.5], &[1, 2]));
        let if_ = tape.leaf(Tensor::from_vec(vec![0.4, 0.1, 0.6, 0.2], &[2, 2]));
        let s = Scores::without_bias(uf, if_);
        let l = ca_loss(&s, &[0], 0, &[1]);
        let g = tape.grad(l, &[if_]).remove(0);
        // Increasing the target's score along the user direction reduces the
        // loss; the competitor's gradient points the other way.
        assert!(g.at(0, 0) < 0.0);
        assert!(g.at(1, 0) > 0.0);
    }

    #[test]
    fn demotion_is_negated_ia() {
        let tape = Tape::new();
        let s = fixture(&tape);
        let ia = ia_loss(&s, &[0, 1], 2).item();
        let dem = demotion_loss(&s, &[0, 1], 2).item();
        assert!((ia + dem).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn ia_empty_users_panics() {
        let tape = Tape::new();
        let s = fixture(&tape);
        let _ = ia_loss(&s, &[], 0);
    }

    #[test]
    fn users_items_matches_users_item_columns() {
        let tape = Tape::new();
        let s = fixture(&tape);
        let matrix = s.users_items(&[0, 1], &[0, 2]).value();
        let col0 = s.users_item(&[0, 1], 0).value();
        let col2 = s.users_item(&[0, 1], 2).value();
        assert!((matrix.at(0, 0) - col0.get(0)).abs() < 1e-12);
        assert!((matrix.at(1, 1) - col2.get(1)).abs() < 1e-12);
    }
}
