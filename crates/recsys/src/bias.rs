//! Damped-mean baseline biases (the classic rating-baseline predictor).
//!
//! `b_i = Σ_{r ∈ R(i)} (r − μ) / (|R(i)| + κ)` and likewise for users. These
//! closed-form biases carry an item's rating shift to *every* user — the
//! channel rating-poisoning attacks exploit in deployed recommenders — while
//! the GNN embeddings model the residual, per-user structure.
//!
//! In the PDS surrogate the same formula is built from tape ops with the
//! candidate ratings weighted by X̂, so the biases are differentiable in the
//! importance vector (the denominators count *all* candidates, mirroring how
//! eq. 15 normalizes by the fully-poisoned degree).

use std::sync::Arc;

use msopds_autograd::{Tape, Tensor, Var};
use msopds_recdata::Dataset;

/// Default damping strength κ.
pub const DEFAULT_DAMPING: f64 = 5.0;

/// Computes `(b_u, b_i)` damped-mean biases from the dataset's ratings.
pub fn damped_biases(data: &Dataset, mu: f64, kappa: f64) -> (Tensor, Tensor) {
    let (nu, ni) = (data.n_users(), data.n_items());
    let mut bu_sum = vec![0.0; nu];
    let mut bu_cnt = vec![0.0; nu];
    let mut bi_sum = vec![0.0; ni];
    let mut bi_cnt = vec![0.0; ni];
    for r in data.ratings.ratings() {
        let resid = r.value - mu;
        bu_sum[r.user as usize] += resid;
        bu_cnt[r.user as usize] += 1.0;
        bi_sum[r.item as usize] += resid;
        bi_cnt[r.item as usize] += 1.0;
    }
    let bu: Vec<f64> = bu_sum.iter().zip(&bu_cnt).map(|(&s, &c)| s / (c + kappa)).collect();
    let bi: Vec<f64> = bi_sum.iter().zip(&bi_cnt).map(|(&s, &c)| s / (c + kappa)).collect();
    (Tensor::from_vec(bu, &[nu]), Tensor::from_vec(bi, &[ni]))
}

/// Ingredients for the differentiable PDS biases: one player's candidate
/// ratings as parallel index/value lists.
pub struct CandidateRatings {
    /// Indices into the player's X̂ vector.
    pub x_idx: Arc<Vec<usize>>,
    /// Rated users.
    pub users: Arc<Vec<usize>>,
    /// Rated items.
    pub items: Arc<Vec<usize>>,
    /// Preset residuals `r̂ − μ`.
    pub residuals: Tensor,
}

/// Builds X̂-differentiable damped biases on the tape.
///
/// The numerators add each candidate's `x̂·(r̂ − μ)`; the denominators count
/// every candidate regardless of selection (constant), so the result is
/// linear in X̂ and exactly reproduces [`damped_biases`] when X̂ matches the
/// actually-applied ratings.
pub fn pds_biases<'t>(
    tape: &'t Tape,
    data: &Dataset,
    candidates: &[(Var<'t>, &CandidateRatings)],
    mu: f64,
    kappa: f64,
) -> (Var<'t>, Var<'t>) {
    let (nu, ni) = (data.n_users(), data.n_items());
    let mut bu_sum = vec![0.0; nu];
    let mut bu_cnt = vec![kappa; nu];
    let mut bi_sum = vec![0.0; ni];
    let mut bi_cnt = vec![kappa; ni];
    for r in data.ratings.ratings() {
        let resid = r.value - mu;
        bu_sum[r.user as usize] += resid;
        bu_cnt[r.user as usize] += 1.0;
        bi_sum[r.item as usize] += resid;
        bi_cnt[r.item as usize] += 1.0;
    }
    // Candidate ratings enlarge the (constant) denominators.
    for (_, c) in candidates {
        for k in 0..c.x_idx.len() {
            bu_cnt[c.users[k]] += 1.0;
            bi_cnt[c.items[k]] += 1.0;
        }
    }
    let mut bu_num = tape.constant(Tensor::from_vec(bu_sum, &[nu]));
    let mut bi_num = tape.constant(Tensor::from_vec(bi_sum, &[ni]));
    for (xhat, c) in candidates {
        if c.x_idx.is_empty() {
            continue;
        }
        let weighted =
            xhat.gather_elems(Arc::clone(&c.x_idx)).mul(tape.constant(c.residuals.clone()));
        bu_num = bu_num.add(weighted.scatter_add_elems(Arc::clone(&c.users), nu));
        bi_num = bi_num.add(weighted.scatter_add_elems(Arc::clone(&c.items), ni));
    }
    let bu = bu_num.div(tape.constant(Tensor::from_vec(bu_cnt, &[nu])));
    let bi = bi_num.div(tape.constant(Tensor::from_vec(bi_cnt, &[ni])));
    (bu, bi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_het_graph::CsrGraph;
    use msopds_recdata::{DatasetSpec, PoisonAction, Rating, RatingMatrix};

    fn tiny() -> Dataset {
        let ratings = RatingMatrix::from_ratings(
            3,
            2,
            &[
                Rating { user: 0, item: 0, value: 5.0 },
                Rating { user: 1, item: 0, value: 1.0 },
                Rating { user: 2, item: 1, value: 3.0 },
            ],
        );
        Dataset::new("t", ratings, CsrGraph::empty(3), CsrGraph::empty(2))
    }

    #[test]
    fn damped_bias_values() {
        let data = tiny();
        let mu = 3.0;
        let (bu, bi) = damped_biases(&data, mu, 1.0);
        // item 0: (2 + (−2)) / (2 + 1) = 0; item 1: 0 / 2 = 0.
        assert!((bi.get(0)).abs() < 1e-12);
        assert!((bi.get(1)).abs() < 1e-12);
        // user 0: 2 / (1+1) = 1.
        assert!((bu.get(0) - 1.0).abs() < 1e-12);
        assert!((bu.get(1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn poison_shifts_item_bias() {
        let data = tiny();
        let poisoned = data.apply_poison(&[PoisonAction::Rating { user: 2, item: 0, value: 5.0 }]);
        let mu = 3.0;
        let (_, bi0) = damped_biases(&data, mu, 1.0);
        let (_, bi1) = damped_biases(&poisoned, mu, 1.0);
        assert!(bi1.get(0) > bi0.get(0), "5-star poison must raise the item bias");
    }

    #[test]
    fn pds_biases_match_applied_poison() {
        // PDS biases with X̂ = 1 must equal damped_biases on the poisoned data
        // *with the denominator convention* (all candidates counted).
        let data = tiny();
        let mu = 3.0;
        let kappa = 1.0;
        let cand = CandidateRatings {
            x_idx: Arc::new(vec![0]),
            users: Arc::new(vec![2]),
            items: Arc::new(vec![0]),
            residuals: Tensor::from_vec(vec![5.0 - mu], &[1]),
        };
        let tape = Tape::new();
        let xhat = tape.leaf(Tensor::ones(&[1]));
        let (bu, bi) = pds_biases(&tape, &data, &[(xhat, &cand)], mu, kappa);
        let poisoned = data.apply_poison(&[PoisonAction::Rating { user: 2, item: 0, value: 5.0 }]);
        let (bu_ref, bi_ref) = damped_biases(&poisoned, mu, kappa);
        assert!(bu.value().max_abs_diff(&bu_ref) < 1e-12);
        assert!(bi.value().max_abs_diff(&bi_ref) < 1e-12);
    }

    #[test]
    fn pds_bias_gradient_reaches_xhat() {
        let data = tiny();
        let mu = 3.0;
        let cand = CandidateRatings {
            x_idx: Arc::new(vec![0]),
            users: Arc::new(vec![2]),
            items: Arc::new(vec![0]),
            residuals: Tensor::from_vec(vec![2.0], &[1]),
        };
        let tape = Tape::new();
        let xhat = tape.leaf(Tensor::zeros(&[1]));
        let (_, bi) = pds_biases(&tape, &data, &[(xhat, &cand)], mu, 1.0);
        let loss = bi.gather_elems(Arc::new(vec![0])).sum();
        let g = tape.grad(loss, &[xhat]).remove(0);
        // d b_i[0] / d x̂ = residual / (count + κ) = 2 / (2 + 1 + 1).
        assert!((g.get(0) - 0.5).abs() < 1e-12, "got {}", g.get(0));
    }

    #[test]
    fn unrated_entities_have_zero_bias() {
        let data = DatasetSpec::micro().generate(1);
        let mu = data.ratings.global_mean().unwrap();
        let (_, bi) = damped_biases(&data, mu, DEFAULT_DAMPING);
        for i in 0..data.n_items() {
            if data.ratings.item_degree(i) == 0 {
                assert_eq!(bi.get(i), 0.0);
            }
        }
    }
}
