//! Matrix-factorization recommender — the surrogate used by the PGA baseline
//! (Li et al. [13] attack factorization-based collaborative filtering).

use std::sync::Arc;

use msopds_autograd::optim::Adam;
use msopds_autograd::{Tape, Tensor, Var};
use msopds_recdata::Dataset;
use serde::{Deserialize, Serialize};

use crate::bias::{damped_biases, DEFAULT_DAMPING};
use crate::graphops::Backend;
use crate::hetrec::rating_triplets;
use crate::snapshot::{ModelKind, Snapshot, SnapshotError, SnapshotHeader};

/// MF hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MfConfig {
    /// Latent dimensionality.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 regularization.
    pub lambda: f64,
    /// Init std.
    pub init_std: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        Self { dim: 8, epochs: 60, lr: 0.05, lambda: 1e-4, init_std: 0.1, seed: 0 }
    }
}

/// A trained matrix-factorization model `ℛ(u,i) = p_u · q_i`.
#[derive(Clone, Debug)]
pub struct MatrixFactorization {
    cfg: MfConfig,
    p: Tensor,
    q: Tensor,
    bu: Tensor,
    bi: Tensor,
    mu: f64,
}

impl MatrixFactorization {
    /// Initializes factors for a `n_users × n_items` universe.
    pub fn new(cfg: MfConfig, n_users: usize, n_items: usize) -> Self {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
        Self {
            cfg,
            p: Tensor::randn(&[n_users, cfg.dim], cfg.init_std, &mut rng),
            q: Tensor::randn(&[n_items, cfg.dim], cfg.init_std, &mut rng),
            bu: Tensor::zeros(&[n_users]),
            bi: Tensor::zeros(&[n_items]),
            mu: 0.0,
        }
    }

    /// Trains on the dataset's ratings; returns the per-epoch MSE.
    pub fn fit(&mut self, data: &Dataset) -> Vec<f64> {
        assert!(!data.ratings.is_empty(), "cannot fit MF on empty ratings");
        self.mu = data.ratings.global_mean().expect("non-empty ratings");
        let (bu_t, bi_t) = damped_biases(data, self.mu, DEFAULT_DAMPING);
        self.bu = bu_t;
        self.bi = bi_t;
        let (ru, ri, rv) = rating_triplets(data);
        let n = ru.len();
        let (ru, ri) = (Arc::new(ru), Arc::new(ri));
        let target = Tensor::from_vec(rv, &[n]);
        let mut adam = Adam::new(self.cfg.lr, 2);
        adam.weight_decay = self.cfg.lambda;
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let tape = Tape::new();
            let p = tape.leaf(self.p.clone());
            let q = tape.leaf(self.q.clone());
            let bu = tape.constant(self.bu.clone());
            let bi = tape.constant(self.bi.clone());
            let loss = Self::loss_on(&tape, p, q, bu, bi, &ru, &ri, &target, self.mu);
            losses.push(loss.item());
            let g = tape.grad(loss, &[p, q]);
            adam.tick();
            adam.step(0, &mut self.p, &g[0]);
            adam.step(1, &mut self.q, &g[1]);
        }
        losses
    }

    /// The differentiable training objective on a caller-provided tape — used
    /// by PGA to unroll MF training over candidate fake ratings.
    #[allow(clippy::too_many_arguments)]
    pub fn loss_on<'t>(
        tape: &'t Tape,
        p: Var<'t>,
        q: Var<'t>,
        bu: Var<'t>,
        bi: Var<'t>,
        users: &Arc<Vec<usize>>,
        items: &Arc<Vec<usize>>,
        target: &Tensor,
        mu: f64,
    ) -> Var<'t> {
        let pred = p
            .gather_rows(Arc::clone(users))
            .rowwise_dot(q.gather_rows(Arc::clone(items)))
            .add(bu.gather_elems(Arc::clone(users)))
            .add(bi.gather_elems(Arc::clone(items)))
            .add_scalar(mu);
        pred.sub(tape.constant(target.clone())).square().mean()
    }

    /// The global-mean anchor μ learned from the last fit.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Predicted rating.
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        self.mu
            + self.bu.get(user)
            + self.bi.get(item)
            + (0..self.cfg.dim).map(|k| self.p.at(user, k) * self.q.at(item, k)).sum::<f64>()
    }

    /// Current user factors.
    pub fn user_factors(&self) -> &Tensor {
        &self.p
    }

    /// Current item factors.
    pub fn item_factors(&self) -> &Tensor {
        &self.q
    }

    /// The damped user/item bias vectors from the last fit.
    pub fn biases(&self) -> (&Tensor, &Tensor) {
        (&self.bu, &self.bi)
    }

    /// The configuration.
    pub fn config(&self) -> &MfConfig {
        &self.cfg
    }

    /// Exports the trained factors as a [`Snapshot`] (DESIGN.md §12). MF has
    /// no graph backend; the tag records [`Backend::Dense`] as provenance.
    pub fn snapshot(&self, data: &Dataset) -> Snapshot {
        let (social_fingerprint, item_fingerprint) = Snapshot::fingerprints_of(data);
        Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed: self.cfg.seed,
                social_fingerprint,
                item_fingerprint,
                n_users: self.p.rows() as u64,
                n_items: self.q.rows() as u64,
                mu: self.mu,
            },
            config_json: serde_json::to_string(&self.cfg).expect("MfConfig serializes"),
            tensors: vec![
                ("p".to_string(), self.p.clone()),
                ("q".to_string(), self.q.clone()),
                ("b_u".to_string(), self.bu.clone()),
                ("b_i".to_string(), self.bi.clone()),
            ],
        }
    }

    /// Rebuilds a trained MF model from a [`Snapshot`], bit-identical to the
    /// instance that saved it.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, SnapshotError> {
        if snap.header.kind != ModelKind::Mf {
            return Err(SnapshotError::Corrupt {
                context: format!("expected an MF snapshot, found {:?}", snap.header.kind),
            });
        }
        let cfg: MfConfig = serde_json::from_str(&snap.config_json)
            .map_err(|e| SnapshotError::Corrupt { context: format!("config JSON: {e}") })?;
        let model = Self {
            cfg,
            p: snap.require("p")?.clone(),
            q: snap.require("q")?.clone(),
            bu: snap.require("b_u")?.clone(),
            bi: snap.require("b_i")?.clone(),
            mu: snap.header.mu,
        };
        let (n_users, n_items) = (snap.header.n_users as usize, snap.header.n_items as usize);
        if model.p.shape() != [n_users, cfg.dim] || model.q.shape() != [n_items, cfg.dim] {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "factor shapes {:?} / {:?} disagree with header {n_users}×{n_items}×{}",
                    model.p.shape(),
                    model.q.shape(),
                    cfg.dim
                ),
            });
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;

    #[test]
    fn fit_reduces_loss() {
        let data = DatasetSpec::micro().generate(1);
        let mut mf = MatrixFactorization::new(MfConfig::default(), data.n_users(), data.n_items());
        let losses = mf.fit(&data);
        assert!(losses.last().unwrap() < &(0.5 * losses[0]), "losses: {:?}", &losses[..3]);
    }

    #[test]
    fn predictions_track_ratings() {
        let data = DatasetSpec::micro().generate(2);
        let mut mf = MatrixFactorization::new(
            MfConfig { epochs: 120, ..Default::default() },
            data.n_users(),
            data.n_items(),
        );
        mf.fit(&data);
        // Mean absolute error should beat always-predicting-3.
        let mut err = 0.0;
        let mut base = 0.0;
        for r in data.ratings.ratings() {
            err += (mf.predict(r.user as usize, r.item as usize) - r.value).abs();
            base += (3.0 - r.value).abs();
        }
        assert!(err < base, "MAE {err} vs baseline {base}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = DatasetSpec::micro().generate(3);
        let mut a = MatrixFactorization::new(MfConfig::default(), data.n_users(), data.n_items());
        let mut b = MatrixFactorization::new(MfConfig::default(), data.n_users(), data.n_items());
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(1, 1), b.predict(1, 1));
    }
}
